"""Continuous-ingest churn drill for the tiered index.

The drill is the tiered tier's end-to-end correctness gate: a seeded
stream of inserts, deletes, duplicate inserts, and re-inserts of
previously deleted ads runs against a :class:`TieredSegmentedIndex`
with a live :class:`BackgroundMerger`, while an incrementally-mirrored
:class:`~repro.core.wordset_index.WordSetIndex` oracle receives the
same ops.  Every ``probe_every`` ops the two are queried with the same
query and the slates compared as multisets — any divergence is a
recorded mismatch and fails the drill.  Optionally every ``tiered.*``
and ``segment.*`` crashpoint is armed round-robin so seals and merges
keep crashing mid-flight; an injected crash is retried exactly like a
restarted maintenance daemon, and the drill still requires zero
mismatches.

At the end the overlay is sealed (the durability point), the live-ad
multiset compared against the oracle, the directory closed and
**reopened**, and compared again — the zero-lost-acknowledged-writes
gate.  ``python -m repro.segment.churn`` runs it standalone and exits
non-zero on any violation; CI's ``tiered-ingest-smoke`` job and
``benchmarks/test_bench_tiered.py`` both drive this module.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.ads import Advertisement, AdInfo
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.faults.injector import FaultInjector, InjectedCrash
from repro.obs.registry import MetricsRegistry
from repro.obs.workload import WorkloadRecorder
from repro.segment.format import TIERED_CRASHPOINTS
from repro.segment.tiered import (
    BackgroundMerger,
    TieredConfig,
    TieredSegmentedIndex,
)

__all__ = ["ChurnConfig", "ChurnResult", "run_churn_drill"]

#: Crashpoints the chaos mode cycles through: the tiered lifecycle's own
#: plus the segment writer's (seal and merge both go through
#: ``SegmentBuilder.write``).
CHAOS_POINTS: tuple[str, ...] = TIERED_CRASHPOINTS + (
    "segment.tmp_written",
    "segment.tmp_synced",
    "segment.renamed",
)


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Shape of one churn drill run."""

    ops: int = 100_000
    seed: int = 7
    #: Fraction of ops that delete a live ad (when any exist).
    delete_fraction: float = 0.3
    #: Of the inserts, fraction that re-insert a previously deleted ad
    #: (the resurrect path) or duplicate a live one.
    reinsert_fraction: float = 0.1
    duplicate_fraction: float = 0.05
    #: Keyword / category vocabulary sizes (smaller -> denser co-access).
    keywords: int = 60
    categories: int = 12
    #: Compare slates against the oracle every this many ops.
    probe_every: int = 200
    #: Arm the next chaos crashpoint every this many ops (0 = off).
    crash_every: int = 0
    seal_threshold: int = 256
    fan_in: int = 4
    optimize_merges: bool = True

    def tiered_config(self) -> TieredConfig:
        return TieredConfig(
            seal_threshold=self.seal_threshold,
            fan_in=self.fan_in,
            auto_merge=False,
            optimize_merges=self.optimize_merges,
        )


@dataclass(slots=True)
class ChurnResult:
    """Outcome of a drill; ``ok`` is the gate CI checks."""

    ops_applied: int = 0
    inserts: int = 0
    deletes: int = 0
    resurrections: int = 0
    probes: int = 0
    mismatches: list[str] = field(default_factory=list)
    failed_queries: int = 0
    injected_crashes: int = 0
    merger_crashes: int = 0
    merger_errors: list[str] = field(default_factory=list)
    merges: int = 0
    seals: int = 0
    lost_writes: int = 0
    phantom_ads: int = 0
    reopen_consistent: bool = False
    elapsed_s: float = 0.0
    final_stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.ops_applied / self.elapsed_s

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and not self.merger_errors
            and self.failed_queries == 0
            and self.lost_writes == 0
            and self.phantom_ads == 0
            and self.reopen_consistent
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "ops_applied": self.ops_applied,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "resurrections": self.resurrections,
            "probes": self.probes,
            "mismatches": self.mismatches[:5],
            "failed_queries": self.failed_queries,
            "injected_crashes": self.injected_crashes,
            "merger_crashes": self.merger_crashes,
            "merger_errors": self.merger_errors[:5],
            "merges": self.merges,
            "seals": self.seals,
            "lost_writes": self.lost_writes,
            "phantom_ads": self.phantom_ads,
            "reopen_consistent": self.reopen_consistent,
            "elapsed_s": round(self.elapsed_s, 3),
            "ops_per_s": round(self.ops_per_s, 1),
            "ok": self.ok,
            "final_stats": self.final_stats,
        }


def _slate_key(ads: list[Advertisement]) -> list[tuple[Any, ...]]:
    """Canonical multiset form of a result slate: the full ad identity,
    sorted — bit-identical content regardless of tier traversal order."""
    return sorted(
        (
            ad.phrase,
            ad.info.listing_id,
            ad.info.campaign_id,
            ad.info.bid_price_micros,
        )
        for ad in ads
    )


def _live_multiset(index: TieredSegmentedIndex) -> Counter[Advertisement]:
    return Counter(index.live_ads())


def _oracle_multiset(oracle: WordSetIndex) -> Counter[Advertisement]:
    counts: Counter[Advertisement] = Counter()
    for node in oracle.nodes.values():
        for entry in node.entries:
            counts[entry.ad] += 1
    return counts


def run_churn_drill(
    directory: str | Path,
    config: ChurnConfig | None = None,
    obs: MetricsRegistry | None = None,
) -> ChurnResult:
    """Run the drill in ``directory`` (created if needed)."""
    config = config if config is not None else ChurnConfig()
    rng = random.Random(config.seed)
    registry = obs if obs is not None else MetricsRegistry()
    recorder = WorkloadRecorder(registry)
    faults = FaultInjector() if config.crash_every else None
    result = ChurnResult()

    index = TieredSegmentedIndex(
        Path(directory),
        config=config.tiered_config(),
        obs=registry,
        faults=faults,
        recorder=recorder,
    )
    oracle = WordSetIndex()
    live: list[Advertisement] = []
    dead: list[Advertisement] = []
    chaos_cursor = 0

    def make_ad(n: int) -> Advertisement:
        text = (
            f"kw{rng.randrange(config.keywords)} "
            f"cat{rng.randrange(config.categories)} item{n}"
        )
        return Advertisement.from_text(
            text,
            AdInfo(
                listing_id=n,
                campaign_id=n % 97,
                bid_price_micros=100 + rng.randrange(5000),
            ),
        )

    def probe() -> None:
        result.probes += 1
        tokens = (
            f"kw{rng.randrange(config.keywords)}",
            f"cat{rng.randrange(config.categories)}",
        )
        query = Query(tokens=tokens)
        try:
            got = _slate_key(index.query(query))
        except Exception as exc:  # noqa: BLE001 — the drill's whole point
            result.failed_queries += 1
            result.mismatches.append(
                f"query {tokens} raised {type(exc).__name__}: {exc}"
            )
            return
        want = _slate_key(oracle.query(query))
        if got != want:
            result.mismatches.append(
                f"query {tokens}: tiered returned {len(got)} ads, "
                f"oracle {len(want)} (first diff at "
                f"{next((i for i, (g, w) in enumerate(zip(got, want)) if g != w), min(len(got), len(want)))})"
            )

    merger = BackgroundMerger(index, interval_s=0.001)
    started = time.perf_counter()
    try:
        merger.start()
        for op in range(config.ops):
            if (
                config.crash_every
                and faults is not None
                and op % config.crash_every == 0
            ):
                point = CHAOS_POINTS[chaos_cursor % len(CHAOS_POINTS)]
                chaos_cursor += 1
                faults.arm_forever(point)
            roll = rng.random()
            if roll < config.delete_fraction and live:
                victim = live.pop(rng.randrange(len(live)))
                if not index.delete(victim):
                    result.mismatches.append(
                        f"delete of live ad {victim.phrase} refused"
                    )
                assert oracle.delete(victim)
                dead.append(victim)
                result.deletes += 1
            else:
                reroll = rng.random()
                if dead and reroll < config.reinsert_fraction:
                    ad = dead.pop(rng.randrange(len(dead)))
                    result.resurrections += 1
                elif live and reroll < (
                    config.reinsert_fraction + config.duplicate_fraction
                ):
                    ad = live[rng.randrange(len(live))]
                else:
                    ad = make_ad(op)
                try:
                    index.insert(ad)
                except InjectedCrash:
                    # The overlay mutation lands *before* the auto-seal
                    # that crashed, and the manifest still holds the
                    # last committed generation — the op is applied,
                    # the seal just retries at the next threshold
                    # crossing.  Mirror the oracle accordingly.
                    result.injected_crashes += 1
                oracle.insert(ad)
                live.append(ad)
                result.inserts += 1
            result.ops_applied += 1
            if op % config.probe_every == 0:
                probe()
        merger.drain()
        result.injected_crashes += merger.crashes
        result.merger_crashes = merger.crashes
        result.merger_errors = list(merger.errors)
        if faults is not None:
            faults.reset()
        # Durability point: seal everything, then gate content.
        index.seal()
        expected = _oracle_multiset(oracle)
        sealed = _live_multiset(index)
        result.lost_writes = sum((expected - sealed).values())
        result.phantom_ads = sum((sealed - expected).values())
        result.merges = int(registry.value("tiered.merges"))
        result.seals = int(registry.value("tiered.seals"))
        result.final_stats = index.stats()
    finally:
        merger.stop()
        index.close()

    reopened = TieredSegmentedIndex(
        Path(directory), config=config.tiered_config()
    )
    try:
        after = _live_multiset(reopened)
        result.reopen_consistent = after == _oracle_multiset(oracle)
        if not result.reopen_consistent:
            result.lost_writes = max(
                result.lost_writes,
                sum((_oracle_multiset(oracle) - after).values()),
            )
    finally:
        reopened.close()
    result.elapsed_s = time.perf_counter() - started
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Tiered-segment churn drill (continuous ingest + "
        "background merge vs an exact oracle)"
    )
    parser.add_argument("directory", help="scratch directory for the index")
    parser.add_argument("--ops", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--probe-every", type=int, default=200)
    parser.add_argument(
        "--crash-every",
        type=int,
        default=0,
        help="arm the next tiered/segment crashpoint every N ops",
    )
    parser.add_argument("--seal-threshold", type=int, default=256)
    parser.add_argument("--fan-in", type=int, default=4)
    parser.add_argument("--json", action="store_true", help="emit JSON")
    args = parser.parse_args(argv)
    config = ChurnConfig(
        ops=args.ops,
        seed=args.seed,
        probe_every=args.probe_every,
        crash_every=args.crash_every,
        seal_threshold=args.seal_threshold,
        fan_in=args.fan_in,
    )
    result = run_churn_drill(args.directory, config)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        summary = result.to_json()
        summary.pop("final_stats")
        for key, value in summary.items():
            print(f"{key}: {value}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
