"""Packed-segment benchmark: resident bytes and latency vs the dict index.

Builds the same synthetic corpus and long-query broad-match workload as
:mod:`repro.perf.bench`, packs the index into a segment file, and
replays the workload against both serving paths:

* **equivalence** — every query must return the identical multiset of
  listing ids (sorted per query; raw order legitimately differs because
  suffix merging and front-coding reorder node entries);
* **resident bytes** — deep-counted Python object graph for the dict
  index vs mapped-file-plus-auxiliaries for the packed one (gate: the
  packed path must be >= 4x smaller);
* **latency** — min-of-N interleaved replays of the full workload on
  each path (gate: packed within 1.25x of the dict fast path).

Results land in ``BENCH_PR4.json`` at the repo root::

    PYTHONPATH=src python -m repro.segment.bench --out BENCH_PR4.json
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder
from repro.segment.packed import DEFAULT_CACHE_BYTES, PackedSegmentIndex
from repro.segment.sizing import deep_sizeof


def replay_ids(index: Any, queries: list[Query]) -> list[list[int]]:
    """Sorted listing ids per query — the equivalence fingerprint."""
    return [
        sorted(ad.info.listing_id for ad in index.query(query))
        for query in queries
    ]


def _timed_replay(index: Any, queries: list[Query]) -> float:
    start = time.perf_counter()
    for query in queries:
        index.query(query)
    return time.perf_counter() - start


def run_segment_bench(
    num_ads: int = 50_000,
    num_queries: int = 120,
    query_len: int = 12,
    rounds: int = 5,
    seed: int = 0,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    segment_path: str | Path | None = None,
) -> dict[str, Any]:
    """Execute the packed-vs-dict comparison; returns the results doc."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )

    index = WordSetIndex.from_corpus(generated.corpus)

    own_tempdir = segment_path is None
    if own_tempdir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-segment-bench-")
        segment_path = Path(tempdir.name) / "bench.seg"
    segment_path = Path(segment_path)
    SegmentBuilder(index).write(segment_path)
    packed = PackedSegmentIndex(segment_path, cache_bytes=cache_bytes)
    try:
        dict_results = replay_ids(index, queries)
        packed_results = replay_ids(packed, queries)
        identical = dict_results == packed_results
        if not identical:
            raise AssertionError(
                "packed-segment results diverged from the dict index"
            )

        dict_resident = deep_sizeof(index)
        packed_resident = packed.resident_bytes()

        # Interleaved min-of-N: alternate paths each round so drift in
        # machine load hits both equally; min is the stable estimator.
        dict_seconds = min(
            _timed_replay(index, queries) for _ in range(rounds)
        )
        packed_seconds = min(
            _timed_replay(packed, queries) for _ in range(rounds)
        )

        stats = packed.stats()
    finally:
        packed.close()
        if own_tempdir:
            tempdir.cleanup()

    return {
        "benchmark": "packed-segment",
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "rounds": rounds,
            "seed": seed,
            "cache_bytes": cache_bytes,
        },
        "identical_results": identical,
        "dict": {
            "resident_bytes": dict_resident,
            "seconds": dict_seconds,
        },
        "packed": {
            "resident_bytes": packed_resident,
            "segment_bytes": stats["segment_bytes"],
            "suffix_bits": stats["suffix_bits"],
            "num_nodes": stats["num_nodes"],
            "cached_nodes": stats["cached_nodes"],
            "cache_bytes_used": stats["cache_bytes_used"],
            "seconds": packed_seconds,
        },
        "resident_reduction": dict_resident / max(1, packed_resident),
        "latency_ratio": packed_seconds / max(1e-9, dict_seconds),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.segment.bench",
        description="Packed-segment resident/latency benchmark (writes JSON).",
    )
    parser.add_argument("--out", default="BENCH_PR4.json")
    parser.add_argument("--num-ads", type=int, default=50_000)
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--query-len", type=int, default=12)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cache-bytes", type=int, default=DEFAULT_CACHE_BYTES)
    args = parser.parse_args(argv)
    results = run_segment_bench(
        num_ads=args.num_ads,
        num_queries=args.num_queries,
        query_len=args.query_len,
        rounds=args.rounds,
        seed=args.seed,
        cache_bytes=args.cache_bytes,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"resident reduction: {results['resident_reduction']:.1f}x  "
        f"latency ratio: {results['latency_ratio']:.2f}x"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
