"""Rank/select over externally-owned bit buffers (the zero-copy B^sig/B^off).

:class:`repro.compress.bitvector.BitVector` owns its words as a Python
list; a packed segment cannot afford that copy — its bit-arrays live in
the mapped file.  :class:`PackedBits` runs the same broadword rank/select
algorithms over *any* indexable u64 word source, normally a
``memoryview.cast("Q")`` straight over the mmap (big-endian hosts fall
back to materializing the words, correctness over zero-copy).

Only the directories (superblock cumulative ranks + sampled select
positions) are built in memory at load time — one pass over the words,
a few percent of the raw bits.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable, Sequence
from typing import cast

WORD_BITS = 64
SUPERBLOCK_WORDS = 8  # 512-bit superblocks, matching BitVector
SELECT_SAMPLE = 512  # sample every 512th one-bit


def pack_bits(length: int, one_positions: Iterable[int]) -> bytes:
    """Serialize a bit-array as little-endian u64 words.

    Bit ``i`` of the array is bit ``i % 64`` of word ``i // 64``; in the
    little-endian byte layout that is simply bit ``i % 8`` of byte
    ``i // 8``, so the packing is byte-addressed.
    """
    positions = sorted(set(one_positions))
    if positions and (positions[0] < 0 or positions[-1] >= length):
        raise ValueError("bit position out of range")
    out = bytearray(((length + WORD_BITS - 1) // WORD_BITS) * 8)
    for pos in positions:
        out[pos >> 3] |= 1 << (pos & 7)
    return bytes(out)


class PackedBits:
    """Immutable rank/select directory over a borrowed u64 word buffer."""

    __slots__ = ("_n", "_words", "_num_words", "_super_ranks", "_samples", "_ones")

    def __init__(self, words: Sequence[int], n_bits: int) -> None:
        if n_bits < 0:
            raise ValueError("n_bits must be >= 0")
        needed = (n_bits + WORD_BITS - 1) // WORD_BITS
        if len(words) < needed:
            raise ValueError(
                f"word buffer holds {len(words)} words, need {needed}"
            )
        self._n = n_bits
        self._words = words
        self._num_words = needed
        super_ranks = [0]
        samples: list[tuple[int, int]] = []
        running = 0
        for i in range(needed):
            count = words[i].bit_count()
            if count and (
                not samples
                or running // SELECT_SAMPLE != (running + count) // SELECT_SAMPLE
            ):
                samples.append((running, i))
            running += count
            if (i + 1) % SUPERBLOCK_WORDS == 0:
                super_ranks.append(running)
        self._super_ranks = super_ranks
        self._samples = samples
        self._ones = running

    @classmethod
    def from_buffer(cls, buf: memoryview, n_bits: int) -> PackedBits:
        """Wrap a little-endian u64 byte buffer (e.g. an mmap slice).

        On little-endian hosts the buffer is reinterpreted in place; a
        big-endian host pays one materializing pass instead of reading
        every word wrong.
        """
        if len(buf) % 8:
            raise ValueError("bit buffer length must be a multiple of 8")
        if sys.byteorder == "little":
            words = cast("Sequence[int]", buf.cast("Q"))
        else:  # pragma: no cover - exercised only on big-endian hosts
            raw = bytes(buf)
            words = [
                int.from_bytes(raw[i : i + 8], "little")
                for i in range(0, len(raw), 8)
            ]
        return cls(words, n_bits)

    def release(self) -> None:
        """Release the underlying buffer view (before closing an mmap)."""
        words = self._words
        if isinstance(words, memoryview):
            words.release()
        self._words = ()
        self._num_words = 0
        self._n = 0
        self._ones = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(i)
        return (self._words[i >> 6] >> (i & 63)) & 1

    @property
    def ones(self) -> int:
        """Total number of 1-bits."""
        return self._ones

    @property
    def words(self) -> Sequence[int]:
        """The raw u64 words — exposed so hot loops can inline bit tests."""
        return self._words

    def test_positions(self, positions: Iterable[int]) -> list[int]:
        """Bulk membership: indexes (into ``positions``) whose bit is set.

        The pure-python batch-probe kernel (see :mod:`repro.kernels`):
        one call tests a whole probe batch in a single tight loop over
        hoisted locals — no per-probe method dispatch — and only the
        set positions (the rare hits) surface back into caller code.
        Misses never allocate.  Positions are not bounds-checked; the
        caller masks them to the bit-array's suffix domain.
        """
        words = self._words
        hits: list[int] = []
        append = hits.append
        for index, pos in enumerate(positions):
            if (words[pos >> 6] >> (pos & 63)) & 1:
                append(index)
        return hits

    def rank1(self, i: int) -> int:
        """Number of 1-bits in the prefix ``B[0:i]`` (exclusive of ``i``)."""
        if not 0 <= i <= self._n:
            raise IndexError(i)
        word_index, bit_index = divmod(i, WORD_BITS)
        words = self._words
        base = (word_index // SUPERBLOCK_WORDS) * SUPERBLOCK_WORDS
        rank = self._super_ranks[word_index // SUPERBLOCK_WORDS]
        for w in range(base, word_index):
            rank += words[w].bit_count()
        if bit_index:
            rank += (words[word_index] & ((1 << bit_index) - 1)).bit_count()
        return rank

    def rank0(self, i: int) -> int:
        """Number of 0-bits in the prefix ``B[0:i]``."""
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th (1-based) 1-bit.

        Sample-guided word scan; the in-word select clears the lowest set
        bit ``need - 1`` times and isolates the survivor — no per-bit
        loop (see the matching :class:`BitVector` micro-optimization).
        """
        if not 1 <= j <= self._ones:
            raise ValueError(f"select1({j}) out of range (ones={self._ones})")
        start_word = 0
        for seen, word_index in self._samples:
            if seen < j:
                start_word = word_index
            else:
                break
        words = self._words
        base = (start_word // SUPERBLOCK_WORDS) * SUPERBLOCK_WORDS
        seen = self._super_ranks[start_word // SUPERBLOCK_WORDS]
        for w in range(base, start_word):
            seen += words[w].bit_count()
        for w in range(start_word, self._num_words):
            word = words[w]
            count = word.bit_count()
            if seen + count >= j:
                for _ in range(j - seen - 1):
                    word &= word - 1
                return w * WORD_BITS + (word & -word).bit_length() - 1
            seen += count
        raise AssertionError("unreachable: select beyond counted ones")

    def size_bits(self) -> int:
        """Raw bits plus the in-memory directory overhead."""
        raw = self._num_words * WORD_BITS
        directory = len(self._super_ranks) * 64 + len(self._samples) * 128
        return raw + directory
