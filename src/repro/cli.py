"""Operational command-line interface.

Everything an operator needs without writing Python::

    python -m repro.cli build --ads ads.csv --out index.jsonl \
        [--workload trace.tsv --optimize --max-words 10]
    python -m repro.cli query index.jsonl "cheap used books" \
        [--match broad|phrase|exact] [--top 5] [--deadline-ms 5] \
        [--metrics-out m.prom]
    python -m repro.cli batch index.jsonl queries.txt \
        [--match broad] [--shards 4] [--workers 4] [--show] \
        [--deadline-ms 50] [--metrics-out m.json]
    python -m repro.cli explain index.jsonl "cheap used books"
    python -m repro.cli stats index.jsonl \
        [--replay queries.txt] [--resilience] [--deadline-ms 5] \
        [--priority low|normal|high] [--metrics-format prom|json] \
        [--metrics-out m.prom]
    python -m repro.cli recover snapshot.jsonl ops.log \
        [--verify] [--compact] [--pack index.seg]
    python -m repro.cli pack index.jsonl index.seg [--suffix-bits 18]
    python -m repro.cli serve index.seg --workers 4 \
        [--host 127.0.0.1 --port 7707] [--deadline-ms 50] \
        [--rate-per-s 500 --burst 32 --max-queue-depth 64]
    python -m repro.cli loadgen queries.txt --port 7707 \
        [--duration-s 5 --concurrency 8] [--deadline-ms 50] \
        [--priority low|normal|high] [--out report.json]

``build`` imports a corpus (CSV; see :mod:`repro.datagen.importers`),
optionally optimizes the mapping against an imported workload, and writes
a snapshot.  ``query``/``batch``/``explain``/``stats`` operate on
snapshots; ``batch`` reads one query per line (``-`` for stdin), dedups
identical word-sets, and optionally re-shards the corpus for worker-pool
fan-out.  ``recover`` runs snapshot + op-log crash recovery, reports what
replay found (truncated torn tail, stale-generation ops skipped), and
with ``--verify`` proves every recovered ad is retrievable against a
freshly rebuilt oracle index; ``--compact`` then folds the log into a
new snapshot generation, and ``--pack`` emits a packed segment of the
recovered state so cold start becomes recover-once/serve-packed.
``pack`` freezes a snapshot into a segment file; ``query --segment``
and ``stats --segment`` serve directly off a segment via
:class:`~repro.segment.PackedSegmentIndex`.

``serve`` boots the network tier of :mod:`repro.netserve`: forked
worker processes sharing one mmap'd segment behind an asyncio frontend
speaking the length-prefixed ``ServeRequest``/``ServeResult`` wire
protocol; workers are supervised by default (crash/hang detection and
respawn — ``--no-supervise`` opts out).  ``loadgen`` drives a running
tier closed-loop and prints the SLO report (QPS, latency percentiles,
shed rate, per-worker split); see ``docs/serving-tier.md``.  ``chaos``
boots a fresh supervised cluster and SIGKILLs/SIGSTOPs workers under
load, gating on zero hangs and full recovery
(:mod:`repro.netserve.chaos`).

``--deadline-ms`` runs queries under a :mod:`repro.resilience` budget:
retrieval stops between hash probes when the budget expires and the
(flagged) partial result is reported as such.  ``stats --replay
--resilience`` replays the trace through a full
:class:`~repro.serving.server.AdServer` with adaptive degradation
enabled and prints the resilience counters alongside the usual metrics.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.explain import explain_broad_match
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.cost.model import CostModel
from repro.datagen.importers import load_corpus_csv, load_workload_tsv
from repro.datagen.stats import profile_corpus, profile_workload
from repro.obs import MetricsRegistry
from repro.obs.export import to_json, to_prometheus, write_metrics
from repro.optimize.mapping import Mapping, OptimizerConfig, optimize_mapping
from repro.optimize.remap import long_phrase_mapping
from repro.perf.batch import BatchQueryEngine
from repro.persist import load_index, save_index
from repro.resilience.deadline import Deadline


def _request_deadline(args: argparse.Namespace) -> Deadline | None:
    ms = getattr(args, "deadline_ms", None)
    return Deadline.after_ms(ms) if ms is not None else None


def _report_partial(deadline: Deadline | None) -> None:
    if deadline is not None and deadline.partial:
        reasons = ", ".join(r.value for r in deadline.partial_reasons)
        print(f"PARTIAL result (budget degraded: {reasons})")


def _cmd_build(args: argparse.Namespace) -> int:
    corpus = load_corpus_csv(args.ads, delimiter=args.delimiter)
    print(f"imported {len(corpus):,} ads from {args.ads}")
    mapping: Mapping
    if args.optimize:
        if not args.workload:
            print("error: --optimize requires --workload", file=sys.stderr)
            return 2
        workload = load_workload_tsv(args.workload)
        print(
            f"optimizing against {len(workload):,} distinct queries "
            f"({workload.total_frequency:,} total) ..."
        )
        mapping = optimize_mapping(
            corpus,
            workload,
            CostModel(),
            OptimizerConfig(max_words=args.max_words),
        )
        print(
            f"mapping: {mapping.remapped_count():,} groups re-mapped to "
            f"{mapping.num_locators():,} locators"
        )
    elif args.max_words is not None:
        mapping = long_phrase_mapping(corpus, args.max_words)
    else:
        mapping = Mapping({})
    save_index(args.out, corpus, mapping)
    print(f"wrote {args.out}")
    return 0


def _match_type(name: str) -> MatchType:
    return {
        "broad": MatchType.BROAD,
        "phrase": MatchType.PHRASE,
        "exact": MatchType.EXACT,
    }[name]


def _metrics_registry(args: argparse.Namespace) -> MetricsRegistry | None:
    """A live registry when ``--metrics-out`` was passed, else ``None``."""
    return MetricsRegistry() if getattr(args, "metrics_out", None) else None


def _flush_metrics(
    registry: MetricsRegistry | None, args: argparse.Namespace
) -> None:
    if registry is not None:
        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")


def _open_index(args: argparse.Namespace, registry: MetricsRegistry | None):
    """The retrieval index named by ``args.index``: a packed segment when
    ``--segment`` was passed, otherwise a loaded snapshot's index.
    Returns ``(index, close_callable)``."""
    if getattr(args, "segment", False):
        from repro.segment import PackedSegmentIndex

        packed = PackedSegmentIndex(args.index, obs=registry)
        return packed, packed.close
    loaded = load_index(args.index)
    if registry is not None:
        loaded.index.bind_obs(registry)
    return loaded.index, lambda: None


def _cmd_query(args: argparse.Namespace) -> int:
    registry = _metrics_registry(args)
    index, close = _open_index(args, registry)
    try:
        query = Query.from_text(args.query)
        deadline = _request_deadline(args)
        if deadline is not None and getattr(index, "supports_deadline", False):
            results = index.query(query, _match_type(args.match), deadline)
        else:
            results = index.query(query, _match_type(args.match))
        results.sort(key=lambda ad: -ad.info.bid_price_micros)
        for ad in results[: args.top]:
            print(
                f"listing {ad.info.listing_id}  "
                f"bid {ad.info.bid_price_micros}  "
                f"phrase {' '.join(ad.phrase)!r}"
            )
        print(f"({len(results)} {args.match}-match result(s))")
        _report_partial(deadline)
        _flush_metrics(registry, args)
    finally:
        close()
    return 0


def _read_batch_queries(path: str) -> list[Query]:
    if path == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    return [Query.from_text(line) for line in lines if line.strip()]


def _cmd_batch(args: argparse.Namespace) -> int:
    loaded = load_index(args.index)
    queries = _read_batch_queries(args.queries)
    if not queries:
        print("error: no queries in input", file=sys.stderr)
        return 2
    index = loaded.index
    if args.shards is not None:
        index = ShardedWordSetIndex.from_corpus(
            loaded.corpus,
            num_shards=args.shards,
            mapping=loaded.mapping.as_dict(),
        )
    registry = _metrics_registry(args)
    if registry is not None:
        index.bind_obs(registry)
    engine = BatchQueryEngine(index, max_workers=args.workers, obs=registry)
    deadline = _request_deadline(args)
    start = time.perf_counter()
    batches = engine.query_batch(queries, _match_type(args.match), deadline)
    elapsed = time.perf_counter() - start
    if args.show:
        for query, results in zip(queries, batches):
            print(f"{' '.join(query.tokens)!r}: {len(results)} result(s)")
    total = sum(len(results) for results in batches)
    stats = engine.stats
    print(
        f"{stats.queries:,} queries ({stats.distinct_wordsets:,} distinct, "
        f"{stats.dedup_rate():.0%} deduped) -> {total:,} results "
        f"in {elapsed * 1e3:.1f} ms "
        f"({stats.queries / max(elapsed, 1e-9):,.0f} qps)"
    )
    _report_partial(deadline)
    _flush_metrics(registry, args)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    loaded = load_index(args.index)
    explanation = explain_broad_match(
        loaded.index, Query.from_text(args.query)
    )
    print(explanation.summary())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if getattr(args, "tiered", False):
        return _cmd_stats_tiered(args)
    if args.segment:
        return _cmd_stats_segment(args)
    loaded = load_index(args.index)
    stats = loaded.index.stats()
    print(f"ads:                 {stats.num_ads:,}")
    print(f"distinct word-sets:  {stats.num_distinct_wordsets:,}")
    print(f"data nodes:          {stats.num_nodes:,}")
    print(f"re-mapped groups:    {loaded.mapping.remapped_count():,}")
    print(f"hash table bytes:    {stats.hash_table_bytes:,}")
    print(f"node bytes:          {stats.node_bytes:,}")
    print(f"largest node:        {stats.max_node_entries:,} entries")
    if args.replay:
        registry = MetricsRegistry()
        loaded.index.bind_obs(registry)
        _replay(loaded.index, args, registry)
        _emit_replay_metrics(registry, args)
    return 0


def _replay(index, args: argparse.Namespace, registry: MetricsRegistry) -> None:
    """Replay the trace directly, or — with ``--resilience`` — through a
    full serving pipeline with deadline budgets and adaptive degradation,
    printing the resulting resilience breakdown."""
    queries = _read_batch_queries(args.replay)
    if not getattr(args, "resilience", False):
        for query in queries:
            index.query(query)
        return
    from repro.resilience.admission import Priority
    from repro.resilience.degrade import DegradationPolicy
    from repro.serving.server import AdServer

    server = AdServer(
        index,
        degrade_on_error=True,
        degradation=DegradationPolicy(obs=registry),
        default_deadline_ms=getattr(args, "deadline_ms", None),
        obs=registry,
    )
    priority = Priority.from_name(getattr(args, "priority", "normal"))
    for query in queries:
        server.serve(query, priority=priority)
    snapshot = server.stats.snapshot()
    print("== resilience ==")
    for key in ("queries", "shed", "degraded", "stale_results",
                "deadline_partials"):
        print(f"{key + ':':21s}{snapshot[key]:,.0f}")
    for key, value in snapshot.items():
        if key.startswith("degraded_reason."):
            print(f"{key + ':':21s}{value:,.0f}")


def _cmd_stats_segment(args: argparse.Namespace) -> int:
    from repro.segment import PackedSegmentIndex

    with PackedSegmentIndex(args.index) as packed:
        stats = packed.stats()
        print(f"ads:                 {stats['num_ads']:,}")
        print(f"packed nodes:        {stats['num_nodes']:,}")
        print(f"generation:          {stats['generation']}")
        print(f"suffix bits:         {stats['suffix_bits']}")
        print(f"segment bytes:       {stats['segment_bytes']:,}")
        print(f"node bytes:          {stats['node_bytes']:,}")
        print(f"B^sig bits:          {stats['bsig_bits']:,}")
        print(f"B^off bits:          {stats['boff_bits']:,}")
        print(f"resident bytes:      {stats['resident_bytes']:,}")
        if args.replay:
            registry = MetricsRegistry()
            packed.bind_obs(registry)
            _replay(packed, args, registry)
            _emit_replay_metrics(registry, args)
    return 0


def _cmd_stats_tiered(args: argparse.Namespace) -> int:
    from repro.segment.tiered import TieredSegmentedIndex

    with TieredSegmentedIndex(args.index, read_only=True) as tiered:
        stats = tiered.stats()
        print(f"ads:                 {stats['num_ads']:,}")
        print(f"generation:          {stats['generation']}")
        print(f"sealed segments:     {len(stats['segments'])}")
        for level, count in stats["levels"].items():
            print(f"  level {level}:           {count} segment(s)")
        print(f"overlay ads:         {stats['overlay_ads']:,}")
        print(f"tombstones:          {stats['tombstones']:,}")
        print(f"read amplification:  {stats['read_amplification']}")
        print(f"read amp bound:      {stats['read_amp_bound']}")
        print(f"segment bytes:       {stats['segment_bytes']:,}")
        if args.replay:
            registry = MetricsRegistry()
            _replay(tiered, args, registry)
            _emit_replay_metrics(registry, args)
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.segment.tiered import TieredSegmentedIndex

    with TieredSegmentedIndex(args.directory) as tiered:
        before = tiered.stats()
        if args.full:
            tiered.compact()
            action = "full compaction"
        elif args.merge:
            merged = tiered.maybe_merge()
            action = f"{merged} ratio-triggered merge(s)"
        else:
            tiered.seal()
            merged = tiered.maybe_merge()
            action = f"seal + {merged} merge(s)"
        after = tiered.stats()
        print(f"{action}: generation {before['generation']} -> "
              f"{after['generation']}")
        print(f"segments:            {len(before['segments'])} -> "
              f"{len(after['segments'])}")
        print(f"read amplification:  {before['read_amplification']} -> "
              f"{after['read_amplification']}")
        print(f"tombstones:          {before['tombstones']:,} -> "
              f"{after['tombstones']:,}")
    return 0


def _emit_replay_metrics(
    registry: MetricsRegistry, args: argparse.Namespace
) -> None:
    if args.metrics_out:
        _flush_metrics(registry, args)
    elif args.metrics_format == "json":
        print(to_json(registry))
    else:
        print(to_prometheus(registry), end="")


def _cmd_pack(args: argparse.Namespace) -> int:
    import os

    from repro.segment import SegmentBuilder

    loaded = load_index(args.index)
    if getattr(args, "tiered", False):
        return _pack_tiered(args, loaded)
    builder = SegmentBuilder(loaded.index, suffix_bits=args.suffix_bits)
    builder.write(args.out, generation=loaded.generation)
    size = os.path.getsize(args.out)
    print(
        f"packed {len(loaded.index):,} ads "
        f"({len(loaded.index.nodes):,} nodes -> "
        f"suffix bits {builder.suffix_bits}) into {args.out} "
        f"({size:,} bytes)"
    )
    return 0


def _pack_tiered(args: argparse.Namespace, loaded) -> int:
    from repro.segment.tiered import (
        TieredConfig,
        TieredSegmentedIndex,
        pack_corpus_tiered,
    )

    config = TieredConfig(
        seal_threshold=args.seal_threshold,
        fan_in=args.fan_in,
        suffix_bits=args.suffix_bits,
        max_words=loaded.index.max_words,
        max_query_words=loaded.index.max_query_words,
        fast_path=loaded.index.fast_path,
    )
    ads = [
        entry.ad
        for node in loaded.index.nodes.values()
        for entry in node.entries
    ]
    mapping = {
        words: locator
        for words, locator in loaded.index.placement().items()
        if words != locator
    }
    if args.shards > 1:
        sharded = pack_corpus_tiered(
            ads, args.out, num_shards=args.shards,
            config=config, mapping=mapping,
        )
        for shard in sharded.shards:
            shard.close()
        print(
            f"packed {len(ads):,} ads into {args.shards} tiered "
            f"shard(s) under {args.out}"
        )
    else:
        with TieredSegmentedIndex.pack_corpus(
            ads, args.out, config=config, mapping=mapping
        ) as tiered:
            stats = tiered.stats()
        print(
            f"packed {len(ads):,} ads into tiered index {args.out} "
            f"(generation {stats['generation']}, "
            f"{stats['segment_bytes']:,} segment bytes)"
        )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.core.matching import naive_broad_match
    from repro.core.wordset_index import WordSetIndex
    from repro.oplog import DurableIndex
    from repro.persist import PersistenceError

    try:
        durable = DurableIndex(args.snapshot, args.log)
    except PersistenceError as exc:
        print(f"recovery FAILED: {exc}", file=sys.stderr)
        return 1
    report = durable.recovery
    print(f"snapshot generation:  {report.generation}")
    print(f"replayed ops:         {report.replayed_ops:,}")
    print(f"stale ops skipped:    {report.stale_ops_skipped:,}")
    print(f"torn tail truncated:  {report.truncated_tail}")
    print(f"live ads:             {len(durable):,}")
    status = 0
    if args.verify:
        # Oracle: a fresh in-memory index over the recovered corpus;
        # every ad must be retrievable through the recovered structure
        # with exactly the oracle's result set for its own phrase.
        oracle = WordSetIndex.from_corpus(durable.corpus)
        mismatches = 0
        for ad in durable.corpus:
            probe = Query(tokens=ad.phrase)
            got = sorted(
                (a.phrase, a.info.listing_id) for a in durable.query(probe)
            )
            want = sorted(
                (a.phrase, a.info.listing_id)
                for a in naive_broad_match(durable.corpus, probe)
            )
            oracle_got = sorted(
                (a.phrase, a.info.listing_id) for a in oracle.query(probe)
            )
            if got != want or oracle_got != want:
                mismatches += 1
        if mismatches:
            print(f"verify FAILED: {mismatches} ad(s) not retrievable")
            status = 1
        else:
            print(f"verify OK: {len(durable.corpus):,} ads retrievable")
    if args.compact and status == 0:
        durable.compact()
        print(
            f"compacted into generation {durable.generation} "
            f"(log truncated)"
        )
    if args.pack and status == 0:
        from repro.segment import SegmentBuilder

        SegmentBuilder(durable.index).write(
            args.pack, generation=durable.generation
        )
        print(f"packed recovered index into {args.pack}")
    durable.close()
    return status


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.kernels.bench import run_kernel_bench

    def run() -> dict:
        return run_kernel_bench(
            num_ads=args.num_ads,
            num_queries=args.num_queries,
            query_len=args.query_len,
            batch_size=args.batch_size,
            passes=args.passes,
            seed=args.seed,
            backend=args.backend,
            enforce_gates=not args.no_gates,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        results = run()
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        print(f"== top {args.top} hot spots (cumulative) ==")
        stats.print_stats(args.top)
    else:
        results = run()
    for name in ("wordset_index", "packed_segment"):
        doc = results[name]
        print(
            f"{name}: {doc['baseline']['qps']:,.0f} -> "
            f"{doc['kernel']['qps']:,.0f} qps "
            f"({doc['speedup']:.1f}x, backend={results['backend']})"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    corpus = load_corpus_csv(args.ads, delimiter=args.delimiter)
    print("== corpus ==")
    print(profile_corpus(corpus).summary())
    if args.workload:
        print("== workload ==")
        print(profile_workload(load_workload_tsv(args.workload)).summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time as _time

    from repro.netserve import ClusterConfig, ServingCluster
    from repro.resilience.admission import AdmissionConfig

    admission = None
    if args.rate_per_s is not None or args.max_queue_depth is not None:
        admission = AdmissionConfig(
            rate_per_s=args.rate_per_s,
            burst=args.burst,
            max_queue_depth=args.max_queue_depth,
        )
    config = ClusterConfig(
        segment_path=args.segment,
        num_workers=args.workers,
        host=args.host,
        port=args.port,
        conns_per_worker=args.conns_per_worker,
        default_deadline_ms=args.deadline_ms,
        admission=admission,
        frontend_process=True,
        max_batch=args.max_batch,
        batch_wait_us=args.batch_wait_us,
        reload_check_interval_s=args.reload_check_interval_s,
        coalesce=args.coalesce,
        cache_entries=args.cache_entries,
        supervise=not args.no_supervise,
        drain_timeout_s=args.drain_timeout_s,
    )
    with ServingCluster(config) as cluster:
        host, port = cluster.address
        batching = (
            f"max_batch {args.max_batch}, coalesce "
            f"{'on' if args.coalesce else 'off'}, cache "
            f"{args.cache_entries}"
        )
        supervision = (
            "unsupervised" if args.no_supervise else "supervised"
        )
        print(
            f"serving {args.segment} on {host}:{port} "
            f"({args.workers} worker(s), {supervision}, {batching}, "
            "Ctrl-C to stop)"
        )
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.netserve import LoadGenConfig, run_loadgen
    from repro.resilience.admission import Priority

    queries = _read_batch_queries(args.queries)
    if not queries:
        print("error: no queries in input", file=sys.stderr)
        return 2
    report = run_loadgen(
        LoadGenConfig(
            host=args.host,
            port=args.port,
            duration_s=args.duration_s,
            concurrency=args.concurrency,
            deadline_ms=args.deadline_ms,
            priority=Priority.from_name(args.priority),
            user_ids=args.user_ids,
            zipf_s=args.zipf_s,
            zipf_seed=args.zipf_seed,
        ),
        queries,
    )
    latency = report["latency_ms"]
    print(
        f"qps {report['qps']:,.1f}  "
        f"p50 {latency['p50']:.2f}ms  p95 {latency['p95']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms"
    )
    print(
        f"ok {report['ok']}  shed {report['shed']}  "
        f"degraded {report['degraded']}  errors {report['errors']}  "
        f"shed_rate {report['shed_rate']:.3f}"
    )
    if report["errors"]:
        print(
            f"  timeouts {report.get('timeouts', 0)}  "
            f"connection_errors {report.get('connection_errors', 0)}  "
            f"error_frames {report.get('error_frames', 0)}"
        )
    traffic = report.get("traffic") or {}
    coalescing = report.get("coalescing") or {}
    if traffic.get("mode") == "zipf":
        fraction = traffic.get("unique_query_fraction")
        print(
            f"traffic zipf(s={traffic.get('zipf_s')})  "
            f"unique_query_fraction "
            f"{fraction if fraction is None else f'{fraction:.3f}'}  "
            f"coalesced {coalescing.get('coalesced', 0)}  "
            f"cache_hits {coalescing.get('cache_hits', 0)}"
        )
    for worker in report["workers"]:
        if worker.get("unreachable"):
            print(f"worker {worker.get('worker_id')}: unreachable")
            continue
        print(
            f"worker {worker['worker_id']}: {worker['qps']:,.1f} qps "
            f"({worker['served']} served)"
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0 if report["errors"] == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.netserve.chaos import main as chaos_main

    argv = [
        "--workers", str(args.workers),
        "--kills", str(args.kills),
        "--sigstops", str(args.sigstops),
        "--chaos-duration-s", str(args.duration_s),
        "--seed", str(args.seed),
    ]
    if args.out:
        argv += ["--out", args.out]
    return chaos_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Broad-match index operations."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="import ads and write a snapshot")
    build.add_argument("--ads", required=True, help="ad corpus CSV")
    build.add_argument("--out", required=True, help="snapshot path")
    build.add_argument("--delimiter", default=",")
    build.add_argument("--workload", help="query trace TSV for --optimize")
    build.add_argument(
        "--optimize",
        action="store_true",
        help="run the set-cover mapping optimizer against --workload",
    )
    build.add_argument("--max-words", type=int, default=None)
    build.set_defaults(handler=_cmd_build)

    query = sub.add_parser(
        "query", help="run one query against a snapshot or packed segment"
    )
    query.add_argument("index")
    query.add_argument("query")
    query.add_argument(
        "--segment",
        action="store_true",
        help="treat INDEX as a packed segment file (serve via mmap)",
    )
    query.add_argument(
        "--match", choices=("broad", "phrase", "exact"), default="broad"
    )
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query retrieval budget; an expired budget returns a "
        "flagged partial result instead of blowing the deadline",
    )
    query.add_argument(
        "--metrics-out",
        default=None,
        help="write metrics after the query (.json -> JSON snapshot, "
        "anything else -> Prometheus text exposition)",
    )
    query.set_defaults(handler=_cmd_query)

    batch = sub.add_parser(
        "batch", help="run a file of queries as one deduplicated batch"
    )
    batch.add_argument("index")
    batch.add_argument(
        "queries", help="file with one query per line ('-' for stdin)"
    )
    batch.add_argument(
        "--match", choices=("broad", "phrase", "exact"), default="broad"
    )
    batch.add_argument(
        "--shards",
        type=int,
        default=None,
        help="re-shard the corpus and fan out across shards",
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="worker-pool width"
    )
    batch.add_argument(
        "--show", action="store_true", help="print per-query result counts"
    )
    batch.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="budget covering the whole batch; unprobed positions get "
        "empty results and the batch is reported partial",
    )
    batch.add_argument(
        "--metrics-out",
        default=None,
        help="write metrics after the batch (.json -> JSON snapshot, "
        "anything else -> Prometheus text exposition)",
    )
    batch.set_defaults(handler=_cmd_batch)

    explain = sub.add_parser("explain", help="profile one broad-match query")
    explain.add_argument("index")
    explain.add_argument("query")
    explain.set_defaults(handler=_cmd_explain)

    stats = sub.add_parser(
        "stats", help="snapshot or packed-segment statistics"
    )
    stats.add_argument("index")
    stats.add_argument(
        "--segment",
        action="store_true",
        help="treat INDEX as a packed segment file",
    )
    stats.add_argument(
        "--tiered",
        action="store_true",
        help="treat INDEX as a tiered-segment directory",
    )
    stats.add_argument(
        "--replay",
        default=None,
        help="replay a file of queries ('-' for stdin) with metrics "
        "enabled and print/write the collected metrics",
    )
    stats.add_argument(
        "--resilience",
        action="store_true",
        help="serve the --replay trace through the full AdServer with "
        "adaptive degradation and print the resilience breakdown",
    )
    stats.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query budget for --resilience replay",
    )
    stats.add_argument(
        "--priority",
        choices=("low", "normal", "high"),
        default="normal",
        help="priority class for --resilience replay",
    )
    stats.add_argument(
        "--metrics-format",
        choices=("prom", "json"),
        default="prom",
        help="exposition format for --replay output on stdout",
    )
    stats.add_argument(
        "--metrics-out",
        default=None,
        help="write --replay metrics to a file instead of stdout",
    )
    stats.set_defaults(handler=_cmd_stats)

    recover = sub.add_parser(
        "recover", help="run snapshot + op-log crash recovery"
    )
    recover.add_argument("snapshot", help="base snapshot path")
    recover.add_argument("log", help="op-log path")
    recover.add_argument(
        "--verify",
        action="store_true",
        help="check every recovered ad is retrievable against a rebuilt "
        "oracle index (exit 1 on mismatch)",
    )
    recover.add_argument(
        "--compact",
        action="store_true",
        help="fold the recovered log into a fresh snapshot generation",
    )
    recover.add_argument(
        "--pack",
        default=None,
        metavar="SEGMENT",
        help="write a packed segment of the recovered index, so cold "
        "start is recover-once/serve-packed",
    )
    recover.set_defaults(handler=_cmd_recover)

    pack = sub.add_parser(
        "pack", help="freeze a snapshot into a packed segment file"
    )
    pack.add_argument("index", help="snapshot path")
    pack.add_argument("out", help="segment output path")
    pack.add_argument(
        "--suffix-bits",
        type=int,
        default=None,
        help="B^sig suffix width (default: adaptive to node count)",
    )
    pack.add_argument(
        "--tiered",
        action="store_true",
        help="write a tiered-segment directory (manifest + L0 seed) "
        "instead of a single segment file",
    )
    pack.add_argument(
        "--shards",
        type=int,
        default=1,
        help="tiered only: partition into this many shard directories",
    )
    pack.add_argument(
        "--seal-threshold",
        type=int,
        default=512,
        help="tiered only: overlay ads per automatic seal",
    )
    pack.add_argument(
        "--fan-in",
        type=int,
        default=4,
        help="tiered only: segments per level before a merge",
    )
    pack.set_defaults(handler=_cmd_pack)

    compact = sub.add_parser(
        "compact",
        help="seal and merge a tiered-segment directory",
    )
    compact.add_argument("directory", help="tiered index directory")
    compact.add_argument(
        "--merge",
        action="store_true",
        help="only run ratio-triggered merges (no seal)",
    )
    compact.add_argument(
        "--full",
        action="store_true",
        help="seal and fold every tier into a single segment",
    )
    compact.set_defaults(handler=_cmd_compact)

    profile = sub.add_parser(
        "profile", help="Section I-B diagnostics for a corpus/workload"
    )
    profile.add_argument("--ads", required=True)
    profile.add_argument("--delimiter", default=",")
    profile.add_argument("--workload")
    profile.set_defaults(handler=_cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="run the kernel batch-QPS benchmark (scalar vs kernels)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print the hottest call sites",
    )
    bench.add_argument(
        "--top",
        type=int,
        default=20,
        help="number of cumulative hot spots --profile prints",
    )
    bench.add_argument(
        "--backend",
        choices=("numpy", "python"),
        default=None,
        help="kernel backend to compare against the scalar baseline "
        "(default: the active REPRO_KERNELS backend)",
    )
    bench.add_argument("--out", default=None, help="write results JSON")
    bench.add_argument(
        "--no-gates",
        action="store_true",
        help="skip the speedup acceptance gates (off-size profiling runs)",
    )
    bench.add_argument("--num-ads", type=int, default=4_000)
    bench.add_argument("--num-queries", type=int, default=96)
    bench.add_argument("--query-len", type=int, default=16)
    bench.add_argument("--batch-size", type=int, default=32)
    bench.add_argument("--passes", type=int, default=5)
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(handler=_cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="boot the network serving tier over a packed segment",
    )
    serve.add_argument("segment", help="packed segment file (see 'pack')")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--conns-per-worker", type=int, default=2)
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="server-side budget for requests that carry none",
    )
    serve.add_argument(
        "--rate-per-s",
        type=float,
        default=None,
        help="admission token-bucket refill rate (enables shedding)",
    )
    serve.add_argument("--burst", type=float, default=32.0)
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="in-flight backlog beyond which requests shed",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=1,
        help="worker micro-batch size (1 = scalar serving)",
    )
    serve.add_argument(
        "--batch-wait-us",
        type=float,
        default=500.0,
        help="how long a worker batch waits for stragglers",
    )
    serve.add_argument(
        "--reload-check-interval-s",
        type=float,
        default=0.25,
        help="tiered mode: manifest-probe throttle between batches",
    )
    serve.add_argument(
        "--coalesce",
        action="store_true",
        help="singleflight identical in-flight serve requests",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=0,
        help="frontend result-cache capacity (0 disables)",
    )
    serve.add_argument(
        "--no-supervise",
        action="store_true",
        help="disable the self-healing worker supervisor (crashed "
        "workers then stay dead)",
    )
    serve.add_argument(
        "--drain-timeout-s",
        type=float,
        default=5.0,
        help="graceful-stop budget: serve already-queued requests for "
        "up to this long before erroring them",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serving tier closed-loop and print the SLO report",
    )
    loadgen.add_argument(
        "queries", help="file with one query per line ('-' for stdin)"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--duration-s", type=float, default=5.0)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--deadline-ms", type=float, default=None)
    loadgen.add_argument(
        "--priority", choices=("low", "normal", "high"), default="normal"
    )
    loadgen.add_argument(
        "--user-ids",
        type=int,
        default=0,
        help="cycle this many synthetic user ids through requests",
    )
    loadgen.add_argument(
        "--zipf-s",
        type=float,
        default=None,
        help="draw queries Zipf(s)-distributed (duplicate-heavy traffic)",
    )
    loadgen.add_argument("--zipf-seed", type=int, default=0)
    loadgen.add_argument("--out", default=None, help="write report JSON")
    loadgen.set_defaults(handler=_cmd_loadgen)

    chaos = sub.add_parser(
        "chaos",
        help="kill-driven resilience drill against a fresh supervised "
        "cluster (SIGKILL/SIGSTOP workers under load, gate on recovery)",
    )
    chaos.add_argument("--workers", type=int, default=3)
    chaos.add_argument("--kills", type=int, default=2)
    chaos.add_argument("--sigstops", type=int, default=1)
    chaos.add_argument("--duration-s", type=float, default=6.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--out", default=None, help="write drill report JSON")
    chaos.set_defaults(handler=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
