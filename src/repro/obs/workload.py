"""Live co-access statistics, recorded and harvested through the registry.

The paper's Section V optimizer consumes a workload ``WL`` with a
frequency function ``frq``.  Offline that comes from a trace file; on
the serving path it has to come from *observation*.
:class:`WorkloadRecorder` is that bridge: each broad-match query's
word-set is folded to a canonical key and counted in a
:class:`~repro.obs.registry.MetricsRegistry` counter
(``workload.coaccess.<sorted words>``), so the co-access distribution
rides the same registry as every other serving metric — visible in
snapshots and Prometheus exports, zeroed by ``reset()``, and
harvestable by whoever wants to re-optimize (the tiered merge path,
:mod:`repro.segment.tiered`, turns the harvest back into a
``Workload`` and runs the greedy set cover over it).

Cardinality is bounded: after ``max_tracked`` distinct word-sets the
recorder only increments sets it already tracks and counts the spill in
``workload.coaccess_overflow`` — a merge optimizing for the head of the
distribution is exactly the paper's intent, and an unbounded per-query
label space would be an observability bug.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

__all__ = ["COACCESS_PREFIX", "WorkloadRecorder"]

#: Counter-name prefix for one recorded word-set's co-access count.
COACCESS_PREFIX = "workload.coaccess."

#: Distinct word-sets tracked before new ones spill to the overflow
#: counter.  The head of a power-law workload fits comfortably.
DEFAULT_MAX_TRACKED = 1024


class WorkloadRecorder:
    """Counts query word-sets in a registry; harvests them back out."""

    def __init__(
        self,
        obs: MetricsRegistry,
        max_tracked: int = DEFAULT_MAX_TRACKED,
    ) -> None:
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self._obs = obs
        self._max_tracked = max_tracked
        self._tracked: set[str] = set()
        self._overflow = obs.counter(
            "workload.coaccess_overflow",
            help="Queries dropped after max_tracked distinct word-sets",
        )

    @staticmethod
    def key_for(words: frozenset[str]) -> str:
        """Canonical counter-name suffix for one word-set."""
        return " ".join(sorted(words))

    def record(self, words: frozenset[str]) -> None:
        """Count one broad-match access of ``words``."""
        if not words:
            return
        key = self.key_for(words)
        if key not in self._tracked:
            if len(self._tracked) >= self._max_tracked:
                self._overflow.inc()
                return
            self._tracked.add(key)
        self._obs.counter(COACCESS_PREFIX + key).inc()

    def harvest(self) -> list[tuple[frozenset[str], int]]:
        """Every recorded ``(word-set, frequency)`` pair, from the
        registry itself (counters survive ``reset()`` as zeroes; those
        are skipped).  Returned in descending-frequency order."""
        pairs: list[tuple[frozenset[str], int]] = []
        for metric in self._obs.collect():
            if not metric.name.startswith(COACCESS_PREFIX):
                continue
            frequency = int(self._obs.value(metric.name))
            if frequency <= 0:
                continue
            words = frozenset(metric.name[len(COACCESS_PREFIX):].split())
            pairs.append((words, frequency))
        pairs.sort(key=lambda pair: (-pair[1], sorted(pair[0])))
        return pairs

    def distinct_tracked(self) -> int:
        return len(self._tracked)
