"""The metrics registry: counters, gauges, and fixed-bucket histograms.

One registry instance is the unit of observation: every instrumented
component (index, cache, batch engine, ad server, simulators) records into
the registry it was handed at construction, so a single query's path
through the whole serving pipeline lands in one correlated snapshot.

Design constraints, in priority order:

1. **Off is free.**  Components normalise a disabled registry (``None`` or
   :data:`NULL_REGISTRY`) to ``None`` and guard every record site with one
   ``is not None`` check, so the uninstrumented hot path is byte-for-byte
   the seed code path.  The fast-path benchmark gates this at <= 5%.
2. **Zero dependencies.**  Plain stdlib; no prometheus_client, no numpy.
3. **Cheap when on.**  Instruments are resolved once (``registry.counter``
   get-or-creates), observations are integer adds / one bisect.

Percentiles (p50/p95/p99) are derived from the fixed buckets by linear
interpolation inside the winning bucket, clamped to the observed min/max —
so an empty histogram reports 0.0 and a single-sample histogram reports
exactly that sample.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from collections.abc import Callable, Iterable, Iterator, Sequence
from time import perf_counter
from types import TracebackType
from typing import TypeVar

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "uniform_histogram",
]

#: Default span-latency buckets, in milliseconds: roughly geometric from
#: 1 microsecond to 10 seconds, matching the sub-millisecond scale of
#: in-memory probes and the multi-millisecond scale of simulated clusters.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, cache occupancy)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are ascending bucket edges; an implicit overflow bucket
    catches everything above the last edge.  ``closed`` selects which edge
    a value landing exactly on a bound belongs to: ``"right"`` is the
    Prometheus ``le`` convention (bucket covers ``(lo, hi]``), ``"left"``
    gives the floor-style ``[lo, hi)`` buckets the distsim latency plots
    use.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help",
        "bounds",
        "bucket_counts",
        "count",
        "sum",
        "_min",
        "_max",
        "_closed_left",
    )

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        closed: str = "right",
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if any(b >= c for b, c in zip(ordered, ordered[1:])):
            raise ValueError("bucket bounds must be strictly ascending")
        if closed not in ("right", "left"):
            raise ValueError("closed must be 'right' or 'left'")
        self.name = name
        self.help = help
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # last = overflow
        self.count = 0
        self.sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._closed_left = closed == "left"

    def observe(self, value: float) -> None:
        if self._closed_left:
            index = bisect_right(self.bounds, value)
        else:
            index = bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        if self.count:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        else:
            self._min = value
            self._max = value
        self.count += 1
        self.sum += value

    # -------------------------------------------------------------- #
    # Derived values

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile from the bucket counts.

        Linear interpolation inside the winning bucket, clamped to the
        observed ``[min, max]`` range.  Empty histograms report 0.0; a
        single observation reports exactly itself.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if not self.count:
            return 0.0
        target = self.count * (p / 100.0)
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self._max
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self._min), self._max)
            cumulative += bucket_count
        return self._max

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def bucket_fractions(self) -> dict[float, float]:
        """Non-empty buckets as ``{lower edge: fraction of samples}``.

        The overflow bucket (values above the last bound) is keyed by the
        last bound itself.  This is the shape the distsim latency plots
        (paper Fig 9) consume.
        """
        if not self.count:
            return {}
        fractions: dict[float, float] = {}
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            if index == len(self.bounds):
                lower = self.bounds[-1]
            fractions[lower] = bucket_count / self.count
        return fractions

    def snapshot(self) -> dict[str, object]:
        buckets: dict[str, int] = {}
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            buckets[repr(bound)] = cumulative
        buckets["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self._min if self.count else 0.0,
            "max": self._max if self.count else 0.0,
            "mean": self.mean(),
            "p50": self.p50 if self.count else 0.0,
            "p95": self.p95 if self.count else 0.0,
            "p99": self.p99 if self.count else 0.0,
            "buckets": buckets,
        }


def uniform_histogram(
    samples: Iterable[float], bucket_width: float, name: str = "uniform"
) -> Histogram:
    """Build a left-closed histogram with uniform ``bucket_width`` buckets
    covering every sample — the shared replacement for the bespoke
    floor-bucketing the distsim metrics used to hand-roll."""
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    values = list(samples)
    top = max(values, default=0.0)
    num_buckets = max(1, int(top // bucket_width) + 1)
    bounds = tuple(bucket_width * i for i in range(1, num_buckets + 1))
    histogram = Histogram(name, bounds=bounds, closed="left")
    for value in values:
        histogram.observe(value)
    return histogram


class Span:
    """Times a ``with`` block into a latency histogram (milliseconds)."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> Span:
        self._started = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._histogram.observe((perf_counter() - self._started) * 1e3)


Metric = Counter | Gauge | Histogram

#: Constrained instrument type for the registry's get-or-create helper.
_M = TypeVar("_M", Counter, Gauge, Histogram)

#: Histogram-name prefix every span records under; ``span("probe")`` times
#: into the histogram ``span.probe``.
SPAN_PREFIX = "span."


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one unit."""

    #: Components check this once at construction: a falsy value means the
    #: registry may be treated as absent and skipped entirely.
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Instrument access (get-or-create)

    def _get_or_create(
        self, name: str, cls: type[_M], make: Callable[[], _M]
    ) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = make()
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help=help)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help=help))

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        closed: str = "right",
    ) -> Histogram:
        metric = self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(name, bounds=bounds, help=help, closed=closed),
        )
        return metric

    def span(self, name: str) -> Span:
        """A context manager timing its block into ``span.<name>`` (ms)."""
        return Span(self.histogram(SPAN_PREFIX + name))

    # -------------------------------------------------------------- #
    # Inspection

    def collect(self) -> list[Metric]:
        """Every registered instrument, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.collect())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """Convenience: current value of a counter/gauge (0 if absent)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value

    def reset(self) -> None:
        """Zero every instrument in place (a fresh observation window).

        Instruments are kept, not dropped: components cache direct
        references to their counters at :func:`bind_obs` time, so the
        registry must never invalidate them.
        """
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    metric.bucket_counts = [0] * len(metric.bucket_counts)
                    metric.count = 0
                    metric.sum = 0.0
                    metric._min = 0.0
                    metric._max = 0.0
                elif isinstance(metric, Counter):
                    metric.value = 0
                else:
                    metric.value = 0.0

    def snapshot(self) -> dict[str, object]:
        """The JSON-ready snapshot of every instrument.

        Shape::

            {"counters": {name: int},
             "gauges": {name: float},
             "histograms": {name: {count, sum, min, max, mean,
                                   p50, p95, p99, buckets}}}
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, object] = {}
        for metric in self.collect():
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = metric.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Components normalise this to ``None`` internally (via
    :attr:`enabled`), so passing ``NULL_REGISTRY`` costs exactly as much
    as passing nothing.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        help: str = "",
        closed: str = "right",
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def span(self, name: str) -> Span:
        return _NULL_INSTRUMENT  # type: ignore[return-value]


#: The process-wide disabled registry; the default for every component.
NULL_REGISTRY = NullRegistry()


def active_or_none(obs: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Normalise a registry argument: ``None`` stays ``None``, a disabled
    registry becomes ``None``, an enabled one passes through.  Components
    call this once at construction so their hot paths need only a single
    ``is not None`` check."""
    if obs is None or not obs.enabled:
        return None
    return obs
