"""repro.obs — the unified observability layer.

One :class:`MetricsRegistry` instance correlates everything a query does
across the serving stack: hash probes and node scans in the index, cache
hits in :class:`~repro.serving.result_cache.CachedIndex`, dedup in
:class:`~repro.perf.batch.BatchQueryEngine`, filter drops and auction
outcomes in :class:`~repro.serving.server.AdServer`, and per-stage span
timings for each of those layers.

Usage::

    from repro import obs

    registry = obs.MetricsRegistry()
    index = WordSetIndex.from_corpus(corpus, obs=registry)
    server = AdServer(CachedIndex(index, obs=registry), obs=registry)
    server.serve(query)

    print(obs.to_prometheus(registry))   # scrape-format text
    registry.snapshot()                  # JSON-ready dict

Instrumentation is **off by default**: components take ``obs=None`` (or
the shared :data:`NULL_REGISTRY`) and normalise it away at construction,
so the uninstrumented hot path is unchanged — the fast-path benchmark
gates the no-op overhead at <= 5%.

See ``docs/observability.md`` for the span taxonomy and metric catalog.
"""

from repro.obs.export import (
    prometheus_name,
    to_json,
    to_prometheus,
    write_metrics,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NULL_REGISTRY,
    SPAN_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
    active_or_none,
    uniform_histogram,
)
from repro.obs.workload import WorkloadRecorder

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "NULL_REGISTRY",
    "SPAN_PREFIX",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "WorkloadRecorder",
    "active_or_none",
    "prometheus_name",
    "to_json",
    "to_prometheus",
    "uniform_histogram",
    "write_metrics",
]
