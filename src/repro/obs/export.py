"""Exposition formats for a :class:`~repro.obs.registry.MetricsRegistry`.

Two renderings of the same snapshot:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le="..."}`` series, ``_sum``
  and ``_count``), suitable for a scrape endpoint or a textfile collector;
* :func:`to_json` — the registry's JSON snapshot, suitable for
  ``--metrics-out`` files and programmatic assertions.

Metric names here use dots as namespace separators (``index.probes``,
``span.auction``); the Prometheus rendering sanitises them to the legal
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset and prefixes everything with
``repro_``.
"""

from __future__ import annotations

import json
import os

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


def prometheus_name(name: str) -> str:
    """``index.probes`` -> ``repro_index_probes``."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _format_value(value: float) -> str:
    if isinstance(value, int) or value == int(value):
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text format."""
    lines: list[str] = []
    for metric in registry.collect():
        name = prometheus_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                metric.bounds, metric.bucket_counts
            ):
                cumulative += bucket_count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def write_metrics(
    registry: MetricsRegistry, path: str | os.PathLike[str]
) -> None:
    """Write the registry to ``path``; ``.json`` selects the JSON
    snapshot, anything else the Prometheus text exposition."""
    path = os.fspath(path)
    if path.endswith(".json"):
        payload = to_json(registry) + "\n"
    else:
        payload = to_prometheus(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
