"""Kernel benchmark driver: batch QPS, scalar loop vs array kernels.

Replays a steady-state broad-match batch workload — long queries, the
regime where per-probe interpreter overhead dominates — through
:class:`~repro.perf.batch.BatchQueryEngine` twice over otherwise
identical state: once with ``REPRO_KERNELS=off`` (the pre-kernel scalar
loops, the PR baseline) and once with the active kernel backend.
Result slates are verified bit-identical, then single-thread batch QPS
is compared; the same comparison runs against the dict-backed
:class:`~repro.core.wordset_index.WordSetIndex` and the mmap-backed
:class:`~repro.segment.packed.PackedSegmentIndex`.

The acceptance gates (enforced inside :func:`run_kernel_bench` itself,
and re-asserted by ``benchmarks/test_bench_kernels.py``): kernel-backend
batch QPS must be at least **3x** the scalar baseline on the packed
serving path and at least **2x** on the mutable index.  Results are
written as JSON (``BENCH_PR6.json`` at the repo root by convention)::

    PYTHONPATH=src python -m repro.kernels.bench --out BENCH_PR6.json
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Sequence

from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.kernels import active_backend, set_backend
from repro.kernels.flat import clear_caches
from repro.perf.batch import BatchQueryEngine
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder
from repro.segment.packed import PackedSegmentIndex


def _slate_ids(results: list[list[Any]]) -> list[list[int]]:
    return [sorted(ad.info.listing_id for ad in ads) for ads in results]


def _replay(
    engine: BatchQueryEngine,
    batches: Sequence[Sequence[Query]],
    passes: int,
) -> tuple[list[list[int]], float]:
    """Replay every batch ``passes`` times (first pass is untimed warmup,
    so caches — decode, plan-key, node-key-table — reach steady state);
    returns the final pass's slate ids and the best (min) pass seconds,
    the standard noise-resistant wall-clock estimator."""
    slates: list[list[int]] = []
    for batch in batches:  # warmup, untimed
        engine.query_broad_batch(batch)
    best = float("inf")
    for _ in range(passes):
        slates = []
        start = time.perf_counter()
        for batch in batches:
            slates.extend(_slate_ids(engine.query_broad_batch(batch)))
        best = min(best, time.perf_counter() - start)
    return slates, best


def _compare(
    make_index: Any,
    batches: Sequence[Sequence[Query]],
    passes: int,
    backend: str,
) -> dict[str, Any]:
    """Baseline (``off``) vs kernel replay over fresh index instances."""
    num_queries = sum(len(batch) for batch in batches)

    set_backend("off")
    try:
        baseline_slates, baseline_seconds = _replay(
            BatchQueryEngine(make_index()), batches, passes
        )
    finally:
        set_backend(None)

    clear_caches()
    set_backend(backend)
    try:
        kernel_slates, kernel_seconds = _replay(
            BatchQueryEngine(make_index()), batches, passes
        )
    finally:
        set_backend(None)

    if kernel_slates != baseline_slates:
        raise AssertionError(
            "kernel results diverged from the scalar baseline"
        )
    baseline_qps = num_queries / max(1e-9, baseline_seconds)
    kernel_qps = num_queries / max(1e-9, kernel_seconds)
    return {
        "identical_results": True,
        "queries_timed": num_queries,
        "baseline": {"seconds": baseline_seconds, "qps": baseline_qps},
        "kernel": {"seconds": kernel_seconds, "qps": kernel_qps},
        "speedup": kernel_qps / baseline_qps,
    }


def run_kernel_bench(
    num_ads: int = 4_000,
    num_queries: int = 96,
    query_len: int = 16,
    batch_size: int = 32,
    passes: int = 5,
    seed: int = 0,
    backend: str | None = None,
    enforce_gates: bool = True,
) -> dict[str, Any]:
    """Execute the full comparison; returns the results document."""
    backend = backend if backend is not None else active_backend()
    if backend == "off":
        raise ValueError("cannot benchmark the kernels with REPRO_KERNELS=off")
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )
    batches = [
        queries[i : i + batch_size]
        for i in range(0, len(queries), batch_size)
    ]

    index_doc = _compare(
        lambda: WordSetIndex.from_corpus(generated.corpus),
        batches,
        passes,
        backend,
    )

    with tempfile.TemporaryDirectory() as tmp:
        segment_path = Path(tmp) / "bench.seg"
        SegmentBuilder(
            WordSetIndex.from_corpus(generated.corpus)
        ).write(segment_path)
        segment = PackedSegmentIndex(segment_path)
        try:
            segment_doc = _compare(
                lambda: segment, batches, passes, backend
            )
        finally:
            segment.close()

    # The PR acceptance gate, enforced here so any run of the benchmark
    # (standalone or through the bench suite) fails loudly on a
    # regression: the packed serving path — the live query tier — must
    # hold >= 3x batch QPS over the pre-kernel scalar engine, and the
    # mutable index must hold >= 2x.
    gates = {"packed_segment": 3.0, "wordset_index": 2.0}
    docs = {"wordset_index": index_doc, "packed_segment": segment_doc}
    if enforce_gates:
        for name, minimum in gates.items():
            speedup = docs[name]["speedup"]
            if speedup < minimum:
                raise AssertionError(
                    f"{name} kernel speedup {speedup:.2f}x is below the "
                    f"{minimum:.1f}x gate (backend={backend})"
                )
    return {
        "benchmark": "kernels",
        "backend": backend,
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "batch_size": batch_size,
            "passes": passes,
            "seed": seed,
        },
        "gates": gates,
        "wordset_index": index_doc,
        "packed_segment": segment_doc,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.kernels.bench",
        description="Kernel batch-QPS benchmark (writes JSON).",
    )
    parser.add_argument("--out", default="BENCH_PR6.json")
    parser.add_argument("--num-ads", type=int, default=4_000)
    parser.add_argument("--num-queries", type=int, default=96)
    parser.add_argument("--query-len", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        default=None,
        choices=("numpy", "python"),
        help="Kernel backend to compare against the scalar baseline "
        "(default: the active REPRO_KERNELS backend).",
    )
    args = parser.parse_args(argv)
    results = run_kernel_bench(
        num_ads=args.num_ads,
        num_queries=args.num_queries,
        query_len=args.query_len,
        batch_size=args.batch_size,
        passes=args.passes,
        seed=args.seed,
        backend=args.backend,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name in ("wordset_index", "packed_segment"):
        doc = results[name]
        print(
            f"{name}: {doc['baseline']['qps']:,.0f} -> "
            f"{doc['kernel']['qps']:,.0f} qps "
            f"({doc['speedup']:.1f}x, backend={results['backend']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
