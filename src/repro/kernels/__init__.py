"""Array-at-a-time probe kernels for the serving hot path.

PR 1 cut hash probes ~134x and PR 4 cut resident memory 6.2x; what is
left on the broad-match hot path is CPython interpreter overhead *per
probe* and *per decoded node*.  This package restructures the inner
loops shared by :class:`~repro.perf.batch.BatchQueryEngine`,
:class:`~repro.core.wordset_index.WordSetIndex`, and
:class:`~repro.segment.packed.PackedSegmentIndex` around bulk
operations over flat arrays:

* :mod:`repro.kernels.flat` — subset-hash enumeration flattened into
  precomputed flat key arrays (cached across batches, since power-law
  traffic re-probes the same word-sets constantly);
* :mod:`repro.kernels.probe` — batched membership tests: one
  ``searchsorted`` over the index's sorted key table, or one vectorized
  bit-test pass against the segment's ``B^sig`` words, instead of a
  Python-level probe loop.

Two interchangeable backends implement the kernels:

* ``numpy`` — vectorized enumeration and membership (optional
  dependency, the ``perf`` extra);
* ``python`` — pure-python fallback with zero dependencies, proven
  bit-identical by the property suite in ``tests/kernels``.

Backend selection is governed by the ``REPRO_KERNELS`` environment
variable: ``numpy``, ``python``, ``auto`` (the default: numpy when
importable, else python), or ``off`` (the pre-kernel scalar code paths,
bit-identical to the engine before this package existed).

**Equivalence guarantee.**  Every backend — and ``off`` — returns
bit-identical result slates and records identical observability
counters (``index.probes``, ``segment.probes``, node-scan and candidate
counts) for any fault-free query, including plans capped by
degradation constraints.  Kernels only change *how fast* the same
probes run.  Time-budgeted deadlines, access trackers, and swapped-in
hash functions (collision tests) all fall back to the scalar path,
where per-probe deadline checks and per-probe accounting keep firing at
exactly the points they always did.
"""

from __future__ import annotations

import os

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "active_backend",
    "engaged",
    "numpy_available",
    "resolve_backend",
    "set_backend",
]

#: Environment variable naming the kernel backend.
BACKEND_ENV = "REPRO_KERNELS"

#: Accepted ``REPRO_KERNELS`` values.
BACKENDS = ("auto", "numpy", "python", "off")

try:  # The optional ``perf`` extra; the base install has no numpy.
    import numpy as _np  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _HAVE_NUMPY = False

#: Process-wide override installed by :func:`set_backend` (tests, CLI).
_OVERRIDE: str | None = None


def numpy_available() -> bool:
    """True when the numpy backend can be used in this process."""
    return _HAVE_NUMPY


def resolve_backend(value: str | None = None) -> str:
    """Normalize a flag value to a concrete backend.

    ``None`` and ``"auto"`` pick numpy when available, else python.
    Explicitly requesting ``numpy`` without numpy installed raises —
    a silent fallback would invalidate any benchmark run under it.
    """
    if value is None or value == "":
        value = "auto"
    value = value.strip().lower()
    if value not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {value!r}; expected one of {BACKENDS}"
        )
    if value == "auto":
        return "numpy" if _HAVE_NUMPY else "python"
    if value == "numpy" and not _HAVE_NUMPY:
        raise RuntimeError(
            "REPRO_KERNELS=numpy but numpy is not installed "
            "(pip install 'repro[perf]')"
        )
    return value


def active_backend() -> str:
    """The backend in effect: the :func:`set_backend` override when one
    is installed, else the ``REPRO_KERNELS`` environment variable, else
    auto-detection.  Returns ``"numpy"``, ``"python"``, or ``"off"``.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return resolve_backend(os.environ.get(BACKEND_ENV))


def set_backend(value: str | None) -> None:
    """Install (or with ``None`` remove) a process-wide backend
    override taking precedence over the environment flag."""
    global _OVERRIDE
    _OVERRIDE = None if value is None else resolve_backend(value)


def engaged(index: object, deadline: object = None) -> str | None:
    """The backend the kernel path should use for ``index``, or ``None``
    when the scalar path must serve instead.

    The scalar path is required whenever per-probe observation points
    matter more than throughput: an :class:`AccessTracker` charging
    every probe, or a *timed* deadline checked between hash probes.
    Plan-level degradation constraints (``max_probes`` /
    ``max_query_words``) are applied before enumeration and therefore
    work identically under kernels.
    """
    backend = active_backend()
    if backend == "off":
        return None
    # Resolve on the class, not the instance: delegating wrappers
    # (``CachedIndex.__getattr__``) would otherwise advertise the inner
    # index's batch method and get silently bypassed.
    if getattr(type(index), "query_kernel_batch", None) is None:
        return None
    if getattr(index, "tracker", None) is not None:
        return None
    if deadline is not None and getattr(deadline, "timed", True):
        return None
    return backend
