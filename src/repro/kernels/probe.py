"""Bulk membership kernels: probe a whole batch of keys in one pass.

Two membership shapes exist on the serving hot path:

* the mutable :class:`~repro.core.wordset_index.WordSetIndex` keys its
  nodes in a Python dict — :class:`SortedKeyTable` snapshots the keys
  into one sorted ``uint64`` array so a batch of probes becomes a
  single ``searchsorted`` + equality pass instead of one ``dict.get``
  per interpreted loop iteration;
* the packed segment keys its nodes by ``B^sig`` bit — s
  :func:`sig_hit_positions` tests every probe suffix against the
  segment's u64 word array in one vectorized expression.

Both return the *positions* of the hits within the probe array, in
probe order, so callers preserve the scalar path's node-visit order
exactly.  Misses — the overwhelming majority after prefiltering — never
surface into Python at all.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None  # type: ignore[assignment]

__all__ = [
    "SortedKeyTable",
    "sig_hit_positions",
    "sig_words_array",
    "split_by_query",
]


class SortedKeyTable:
    """A sorted ``uint64`` snapshot of a hash table's keys, supporting
    bulk membership for whole probe batches.

    The owning index rebuilds the table lazily after mutations (tracked
    by its mutation generation); queries between mutations share one
    snapshot.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Iterable[int], count: int) -> None:
        arr = _np.fromiter(keys, dtype=_np.uint64, count=count)
        arr.sort()
        self._keys = arr

    def __len__(self) -> int:
        return int(self._keys.shape[0])

    def hit_positions(self, probe_keys: Any) -> Any:
        """Positions (ascending) of ``probe_keys`` entries present in
        the table.  ``probe_keys`` is a ``uint64`` array; the result is
        an index array into it."""
        table = self._keys
        if table.shape[0] == 0 or probe_keys.shape[0] == 0:
            return _np.empty(0, dtype=_np.intp)
        slots = _np.searchsorted(table, probe_keys)
        _np.minimum(slots, table.shape[0] - 1, out=slots)
        return _np.nonzero(table[slots] == probe_keys)[0]


def sig_words_array(buffer: Any) -> Any:
    """The segment's ``B^sig`` bit-array words as a zero-copy
    little-endian ``uint64`` numpy view over the mapped buffer."""
    return _np.frombuffer(buffer, dtype="<u8")


def sig_hit_positions(suffixes: Any, sig_words: Any) -> Any:
    """Positions (ascending) of the suffixes whose ``B^sig`` bit is set.

    One vectorized gather-shift-mask over the segment's u64 words — the
    bulk form of the scalar path's inlined
    ``(words[s >> 6] >> (s & 63)) & 1`` test.
    """
    words = sig_words[suffixes >> _np.uint64(6)]
    bits = (words >> (suffixes & _np.uint64(63))) & _np.uint64(1)
    return _np.nonzero(bits)[0]


def split_by_query(
    hit_positions: Any, boundaries: Sequence[int]
) -> Any:
    """Split a batch-wide hit-position array back into per-query spans.

    ``boundaries`` holds each query's end offset in the concatenated
    key array (ascending); returns the index into ``hit_positions``
    where each query's hits end — one ``searchsorted``, no per-hit
    Python work.
    """
    return _np.searchsorted(
        hit_positions, _np.asarray(boundaries, dtype=_np.intp)
    )
