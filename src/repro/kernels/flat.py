"""Flat probe-key enumeration: subset hashes as precomputed arrays.

The scalar path enumerates a query's probe keys through the
:func:`repro.perf.memohash.hashed_index_subsets` generator — amortized
O(1) XOR work per subset, but still one generator hop, one ``yield``,
and one loop iteration of interpreter overhead per probe.  This module
flattens the whole enumeration into one flat array of keys computed (or
fetched) up front:

* the **python** backend materializes the generator once into a plain
  ``list[int]``;
* the **numpy** backend enumerates without any per-subset Python work:
  for each subset size ``k`` it XOR-reduces the query's per-word
  contribution array gathered through a precomputed ``C(n, k) x k``
  combination-index matrix (cached per ``(n, k)``, shared by every
  query with ``n`` candidate words).

Both produce keys in exactly the canonical enumeration order
(size-ascending, lexicographic within a size) that
:func:`~repro.core.subset_enum.sized_subsets` defines, so downstream
results are bit-identical to the scalar path.

Because broad-match traffic is power-law, the same ``(candidates,
sizes)`` plans recur constantly; a bounded LRU keyed by the plan caches
the finished key arrays, so in steady state a head query's enumeration
costs one dictionary hit.  The cache key depends only on the plan —
which the prefilter recomputes from live index state on every query —
so index mutations can never serve stale keys.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import chain, combinations
from math import comb
from typing import Any, Sequence

from repro.perf.memohash import hashed_index_subsets, word_contrib

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None  # type: ignore[assignment]

__all__ = ["clear_caches", "flat_probe_keys"]

#: Bounded plan -> key-array LRU.  4096 distinct plans comfortably cover
#: a power-law head; each entry is a few hundred 8-byte keys.
_MAX_PLANS = 4096

#: Key arrays longer than this are rebuilt per query instead of cached
#: (a single pathological 16-word plan would otherwise crowd out the
#: whole head).
_MAX_CACHED_KEYS = 1 << 16

#: Combination-index matrices larger than this many cells are built
#: transiently rather than cached.
_MAX_COMBO_CELLS = 1 << 20

_plan_cache: OrderedDict[tuple[str, tuple[str, ...], tuple[int, ...]], Any]
_plan_cache = OrderedDict()
_combo_cache: dict[tuple[int, int], Any] = {}


def clear_caches() -> tuple[int, int]:
    """Drop the plan-key and combination caches; returns their sizes."""
    sizes = (len(_plan_cache), len(_combo_cache))
    _plan_cache.clear()
    _combo_cache.clear()
    return sizes


def _combo_matrix(n: int, k: int) -> Any:
    """``C(n, k) x k`` matrix of index combinations in lexicographic
    order — the gather pattern for vectorized subset enumeration."""
    cached = _combo_cache.get((n, k))
    if cached is not None:
        return cached
    count = comb(n, k)
    matrix = _np.fromiter(
        chain.from_iterable(combinations(range(n), k)),
        dtype=_np.intp,
        count=count * k,
    ).reshape(count, k)
    if count * k <= _MAX_COMBO_CELLS:
        _combo_cache[(n, k)] = matrix
    return matrix


def _keys_numpy(candidates: Sequence[str], sizes: Sequence[int]) -> Any:
    contribs = _np.fromiter(
        (word_contrib(word) for word in candidates),
        dtype=_np.uint64,
        count=len(candidates),
    )
    n = len(candidates)
    parts: list[Any] = []
    for size in sizes:
        if size < 1 or size > n:
            continue
        if size == 1:
            parts.append(contribs)
            continue
        matrix = _combo_matrix(n, size)
        parts.append(_np.bitwise_xor.reduce(contribs[matrix], axis=1))
    if not parts:
        return _np.empty(0, dtype=_np.uint64)
    if len(parts) == 1:
        # Copy so cached arrays never alias the contribs scratch.
        return parts[0].copy()
    return _np.concatenate(parts)


def _keys_python(
    candidates: Sequence[str], sizes: Sequence[int]
) -> list[int]:
    contribs = [word_contrib(word) for word in candidates]
    return [key for key, _ in hashed_index_subsets(contribs, sizes)]


def flat_probe_keys(
    candidates: tuple[str, ...],
    sizes: tuple[int, ...],
    backend: str,
) -> Sequence[int]:
    """Every probe key of the plan ``(candidates, sizes)`` as one flat
    array, in canonical enumeration order.

    Returns a ``numpy.uint64`` array under the numpy backend and a
    ``list[int]`` under the python backend; both hold exactly the keys
    :func:`~repro.perf.memohash.hashed_index_subsets` would yield.
    Results are served from a bounded LRU keyed by the plan.
    """
    cache_key = (backend, candidates, sizes)
    cached = _plan_cache.get(cache_key)
    if cached is not None:
        _plan_cache.move_to_end(cache_key)
        return cached  # type: ignore[no-any-return]
    if backend == "numpy":
        keys: Sequence[int] = _keys_numpy(candidates, sizes)
    else:
        keys = _keys_python(candidates, sizes)
    if len(keys) <= _MAX_CACHED_KEYS:
        _plan_cache[cache_key] = keys
        if len(_plan_cache) > _MAX_PLANS:
            _plan_cache.popitem(last=False)
    return keys
