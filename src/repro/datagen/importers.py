"""Corpus importers: load real advertiser data from delimited files.

A downstream adopter has bids in a spreadsheet export, not a synthetic
generator.  ``load_corpus_csv`` reads a delimited file with columns

    bid_phrase, listing_id[, campaign_id][, bid_price_micros][, exclusions]

(``exclusions`` is ``|``-separated).  Column order is taken from the
header; missing optional columns default sensibly.  Malformed rows raise
:class:`ImportFormatError` with the offending line number — silent row
dropping turns into silently missing ads at serving time.

``load_workload_tsv`` reads a query trace: one query per line, optionally
``query<TAB>frequency``.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query, Workload


class ImportFormatError(ValueError):
    """Raised for malformed import files, with the line number."""


REQUIRED_COLUMNS = ("bid_phrase", "listing_id")
OPTIONAL_COLUMNS = ("campaign_id", "bid_price_micros", "exclusions")


def load_corpus_csv(path: str | Path, delimiter: str = ",") -> AdCorpus:
    """Read an ad corpus from a delimited file with a header row."""
    path = Path(path)
    corpus = AdCorpus()
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ImportFormatError(f"{path}: empty file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise ImportFormatError(
                f"{path}: missing required column(s) {missing}"
            )
        unknown = [
            c
            for c in reader.fieldnames
            if c not in REQUIRED_COLUMNS + OPTIONAL_COLUMNS
        ]
        if unknown:
            raise ImportFormatError(f"{path}: unknown column(s) {unknown}")
        for line, row in enumerate(reader, start=2):
            corpus.add(_row_to_ad(row, path, line))
    return corpus


def _row_to_ad(row: dict, path: Path, line: int) -> Advertisement:
    phrase = (row.get("bid_phrase") or "").strip()
    if not phrase:
        raise ImportFormatError(f"{path}:{line}: empty bid_phrase")
    try:
        listing_id = int(row["listing_id"])
    except (TypeError, ValueError) as exc:
        raise ImportFormatError(
            f"{path}:{line}: listing_id must be an integer, got "
            f"{row.get('listing_id')!r}"
        ) from exc

    def optional_int(column: str) -> int:
        value = (row.get(column) or "").strip()
        if not value:
            return 0
        try:
            return int(value)
        except ValueError as exc:
            raise ImportFormatError(
                f"{path}:{line}: {column} must be an integer, got {value!r}"
            ) from exc

    exclusions_raw = (row.get("exclusions") or "").strip()
    exclusions = tuple(
        part.strip() for part in exclusions_raw.split("|") if part.strip()
    )
    ad = Advertisement.from_text(
        phrase,
        AdInfo(
            listing_id=listing_id,
            campaign_id=optional_int("campaign_id"),
            bid_price_micros=optional_int("bid_price_micros"),
            exclusion_phrases=exclusions,
        ),
    )
    if not ad.phrase:
        raise ImportFormatError(
            f"{path}:{line}: bid_phrase {phrase!r} has no indexable words"
        )
    return ad


def load_workload_tsv(path: str | Path) -> Workload:
    """Read a query trace: ``query`` or ``query<TAB>frequency`` per line."""
    path = Path(path)
    workload = Workload()
    for line_number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        text, _, frequency_field = line.partition("\t")
        query = Query.from_text(text)
        if not query.tokens:
            raise ImportFormatError(
                f"{path}:{line_number}: query has no indexable words"
            )
        if frequency_field.strip():
            try:
                frequency = int(frequency_field)
            except ValueError as exc:
                raise ImportFormatError(
                    f"{path}:{line_number}: frequency must be an integer, "
                    f"got {frequency_field!r}"
                ) from exc
            if frequency <= 0:
                raise ImportFormatError(
                    f"{path}:{line_number}: frequency must be positive"
                )
        else:
            frequency = 1
        workload.add(query, frequency)
    return workload
