"""Corpus and workload profiling: the Section I-B diagnostics as a library.

Before trusting any index configuration, an operator wants the numbers the
paper leads with: how short are the bids (Fig 1), how Zipf are the
word-sets (Fig 2), how skewed are the keywords relative to word-sets
(Fig 7), how head-heavy is the workload (Section V), and how much
subset/superset sharing exists for re-mapping to exploit (Figs 4-5).
``profile_corpus`` / ``profile_workload`` compute exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ads import AdCorpus
from repro.core.queries import Workload
from repro.datagen.zipf import fit_power_law_slope


@dataclass(frozen=True, slots=True)
class CorpusProfile:
    num_ads: int
    num_distinct_wordsets: int
    vocabulary_size: int
    mean_bid_words: float
    cumulative_len_3: float
    cumulative_len_5: float
    cumulative_len_8: float
    wordset_zipf_slope: float | None
    top_keyword_frequency: int
    top_wordset_frequency: int
    #: Fraction of distinct word-sets that strictly contain another
    #: distinct word-set — the re-mapping opportunities of Figs 4-5.
    superset_fraction: float

    def summary(self) -> str:
        lines = [
            f"ads: {self.num_ads:,}  distinct word-sets: "
            f"{self.num_distinct_wordsets:,}  vocabulary: "
            f"{self.vocabulary_size:,}",
            f"bid lengths: mean {self.mean_bid_words:.2f} words; "
            f"<=3: {self.cumulative_len_3:.1%}, <=5: "
            f"{self.cumulative_len_5:.1%}, <=8: {self.cumulative_len_8:.1%} "
            "(paper: 62% / 96% / 99.8%)",
            f"top keyword appears in {self.top_keyword_frequency:,} bids vs "
            f"top word-set {self.top_wordset_frequency:,} (Fig 7 skew)",
            f"word-sets containing another word-set: "
            f"{self.superset_fraction:.1%} (re-mapping headroom)",
        ]
        if self.wordset_zipf_slope is not None:
            lines.append(
                f"word-set frequency log-log slope: "
                f"{self.wordset_zipf_slope:.2f} (Zipf ≈ -1)"
            )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    num_distinct: int
    total_frequency: int
    mean_query_words: float
    max_query_words: int
    #: Mass held by the top 1% of distinct queries (the Section V head).
    head_mass_top_1pct: float
    frequency_zipf_slope: float | None

    def summary(self) -> str:
        lines = [
            f"distinct queries: {self.num_distinct:,}  total frequency: "
            f"{self.total_frequency:,}",
            f"query lengths: mean {self.mean_query_words:.2f}, max "
            f"{self.max_query_words}",
            f"top 1% of queries carry {self.head_mass_top_1pct:.1%} of "
            "traffic (Section V head)",
        ]
        if self.frequency_zipf_slope is not None:
            lines.append(
                f"frequency log-log slope: {self.frequency_zipf_slope:.2f}"
            )
        return "\n".join(lines)


def profile_corpus(corpus: AdCorpus) -> CorpusProfile:
    """Compute the Section I-B corpus diagnostics."""
    if len(corpus) == 0:
        raise ValueError("cannot profile an empty corpus")
    histogram = corpus.length_histogram()
    total = sum(histogram.values())

    def cumulative(limit: int) -> float:
        return sum(c for l, c in histogram.items() if l <= limit) / total

    ranked_sets = corpus.wordset_frequencies_ranked()
    ranked_words = corpus.word_frequencies_ranked()
    slope = None
    if len(ranked_sets) >= 10:
        slope = fit_power_law_slope(ranked_sets[:2000])

    distinct = sorted(corpus.distinct_wordsets(), key=len)
    by_size: dict[int, set[frozenset[str]]] = {}
    for words in distinct:
        by_size.setdefault(len(words), set()).add(words)
    supersets = 0
    for words in distinct:
        found = False
        for size in range(1, len(words)):
            if size in by_size:
                # Check subsets of `words` of this size that exist.
                for candidate in by_size[size]:
                    if candidate < words:
                        found = True
                        break
            if found:
                break
        if found:
            supersets += 1

    return CorpusProfile(
        num_ads=len(corpus),
        num_distinct_wordsets=len(distinct),
        vocabulary_size=len(corpus.vocabulary()),
        mean_bid_words=sum(l * c for l, c in histogram.items()) / total,
        cumulative_len_3=cumulative(3),
        cumulative_len_5=cumulative(5),
        cumulative_len_8=cumulative(8),
        wordset_zipf_slope=slope,
        top_keyword_frequency=ranked_words[0],
        top_wordset_frequency=ranked_sets[0],
        superset_fraction=supersets / len(distinct),
    )


def profile_workload(workload: Workload) -> WorkloadProfile:
    """Compute the Section V workload diagnostics."""
    if len(workload) == 0:
        raise ValueError("cannot profile an empty workload")
    frequencies = sorted((f for _, f in workload), reverse=True)
    lengths = [len(q.words) for q, _ in workload]
    head = max(1, len(frequencies) // 100)
    slope = None
    if len(frequencies) >= 10:
        slope = fit_power_law_slope(frequencies)
    return WorkloadProfile(
        num_distinct=len(workload),
        total_frequency=workload.total_frequency,
        mean_query_words=sum(lengths) / len(lengths),
        max_query_words=max(lengths),
        head_mass_top_1pct=sum(frequencies[:head]) / sum(frequencies),
        frequency_zipf_slope=slope,
    )
