"""Query-trace generation (the paper's 5M-query web trace substitute).

What the paper uses the trace for determines what the generator must get
right:

* **short queries**: the paper notes the bid word-length distribution is
  "close to the word-length distribution of queries itself" — web queries
  are predominantly 1-5 words.  Anchored queries therefore build on *short*
  bid word-sets plus a couple of noise words;
* **power-law query frequencies** (Section V: the head dominates and can be
  estimated from small samples) — distinct queries get Zipf frequencies;
* **vocabulary overlap with bids** (otherwise broad match never fires) — a
  configurable fraction of queries are supersets of sampled bid word-sets,
  the rest are vocabulary noise (queries with no matching ad, which real
  traces are full of);
* **a long-query tail** (off by default): real traces contain rare very
  long queries, the case that motivates ``max_words`` re-mapping (Fig 10) —
  without the cap, subset enumeration for a 20-word query is ``2^20``
  lookups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.queries import Query, Workload
from repro.datagen.corpus import GeneratedCorpus
from repro.datagen.zipf import ZipfSampler, zipf_frequencies


@dataclass(frozen=True, slots=True)
class QueryConfig:
    """Parameters of the synthetic workload."""

    num_distinct: int = 2_000
    total_frequency: int = 50_000
    frequency_exponent: float = 1.0
    #: Probability a query is anchored on a bid word-set (hits possible).
    anchored_fraction: float = 0.7
    #: Anchors are drawn from templates of at most this many words, keeping
    #: queries web-short (anchor + noise).
    max_anchor_words: int = 4
    max_noise_words: int = 2
    #: Fraction of distinct queries that are very long (the Fig 10 tail).
    long_tail_fraction: float = 0.0
    long_tail_min_words: int = 12
    long_tail_max_words: int = 20
    seed: int = 0


def generate_workload(
    generated: GeneratedCorpus, config: QueryConfig = QueryConfig()
) -> Workload:
    """Build a workload against a generated corpus; deterministic per seed."""
    rng = random.Random(config.seed)
    short_templates = [
        t for t in generated.templates if len(t) <= config.max_anchor_words
    ]
    vocabulary = generated.vocabulary
    noise_sampler = ZipfSampler(
        len(vocabulary),
        exponent=generated.config.word_zipf_exponent,
        seed=config.seed + 1,
    )
    template_sampler = (
        ZipfSampler(len(short_templates), exponent=1.0, seed=config.seed + 2)
        if short_templates
        else None
    )

    queries: list[Query] = []
    seen: set[frozenset[str]] = set()
    attempts = 0
    while len(queries) < config.num_distinct and attempts < config.num_distinct * 50:
        attempts += 1
        words: set[str] = set()
        if rng.random() < config.long_tail_fraction:
            target = rng.randint(
                config.long_tail_min_words, config.long_tail_max_words
            )
            if template_sampler is not None:
                words |= short_templates[template_sampler.sample() - 1]
            while len(words) < target:
                words.add(vocabulary[noise_sampler.sample() - 1])
        else:
            if template_sampler is not None and (
                rng.random() < config.anchored_fraction
            ):
                words |= short_templates[template_sampler.sample() - 1]
            minimum_extra = 0 if words else 1
            extra = rng.randint(
                minimum_extra, max(config.max_noise_words, minimum_extra)
            )
            while len(words) < 1 or extra > 0:
                words.add(vocabulary[noise_sampler.sample() - 1])
                extra -= 1
        key = frozenset(words)
        if key in seen:
            continue
        seen.add(key)
        tokens = tuple(sorted(words, key=lambda _: rng.random()))
        queries.append(Query(tokens=tokens))

    frequencies = zipf_frequencies(
        len(queries),
        max(config.total_frequency, len(queries)),
        exponent=config.frequency_exponent,
    )
    # Shuffle which query gets which rank so head queries are not biased
    # toward generation order (anchored queries first); long-tail queries
    # stay out of the head (real long queries are rare *and* infrequent).
    short_positions = [
        i for i, q in enumerate(queries) if len(q.words) < config.long_tail_min_words
    ]
    long_positions = [
        i for i, q in enumerate(queries) if len(q.words) >= config.long_tail_min_words
    ]
    rng.shuffle(short_positions)
    order = short_positions + long_positions
    return Workload(
        (queries[i], frequencies[rank]) for rank, i in enumerate(order)
    )


def sample_trace(workload: Workload, length: int, seed: int = 0) -> list[Query]:
    """An i.i.d. stream drawn from the workload, for replay experiments."""
    return workload.sample_stream(length, seed=seed)
