"""Zipf / power-law samplers and fitting helpers.

Two empirical facts drive the paper's design (Figs 1, 2, 7): keyword
document frequencies and word-set frequencies both follow a Zipf law, and
search-query frequencies follow a power law.  This module provides a
seeded, reproducible rank sampler over ``{1..n}`` with
``P(rank=r) ∝ r^-exponent``, frequency assignment for workload heads, and a
log-log slope estimator used by tests to verify generated distributions.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections.abc import Sequence
from math import floor, log

try:  # Optional acceleration (the `perf` extra); never required.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    np = None  # type: ignore[assignment]


class ZipfSampler:
    """Draw ranks from a (finite) Zipf distribution via inverse CDF."""

    def __init__(self, n: int, exponent: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        self._rng = random.Random(seed)
        if np is not None:
            weights = np.arange(1, n + 1, dtype=float) ** -exponent
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._cdf: Sequence[float] = cdf.tolist()
        else:
            # Same left-to-right IEEE accumulation as np.cumsum, so the
            # fallback reproduces the numpy CDF bit-for-bit per seed.
            running = 0.0
            raw: list[float] = []
            for rank in range(1, n + 1):
                running += float(rank) ** -exponent
                raw.append(running)
            total = raw[-1]
            self._cdf = [value / total for value in raw]

    def sample(self) -> int:
        """One rank in ``[1, n]`` (rank 1 is the most probable)."""
        return bisect_right(self._cdf, self._rng.random()) + 1

    def sample_many(self, k: int) -> list[int]:
        return [self.sample() for _ in range(k)]

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank``."""
        if not 1 <= rank <= self.n:
            raise ValueError("rank out of range")
        low = self._cdf[rank - 2] if rank >= 2 else 0.0
        return self._cdf[rank - 1] - low


def zipf_frequencies(n: int, total: int, exponent: float = 1.0) -> list[int]:
    """Deterministic integer frequencies summing to ~``total``, Zipf-shaped.

    Used to assign head-heavy frequencies to distinct queries/word-sets.
    Every rank gets at least frequency 1.
    """
    if n < 1 or total < n:
        raise ValueError("need total >= n >= 1")
    if np is not None:
        weights = np.arange(1, n + 1, dtype=float) ** -exponent
        weights /= weights.sum()
        freqs = np.maximum(1, np.floor(weights * total).astype(int))
        return freqs.tolist()
    raw = [float(rank) ** -exponent for rank in range(1, n + 1)]
    denominator = sum(raw)
    return [
        max(1, floor(weight / denominator * total)) for weight in raw
    ]


def fit_power_law_slope(frequencies: Sequence[int]) -> float:
    """Least-squares slope of log(freq) vs log(rank) for a ranked series.

    A Zipf law with exponent ``s`` gives slope ``-s``; tests use this to
    check generated corpora reproduce the paper's distribution shapes.
    Ranks with zero frequency are ignored.
    """
    ranks = []
    values = []
    for rank, freq in enumerate(frequencies, start=1):
        if freq > 0:
            ranks.append(rank)
            values.append(freq)
    if len(ranks) < 2:
        raise ValueError("need at least two positive frequencies")
    if np is not None:
        x = np.log(np.asarray(ranks, dtype=float))
        y = np.log(np.asarray(values, dtype=float))
        slope, _intercept = np.polyfit(x, y, 1)
        return float(slope)
    xs = [log(rank) for rank in ranks]
    ys = [log(value) for value in values]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    covariance = sum(
        (vx - mean_x) * (vy - mean_y) for vx, vy in zip(xs, ys)
    )
    variance = sum((vx - mean_x) ** 2 for vx in xs)
    return covariance / variance
