"""Synthetic data generation calibrated to the paper's published
distributions (substituting for its proprietary corpora and traces)."""

from repro.datagen.corpus import (
    BID_LENGTH_PROBS,
    CorpusConfig,
    GeneratedCorpus,
    generate_corpus,
    length_cumulative_fractions,
)
from repro.datagen.importers import (
    ImportFormatError,
    load_corpus_csv,
    load_workload_tsv,
)
from repro.datagen.mtgen import (
    MT_LENGTH_PROBS,
    drop_off_ratio,
    mt_length_histogram,
)
from repro.datagen.querygen import QueryConfig, generate_workload, sample_trace
from repro.datagen.stats import (
    CorpusProfile,
    WorkloadProfile,
    profile_corpus,
    profile_workload,
)
from repro.datagen.zipf import ZipfSampler, fit_power_law_slope, zipf_frequencies

__all__ = [
    "BID_LENGTH_PROBS",
    "CorpusConfig",
    "CorpusProfile",
    "GeneratedCorpus",
    "ImportFormatError",
    "MT_LENGTH_PROBS",
    "QueryConfig",
    "WorkloadProfile",
    "ZipfSampler",
    "drop_off_ratio",
    "fit_power_law_slope",
    "generate_corpus",
    "generate_workload",
    "length_cumulative_fractions",
    "load_corpus_csv",
    "load_workload_tsv",
    "mt_length_histogram",
    "profile_corpus",
    "profile_workload",
    "sample_trace",
    "zipf_frequencies",
]
