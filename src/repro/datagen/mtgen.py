"""Machine-translation rule-length distribution (Fig 3 contrast).

Fig 3 compares bid lengths against MT phrase lengths from the NIST
parallel corpus: both peak at 3 words, but the MT tail falls off much more
gradually (phrases up to length 7 are common).  The actual NIST data is not
redistributable; we model the published shape — mode at 3 with a gentle
geometric tail — which is all the figure conveys.
"""

from __future__ import annotations

import random
from collections import Counter

#: Rule-length histogram (index 0 = length 1), mode 3, slow decay to 7.
MT_LENGTH_PROBS: tuple[float, ...] = (
    0.10,  # 1
    0.17,  # 2
    0.22,  # 3  (peak, but cumulative only 0.49 — contrast Fig 1's 0.62)
    0.18,  # 4
    0.14,  # 5
    0.11,  # 6
    0.08,  # 7
)


def sample_rule_length(rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for i, p in enumerate(MT_LENGTH_PROBS):
        cumulative += p
        if roll < cumulative:
            return i + 1
    return len(MT_LENGTH_PROBS)


def mt_length_histogram(num_rules: int, seed: int = 0) -> dict[int, int]:
    """Sampled histogram of MT rule lengths."""
    rng = random.Random(seed)
    histogram: Counter[int] = Counter()
    for _ in range(num_rules):
        histogram[sample_rule_length(rng)] += 1
    return dict(histogram)


def drop_off_ratio(histogram: dict[int, int], peak: int = 3) -> float:
    """Peak-to-tail ratio ``h[peak] / h[peak+2]``: large for bids (steep
    drop-off, Fig 1), small for MT rules (gradual, Fig 3)."""
    tail = histogram.get(peak + 2, 0)
    if tail == 0:
        return float("inf")
    return histogram.get(peak, 0) / tail
