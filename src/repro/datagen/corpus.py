"""Synthetic ad-corpus generator calibrated to the paper's distributions.

The paper's real corpora are proprietary; what its algorithms depend on are
three published distributional facts, which this generator reproduces:

* **Fig 1** — bid lengths peak at 3 words; 62% of bids have <= 3 words,
  96% <= 5, 99.8% <= 8.  We sample lengths from exactly that histogram.
* **Fig 2** — the number of ads per distinct word-set is Zipf: we create
  distinct word-set *templates* and replicate ads over them with
  Zipf-ranked multiplicities.
* **Fig 7** — keyword document frequencies are far more skewed than
  word-set frequencies: words inside templates are drawn Zipf from the
  vocabulary, so a few head words ("cheap", "free", ...) appear in a large
  fraction of bids.

Every draw is seeded; identical parameters yield identical corpora.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.datagen.zipf import ZipfSampler

#: Bid-length histogram calibrated to Fig 1 (index 0 = 1 word).
#: Cumulative: 0.62 at 3 words, 0.96 at 5, 0.998 at 8 — the paper's numbers.
BID_LENGTH_PROBS: tuple[float, ...] = (
    0.13,  # 1 word
    0.20,  # 2
    0.29,  # 3   (peak; cumulative 0.62)
    0.22,  # 4
    0.12,  # 5   (cumulative 0.96)
    0.025,  # 6
    0.009,  # 7
    0.004,  # 8  (cumulative 0.998)
    0.0012,  # 9
    0.0005,  # 10
    0.0002,  # 11
    0.0001,  # 12
)


@dataclass(frozen=True, slots=True)
class CorpusConfig:
    """Parameters of the synthetic corpus."""

    num_ads: int = 10_000
    #: Distinct word-set templates; ads are Zipf-distributed over them.
    num_templates: int | None = None
    vocabulary_size: int = 2_000
    word_zipf_exponent: float = 1.05
    template_zipf_exponent: float = 1.0
    seed: int = 0
    #: Fraction of ads carrying an exclusion phrase (secondary criteria).
    exclusion_fraction: float = 0.02
    #: Fraction of templates built by *extending* an existing shorter
    #: template (advertisers bid on phrase variants: "used books" alongside
    #: "cheap used books").  These subset/superset pairs are precisely the
    #: sharing opportunities re-mapping exploits (paper Figs 4-5).
    superset_fraction: float = 0.35

    def resolved_templates(self) -> int:
        if self.num_templates is not None:
            return self.num_templates
        # Roughly 1 distinct word-set per 3 ads, as in a head-heavy corpus.
        return max(1, self.num_ads // 3)


@dataclass(slots=True)
class GeneratedCorpus:
    """The corpus plus the generating templates (needed by query gen)."""

    corpus: AdCorpus
    templates: list[frozenset[str]]
    config: CorpusConfig
    vocabulary: list[str] = field(default_factory=list)


def _sample_length(rng: random.Random) -> int:
    roll = rng.random()
    cumulative = 0.0
    for i, p in enumerate(BID_LENGTH_PROBS):
        cumulative += p
        if roll < cumulative:
            return i + 1
    return len(BID_LENGTH_PROBS)


def generate_corpus(config: CorpusConfig = CorpusConfig()) -> GeneratedCorpus:
    """Generate a corpus under ``config``; deterministic per seed."""
    rng = random.Random(config.seed)
    vocabulary = [f"kw{i:05d}" for i in range(config.vocabulary_size)]
    word_sampler = ZipfSampler(
        config.vocabulary_size,
        exponent=config.word_zipf_exponent,
        seed=config.seed + 1,
    )

    # 1. Distinct word-set templates with Fig 1 lengths and Zipf words.
    # Lengths are drawn per template *once* and kept through collision
    # retries — resampling the length on collision would shift mass toward
    # long bids (short Zipf-headed sets collide most).
    num_templates = config.resolved_templates()
    templates: list[frozenset[str]] = []
    seen: set[frozenset[str]] = set()
    extendable: list[frozenset[str]] = []
    for _ in range(num_templates):
        length = _sample_length(rng)
        candidate: frozenset[str] | None = None
        for attempt in range(60):
            words: set[str] = set()
            if (
                length >= 2
                and extendable
                and rng.random() < config.superset_fraction
            ):
                base = rng.choice(extendable)
                if len(base) < length:
                    words = set(base)
            while len(words) < min(length, len(vocabulary)):
                if attempt < 20:
                    words.add(vocabulary[word_sampler.sample() - 1])
                else:
                    # Fall back to uniform words when the Zipf head is
                    # exhausted of unique combinations at this length.
                    words.add(rng.choice(vocabulary))
            if frozenset(words) not in seen:
                candidate = frozenset(words)
                break
        if candidate is None:
            continue
        seen.add(candidate)
        templates.append(candidate)
        if len(candidate) <= 6:
            extendable.append(candidate)

    # 2. Zipf multiplicities over templates (Fig 2), stratified by length:
    # each ad first draws its Fig 1 length, then Zipf-selects a template of
    # that length.  Without stratification the single Zipf head template
    # (an arbitrary length) would dominate the ad-length histogram.
    by_length: dict[int, list[frozenset[str]]] = {}
    for template in templates:
        by_length.setdefault(len(template), []).append(template)
    length_samplers = {
        length: ZipfSampler(
            len(group),
            exponent=config.template_zipf_exponent,
            seed=config.seed + 2 + length,
        )
        for length, group in by_length.items()
    }
    available_lengths = sorted(by_length)

    ads: list[Advertisement] = []
    for listing_id in range(config.num_ads):
        length = _sample_length(rng)
        if length not in by_length:
            length = min(available_lengths, key=lambda a: abs(a - length))
        group = by_length[length]
        template = group[length_samplers[length].sample() - 1]
        phrase = tuple(sorted(template, key=lambda _: rng.random()))
        exclusions: tuple[str, ...] = ()
        if rng.random() < config.exclusion_fraction:
            exclusions = (vocabulary[word_sampler.sample() - 1],)
        info = AdInfo(
            listing_id=listing_id,
            campaign_id=listing_id % 997,
            bid_price_micros=int(rng.lognormvariate(13.0, 1.0)),
            exclusion_phrases=exclusions,
        )
        ads.append(Advertisement(phrase=phrase, info=info))

    return GeneratedCorpus(
        corpus=AdCorpus(ads),
        templates=templates,
        config=config,
        vocabulary=vocabulary,
    )


def length_cumulative_fractions(corpus: AdCorpus) -> dict[int, float]:
    """Cumulative fraction of bids with <= L words, for checking Fig 1."""
    histogram = corpus.length_histogram()
    total = sum(histogram.values())
    cumulative: dict[int, float] = {}
    running = 0
    for length in sorted(histogram):
        running += histogram[length]
        cumulative[length] = running / total
    return cumulative
