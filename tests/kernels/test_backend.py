"""Backend flag semantics: resolution, override, and engagement rules."""

import pytest

import repro.kernels as kernels
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.resilience.deadline import Deadline
from repro.serving.result_cache import CachedIndex

ADS = [Advertisement(("red", "shoes"), AdInfo(listing_id=1))]


@pytest.fixture(autouse=True)
def clean_override(monkeypatch):
    monkeypatch.delenv(kernels.BACKEND_ENV, raising=False)
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


class TestResolveBackend:
    def test_auto_prefers_numpy_when_available(self):
        expected = "numpy" if kernels.numpy_available() else "python"
        assert kernels.resolve_backend(None) == expected
        assert kernels.resolve_backend("auto") == expected
        assert kernels.resolve_backend("") == expected

    def test_explicit_values_pass_through(self):
        assert kernels.resolve_backend("python") == "python"
        assert kernels.resolve_backend("off") == "off"
        assert kernels.resolve_backend("  PYTHON  ") == "python"

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.resolve_backend("cuda")

    def test_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(kernels, "_HAVE_NUMPY", False)
        assert kernels.resolve_backend("auto") == "python"
        with pytest.raises(RuntimeError, match="numpy is not installed"):
            kernels.resolve_backend("numpy")


class TestActiveBackend:
    def test_env_variable_read(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "python")
        assert kernels.active_backend() == "python"
        monkeypatch.setenv(kernels.BACKEND_ENV, "off")
        assert kernels.active_backend() == "off"

    def test_set_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.BACKEND_ENV, "off")
        kernels.set_backend("python")
        assert kernels.active_backend() == "python"
        kernels.set_backend(None)
        assert kernels.active_backend() == "off"

    def test_set_backend_validates(self):
        with pytest.raises(ValueError):
            kernels.set_backend("cuda")


class TestEngaged:
    def test_engages_for_plain_index(self):
        index = WordSetIndex.from_corpus(AdCorpus(ADS))
        assert kernels.engaged(index) == kernels.resolve_backend(None)

    def test_off_disables(self):
        kernels.set_backend("off")
        index = WordSetIndex.from_corpus(AdCorpus(ADS))
        assert kernels.engaged(index) is None

    def test_index_without_batch_method_falls_back(self):
        assert kernels.engaged(object()) is None

    def test_delegating_wrapper_not_bypassed(self):
        # CachedIndex.__getattr__ forwards the inner index's attributes;
        # engaging on the forwarded method would silently skip the cache.
        cached = CachedIndex(WordSetIndex.from_corpus(AdCorpus(ADS)))
        assert cached.query_kernel_batch is not None  # forwarded
        assert kernels.engaged(cached) is None

    def test_tracker_forces_scalar_path(self):
        index = WordSetIndex.from_corpus(
            AdCorpus(ADS), tracker=AccessTracker()
        )
        assert kernels.engaged(index) is None

    def test_timed_deadline_forces_scalar_path(self):
        index = WordSetIndex.from_corpus(AdCorpus(ADS))
        assert kernels.engaged(index, Deadline.after_ms(50.0)) is None

    def test_untimed_constraint_deadline_engages(self):
        index = WordSetIndex.from_corpus(AdCorpus(ADS))
        deadline = Deadline.unlimited(max_probes=4)
        assert not deadline.timed
        assert kernels.engaged(index, deadline) is not None
