"""Property suite: every kernel backend is bit-identical to the scalar path.

The equivalence guarantee (see :mod:`repro.kernels`): for any corpus and
any batch of queries, the ``python`` and ``numpy`` backends return
exactly the slates — same ads, same order — the ``off`` scalar path
returns, and record identical observability counters, including against
a forced-collision segment (``suffix_bits=1`` maps every node onto one
or two ``B^sig`` bits) and under probe-capped degraded plans.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.kernels import numpy_available, set_backend
from repro.kernels.flat import clear_caches, flat_probe_keys
from repro.obs.registry import MetricsRegistry
from repro.perf.memohash import hashed_index_subsets, word_contrib
from repro.resilience.deadline import Deadline
from repro.segment import PackedSegmentIndex, SegmentBuilder

WORDS = [c1 + c2 for c1 in string.ascii_lowercase[:8] for c2 in "xy"]

BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())


def phrase_strategy():
    return st.lists(
        st.sampled_from(WORDS), min_size=1, max_size=4, unique=True
    ).map(tuple)


def ad_strategy():
    return st.builds(
        lambda phrase, listing: Advertisement(
            phrase, AdInfo(listing_id=listing)
        ),
        phrase_strategy(),
        st.integers(min_value=0, max_value=50),
    )


def query_strategy():
    return st.lists(
        st.sampled_from(WORDS), min_size=1, max_size=6, unique=True
    ).map(lambda words: Query(tokens=tuple(words)))


corpus_and_queries = st.tuples(
    st.lists(ad_strategy(), min_size=1, max_size=25),
    st.lists(query_strategy(), min_size=1, max_size=8),
)


def slate_ids(results):
    """Order-preserving identity of each slate — bit-identical means the
    same ads in the same order, not merely the same set."""
    return [
        [(ad.phrase, ad.info.listing_id) for ad in ads] for ads in results
    ]


def run_backend(make_index, queries, backend, deadline_factory=None):
    obs = MetricsRegistry()
    index = make_index(obs)
    set_backend(backend)
    try:
        deadline = deadline_factory() if deadline_factory else None
        results = index.query_kernel_batch(queries, deadline=deadline)
    finally:
        set_backend(None)
        if hasattr(index, "close"):
            index.close()
    reasons = deadline.partial_reasons if deadline is not None else ()
    return slate_ids(results), obs.snapshot()["counters"], reasons


def assert_backends_agree(make_index, queries, deadline_factory=None):
    baseline = run_backend(make_index, queries, "off", deadline_factory)
    for backend in BACKENDS:
        clear_caches()
        observed = run_backend(make_index, queries, backend, deadline_factory)
        assert observed == baseline, backend


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(corpus_and_queries)
def test_wordset_index_backends_bit_identical(data):
    ads, queries = data
    assert_backends_agree(
        lambda obs: WordSetIndex.from_corpus(AdCorpus(ads), obs=obs),
        queries,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(corpus_and_queries, st.sampled_from([None, 1]))
def test_packed_segment_backends_bit_identical(tmp_path_factory, data, bits):
    """Packed serving equivalence, including ``suffix_bits=1`` segments
    where every node collides onto at most two ``B^sig`` bits — the
    bulk bit-test then surfaces the same node for unrelated probes and
    the scan-side verification must still agree everywhere."""
    ads, queries = data
    path = tmp_path_factory.mktemp("kernel-seg") / "seg.bin"
    SegmentBuilder(
        WordSetIndex.from_corpus(AdCorpus(ads)), suffix_bits=bits
    ).write(path)
    assert_backends_agree(
        lambda obs: PackedSegmentIndex(path, obs=obs, cache_bytes=512),
        queries,
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(corpus_and_queries, st.integers(min_value=1, max_value=5))
def test_probe_capped_partials_bit_identical(data, max_probes):
    """An untimed deadline carrying ``max_probes`` tightens the plan
    before enumeration, so kernels stay engaged; the capped (partial)
    slates and the recorded degradation reasons must match the scalar
    path exactly."""
    ads, queries = data
    assert_backends_agree(
        lambda obs: WordSetIndex.from_corpus(AdCorpus(ads), obs=obs),
        queries,
        deadline_factory=lambda: Deadline.unlimited(max_probes=max_probes),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=8, unique=True),
    st.sets(st.integers(min_value=1, max_value=8), min_size=1),
)
def test_flat_probe_keys_match_generator(candidates, sizes):
    """Both backends' flat key arrays equal the scalar generator's
    output, element for element, in canonical enumeration order."""
    candidates = tuple(candidates)
    sizes = tuple(sorted(sizes))
    contribs = [word_contrib(word) for word in candidates]
    expected = [key for key, _ in hashed_index_subsets(contribs, sizes)]
    clear_caches()
    assert list(flat_probe_keys(candidates, sizes, "python")) == expected
    if numpy_available():
        assert (
            list(flat_probe_keys(candidates, sizes, "numpy")) == expected
        )


def test_mutation_invalidates_kernel_state():
    """Insert/delete between kernel batches must be visible immediately:
    the sorted key table and the plan memo are generation-checked."""
    extra = Advertisement(("zq", "zr"), AdInfo(listing_id=99))
    index = WordSetIndex.from_corpus(
        AdCorpus([Advertisement(("ax",), AdInfo(listing_id=1))])
    )
    query = Query(tokens=("zq", "zr"))
    for backend in BACKENDS:
        set_backend(backend)
        try:
            assert index.query_kernel_batch([query]) == [[]]
            index.insert(extra)
            [after_insert] = index.query_kernel_batch([query])
            assert [ad.info.listing_id for ad in after_insert] == [99]
            assert index.delete(extra)
            assert index.query_kernel_batch([query]) == [[]]
        finally:
            set_backend(None)
