"""Breaker-guarded shard fan-out: partial results, fail-fast, and the
min_shards floor — standalone and wired into the sharded indexes."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.obs import MetricsRegistry
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    Deadline,
    DegradedReason,
    FanoutGuard,
    ManualClock,
    ShardsUnavailableError,
)


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class FlakyShard:
    """A stand-in shard: returns its payload or raises."""

    def __init__(self, payload, failing=False):
        self.payload = payload
        self.failing = failing
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.failing:
            raise RuntimeError("shard down")
        return list(self.payload)


def gather(guard, shards, deadline=None):
    return guard.gather(shards, lambda shard: shard(), deadline)


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            FanoutGuard(0)

    def test_rejects_bad_min_shards(self):
        with pytest.raises(ValueError):
            FanoutGuard(2, min_shards=3)
        with pytest.raises(ValueError):
            FanoutGuard(2, min_shards=0)

    def test_rejects_mismatched_gather(self):
        guard = FanoutGuard(2, clock=ManualClock())
        with pytest.raises(ValueError):
            gather(guard, [FlakyShard(["a"])])


class TestGather:
    def test_healthy_gather_unions_in_shard_order(self):
        guard = FanoutGuard(3, clock=ManualClock())
        shards = [FlakyShard(["a"]), FlakyShard(["b"]), FlakyShard(["c"])]
        deadline = Deadline.unlimited()
        assert gather(guard, shards, deadline) == ["a", "b", "c"]
        assert not deadline.partial

    def test_failing_shard_yields_flagged_partial(self):
        registry = MetricsRegistry()
        guard = FanoutGuard(3, clock=ManualClock(), obs=registry)
        shards = [
            FlakyShard(["a"]),
            FlakyShard(["b"], failing=True),
            FlakyShard(["c"]),
        ]
        deadline = Deadline.unlimited()
        assert gather(guard, shards, deadline) == ["a", "c"]
        assert DegradedReason.PARTIAL_SHARDS in deadline.partial_reasons
        assert registry.value("resilience.shard_errors") == 1
        assert registry.value("resilience.partial_fanouts") == 1

    def test_allow_partial_false_propagates(self):
        guard = FanoutGuard(2, allow_partial=False, clock=ManualClock())
        shards = [FlakyShard(["a"]), FlakyShard(["b"], failing=True)]
        with pytest.raises(RuntimeError):
            gather(guard, shards)
        # The breaker still recorded the failure.
        assert guard.breakers[1].failure_rate() > 0.0

    def test_open_breaker_short_circuits_the_shard(self):
        clock = ManualClock()
        guard = FanoutGuard(
            2,
            breaker=BreakerConfig(window=4, min_samples=2, failure_threshold=0.5),
            clock=clock,
        )
        shards = [FlakyShard(["a"]), FlakyShard(["b"], failing=True)]
        gather(guard, shards)
        gather(guard, shards)
        assert guard.breakers[1].state is BreakerState.OPEN
        calls_before = shards[1].calls
        gather(guard, shards)
        assert shards[1].calls == calls_before  # never dispatched

    def test_open_breaker_without_partial_fails_fast(self):
        clock = ManualClock()
        guard = FanoutGuard(
            2,
            breaker=BreakerConfig(window=4, min_samples=2, failure_threshold=0.5),
            allow_partial=False,
            clock=clock,
        )
        shards = [FlakyShard(["a"]), FlakyShard(["b"], failing=True)]
        for _ in range(2):
            with pytest.raises(RuntimeError):
                gather(guard, shards)
        assert guard.breakers[1].state is BreakerState.OPEN
        with pytest.raises(ShardsUnavailableError):
            gather(guard, shards)

    def test_min_shards_floor(self):
        guard = FanoutGuard(2, min_shards=2, clock=ManualClock())
        shards = [FlakyShard(["a"]), FlakyShard(["b"], failing=True)]
        with pytest.raises(ShardsUnavailableError) as excinfo:
            gather(guard, shards)
        assert excinfo.value.ok == 1
        assert excinfo.value.required == 2

    def test_deadline_expiry_mid_gather(self):
        clock = ManualClock()
        guard = FanoutGuard(3, clock=clock)

        class AdvancingShard(FlakyShard):
            def __call__(self):
                clock.advance(10.0)
                return super().__call__()

        shards = [
            AdvancingShard(["a"]),
            AdvancingShard(["b"]),
            AdvancingShard(["c"]),
        ]
        deadline = Deadline.after_ms(15.0, clock=clock)
        result = gather(guard, shards, deadline)
        assert result == ["a", "b"]
        assert DegradedReason.DEADLINE in deadline.partial_reasons
        assert shards[2].calls == 0


class TestShardedIndexIntegration:
    @pytest.fixture()
    def corpus(self):
        return AdCorpus(
            [
                ad("used books", 1),
                ad("comic books", 2),
                ad("books", 3),
                ad("cheap used books", 4),
                ad("cheap flights", 5),
            ]
        )

    def test_guard_mismatch_rejected(self, corpus):
        guard = FanoutGuard(2, clock=ManualClock())
        with pytest.raises(ValueError):
            ShardedWordSetIndex(4, guard=guard)

    def test_guarded_query_matches_unguarded(self, corpus):
        plain = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        guarded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        guarded.guard = FanoutGuard(4, clock=ManualClock())
        query = Query.from_text("cheap used books")
        assert guarded.query(query) == plain.query(query)

    def test_broken_shard_degrades_to_partial(self, corpus):
        index = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        index.guard = FanoutGuard(
            4,
            breaker=BreakerConfig(window=4, min_samples=2, failure_threshold=0.5),
            clock=ManualClock(),
        )
        query = Query.from_text("cheap used books")
        full_ids = {a.info.listing_id for a in index.query(query)}
        broken = index.shards[0]

        def boom(*args, **kwargs):
            raise RuntimeError("segment corrupted")

        broken.query = boom
        deadline = Deadline.unlimited()
        partial = index.query(query, deadline=deadline)
        assert {a.info.listing_id for a in partial} <= full_ids
        assert DegradedReason.PARTIAL_SHARDS in deadline.partial_reasons
