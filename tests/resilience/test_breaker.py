"""Circuit breakers: the closed → open → half-open state machine on a
deterministic clock."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ManualClock,
)


def make(clock=None, obs=None, **kwargs):
    defaults = dict(
        window=10,
        failure_threshold=0.5,
        min_samples=4,
        reset_after_ms=100.0,
        half_open_probes=1,
    )
    defaults.update(kwargs)
    return CircuitBreaker(
        BreakerConfig(**defaults),
        clock=clock if clock is not None else ManualClock(),
        obs=obs,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_samples": 0},
            {"reset_after_ms": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker = make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 1
        assert not breaker.allow()
        assert breaker.short_circuits == 1

    def test_needs_min_samples(self):
        breaker = make(min_samples=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        breaker = make()
        for _ in range(6):
            breaker.record_success()
        for _ in range(4):
            breaker.record_failure()
        # 4/10 < 0.5
        assert breaker.state is BreakerState.CLOSED

    def test_window_evicts_old_outcomes(self):
        breaker = make(window=4, min_samples=4)
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # The two failures rolled out of the window.
        assert breaker.failure_rate() == 0.0
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_cooloff(self):
        clock = ManualClock()
        breaker = make(clock=clock)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(100.0)
        assert breaker.allow()  # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_bounds_probes(self):
        clock = ManualClock()
        breaker = make(clock=clock, half_open_probes=2)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(100.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()

    def test_half_open_success_closes(self):
        clock = ManualClock()
        breaker = make(clock=clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate() == 0.0  # window reset on close
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = ManualClock()
        breaker = make(clock=clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        # The cool-off restarts from the re-open.
        clock.advance(99.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()


class TestCounters:
    def test_transition_counters(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        breaker = make(clock=clock, obs=registry)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(100.0)
        assert breaker.allow()
        breaker.record_success()
        assert registry.value("resilience.breaker_opened") == 1
        assert registry.value("resilience.breaker_half_open") == 1
        assert registry.value("resilience.breaker_closed") == 1
        assert registry.value("resilience.breaker_short_circuits") == 1
