"""The overload-smoke gate: the seeded drill must shed without
collapsing, answer every admitted query inside its deadline, and raise
nothing.  CI runs this job on every push."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience.overload import (
    SHED_FRACTION_BAND,
    WITHIN_DEADLINE_GATE,
    OverloadConfig,
    OverloadReport,
    run_overload_drill,
)


@pytest.fixture(scope="module")
def report():
    return run_overload_drill()


class TestGates:
    def test_all_gates_pass(self, report):
        assert report.passed(), report.gates()

    def test_no_unhandled_exceptions(self, report):
        assert report.unhandled_exceptions == 0

    def test_admitted_queries_answer_within_deadline(self, report):
        assert report.within_deadline_fraction >= WITHIN_DEADLINE_GATE
        assert report.max_ms <= OverloadConfig().deadline_ms + 1e-9

    def test_shed_fraction_in_band(self, report):
        lo, hi = SHED_FRACTION_BAND
        assert lo <= report.shed_fraction <= hi

    def test_resilience_features_actually_engaged(self, report):
        # The drill is only a drill if the machinery it exists to
        # exercise actually fired.
        assert report.shed > 0
        assert report.breaker_opened > 0
        assert report.breaker_short_circuits > 0
        assert report.deadline_completions >= 0
        assert sum(report.legs_attempted) > 0

    def test_breaker_starves_the_error_shard(self, report):
        config = OverloadConfig()
        healthy = [
            shard
            for shard in range(config.num_shards)
            if shard not in (config.error_shard, config.slow_shard)
        ]
        # The dead shard gets strictly less work than a healthy one.
        assert all(
            report.legs_attempted[config.error_shard]
            < report.legs_attempted[shard]
            for shard in healthy
        )


class TestDeterminism:
    def test_same_config_same_report(self, report):
        again = run_overload_drill()
        assert again.as_dict() == report.as_dict()

    def test_registry_injection(self):
        registry = MetricsRegistry()
        run_overload_drill(obs=registry)
        assert registry.value("resilience.shed") > 0
        assert registry.value("resilience.breaker_opened") > 0
        assert registry.value("scatter.shed_queries") > 0


class TestConfigValidation:
    def test_rejects_out_of_range_shards(self):
        with pytest.raises(ValueError):
            OverloadConfig(slow_shard=9)
        with pytest.raises(ValueError):
            OverloadConfig(error_shard=-1)

    def test_rejects_bad_slow_factor(self):
        with pytest.raises(ValueError):
            OverloadConfig(slow_factor=0.5)

    def test_rejects_negative_burst(self):
        with pytest.raises(ValueError):
            OverloadConfig(error_burst_legs=-1)


class TestReport:
    def test_gates_dict_shape(self):
        gates = OverloadReport().gates()
        assert set(gates) == {
            "no_unhandled_exceptions",
            "within_deadline",
            "shed_fraction_in_band",
        }

    def test_empty_report_fails_shed_band(self):
        # A run that shed nothing means overload never happened: the
        # smoke scenario itself is broken and the gate must say so.
        assert not OverloadReport().passed()
