"""Adaptive degradation: the pressure-driven ladder walker and the
constraints it applies to request budgets."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    Deadline,
    DegradationLevel,
    DegradationPolicy,
)
from repro.resilience.degrade import DEFAULT_LADDER


LADDER = (
    DegradationLevel(),
    DegradationLevel(max_probes=64),
    DegradationLevel(max_query_words=4, max_probes=16, stale_fallback=True),
)


def make(pressure, **kwargs):
    defaults = dict(
        high_ms=50.0,
        low_ms=10.0,
        ladder=LADDER,
        cooldown_queries=4,
        pressure_fn=pressure,
    )
    defaults.update(kwargs)
    return DegradationPolicy(**defaults)


def tick(policy, times):
    for _ in range(times):
        policy.on_query()


class TestValidation:
    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            DegradationPolicy(ladder=())

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError):
            DegradationPolicy(high_ms=10.0, low_ms=10.0)

    def test_rejects_bad_cooldown(self):
        with pytest.raises(ValueError):
            DegradationPolicy(cooldown_queries=0)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            DegradationLevel(max_probes=0)
        with pytest.raises(ValueError):
            DegradationLevel(max_query_words=0)


class TestLadderStepping:
    def test_starts_at_full_fidelity(self):
        policy = make(lambda: 0.0)
        assert policy.level == 0
        assert not policy.degraded
        assert policy.current is LADDER[0]

    def test_high_pressure_steps_down(self):
        policy = make(lambda: 100.0)
        tick(policy, 4)
        assert policy.level == 1
        assert policy.degraded
        assert policy.steps_down == 1

    def test_cooldown_gates_steps(self):
        policy = make(lambda: 100.0)
        tick(policy, 3)
        assert policy.level == 0  # cooldown not yet elapsed
        tick(policy, 1)
        assert policy.level == 1
        tick(policy, 3)
        assert policy.level == 1  # next step needs a full cooldown again
        tick(policy, 1)
        assert policy.level == 2

    def test_clamps_at_ladder_bottom(self):
        policy = make(lambda: 100.0)
        tick(policy, 40)
        assert policy.level == len(LADDER) - 1

    def test_low_pressure_steps_back_up(self):
        readings = [100.0, 100.0, 0.0, 0.0, 0.0]
        policy = make(lambda: readings.pop(0))
        tick(policy, 8)
        assert policy.level == 2
        tick(policy, 8)
        assert policy.level == 0
        assert policy.steps_up == 2

    def test_mid_band_pressure_holds_level(self):
        policy = make(lambda: 30.0)  # between low and high water marks
        tick(policy, 20)
        assert policy.level == 0


class TestConstraints:
    def test_tighten_applies_current_level(self):
        policy = make(lambda: 100.0)
        tick(policy, 8)
        assert policy.level == 2
        deadline = Deadline.unlimited()
        policy.tighten(deadline)
        assert deadline.max_probes == 16
        assert deadline.max_query_words == 4

    def test_level_zero_tightens_nothing(self):
        policy = make(lambda: 0.0)
        deadline = Deadline.unlimited()
        policy.tighten(deadline)
        assert deadline.max_probes is None
        assert deadline.max_query_words is None

    def test_stale_fallback_tracks_level(self):
        policy = make(lambda: 100.0)
        assert not policy.stale_fallback_enabled()
        tick(policy, 8)
        assert policy.stale_fallback_enabled()

    def test_default_ladder_monotone(self):
        assert DEFAULT_LADDER[0] == DegradationLevel()
        probes = [
            level.max_probes
            for level in DEFAULT_LADDER
            if level.max_probes is not None
        ]
        assert probes == sorted(probes, reverse=True)


class TestHistogramSignal:
    def test_reads_span_p95_from_registry(self):
        registry = MetricsRegistry()
        policy = DegradationPolicy(
            obs=registry,
            signal="retrieve",
            high_ms=50.0,
            low_ms=10.0,
            ladder=LADDER,
            min_samples=8,
            cooldown_queries=1,
        )
        histogram = registry.histogram("span.retrieve")
        for _ in range(7):
            histogram.observe(500.0)
        policy.on_query()
        assert policy.level == 0  # below min_samples: signal ignored
        histogram.observe(500.0)
        policy.on_query()
        assert policy.level == 1
        assert registry.value("resilience.degrade_steps") == 1

    def test_no_signal_no_steps(self):
        policy = DegradationPolicy(
            ladder=LADDER, cooldown_queries=1, high_ms=50.0, low_ms=10.0
        )
        tick(policy, 10)
        assert policy.level == 0
