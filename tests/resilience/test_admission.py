"""Admission control: token-bucket rate limiting, queue-depth shedding,
and the lowest-priority-first shed order."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    AdmissionConfig,
    AdmissionController,
    DegradedReason,
    ManualClock,
    Priority,
)


class TestConfigValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_per_s=0.0)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            AdmissionConfig(burst=0.5)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=0)


class TestPriority:
    def test_from_name(self):
        assert Priority.from_name("low") is Priority.LOW
        assert Priority.from_name("NORMAL") is Priority.NORMAL
        assert Priority.from_name("high") is Priority.HIGH

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            Priority.from_name("urgent")

    def test_ordering(self):
        assert Priority.LOW < Priority.NORMAL < Priority.HIGH


class TestTokenBucket:
    def make(self, **kwargs):
        clock = ManualClock()
        controller = AdmissionController(AdmissionConfig(**kwargs), clock=clock)
        return controller, clock

    def test_burst_then_shed(self):
        controller, _ = self.make(rate_per_s=10.0, burst=4.0)
        admitted = [
            controller.try_admit(Priority.HIGH).admitted for _ in range(6)
        ]
        assert admitted == [True, True, True, True, False, False]

    def test_shed_reason_is_capacity(self):
        controller, _ = self.make(rate_per_s=10.0, burst=1.0)
        assert controller.try_admit(Priority.HIGH).admitted
        decision = controller.try_admit(Priority.HIGH)
        assert not decision.admitted
        assert decision.reason is DegradedReason.SHED_CAPACITY

    def test_refill_restores_admission(self):
        controller, clock = self.make(rate_per_s=100.0, burst=1.0)
        assert controller.try_admit(Priority.HIGH).admitted
        assert not controller.try_admit(Priority.HIGH).admitted
        clock.advance(10.0)  # 100/s * 10ms = 1 token
        assert controller.try_admit(Priority.HIGH).admitted

    def test_refill_caps_at_burst(self):
        controller, clock = self.make(rate_per_s=1_000.0, burst=2.0)
        clock.advance(60_000.0)
        assert controller.tokens() == 2.0

    def test_low_priority_sheds_first(self):
        # burst=10: LOW needs 1 + 3.0 tokens, NORMAL 1 + 1.0, HIGH 1.0.
        controller, _ = self.make(rate_per_s=10.0, burst=10.0)
        # Drain to just under LOW's reserve line.
        for _ in range(7):
            assert controller.try_admit(Priority.HIGH).admitted
        assert controller.tokens() == 3.0
        assert not controller.try_admit(Priority.LOW).admitted
        assert controller.try_admit(Priority.NORMAL).admitted  # tokens -> 2
        assert controller.try_admit(Priority.NORMAL).admitted  # tokens -> 1
        assert not controller.try_admit(Priority.NORMAL).admitted
        assert controller.try_admit(Priority.HIGH).admitted  # tokens -> 0
        assert not controller.try_admit(Priority.HIGH).admitted

    def test_disabled_rate_always_admits(self):
        controller, _ = self.make()
        assert all(
            controller.try_admit(Priority.LOW).admitted for _ in range(1000)
        )


class TestQueueDepth:
    def test_explicit_depth_sheds(self):
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=10), clock=ManualClock()
        )
        assert controller.try_admit(Priority.HIGH, queue_depth=10).admitted
        decision = controller.try_admit(Priority.HIGH, queue_depth=11)
        assert not decision.admitted
        assert decision.reason is DegradedReason.SHED_QUEUE

    def test_priority_fractions(self):
        # depth limit 20: LOW sheds above 10, NORMAL above 16, HIGH above 20.
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=20), clock=ManualClock()
        )
        assert not controller.try_admit(Priority.LOW, queue_depth=11).admitted
        assert controller.try_admit(Priority.NORMAL, queue_depth=11).admitted
        assert not controller.try_admit(
            Priority.NORMAL, queue_depth=17
        ).admitted
        assert controller.try_admit(Priority.HIGH, queue_depth=17).admitted

    def test_internal_inflight_tracking(self):
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=2), clock=ManualClock()
        )
        assert controller.try_admit(Priority.HIGH).admitted
        assert controller.try_admit(Priority.HIGH).admitted
        assert controller.try_admit(Priority.HIGH).admitted  # depth 2 == limit
        assert not controller.try_admit(Priority.HIGH).admitted
        controller.release()
        assert controller.try_admit(Priority.HIGH).admitted
        assert controller.inflight == 3

    def test_release_never_goes_negative(self):
        controller = AdmissionController(clock=ManualClock())
        controller.release()
        assert controller.inflight == 0


class TestCounters:
    def test_admitted_and_shed_counters(self):
        registry = MetricsRegistry()
        controller = AdmissionController(
            AdmissionConfig(rate_per_s=10.0, burst=2.0, max_queue_depth=5),
            clock=ManualClock(),
            obs=registry,
        )
        assert controller.try_admit(Priority.HIGH).admitted
        assert controller.try_admit(Priority.HIGH).admitted
        assert not controller.try_admit(Priority.HIGH).admitted  # bucket dry
        assert not controller.try_admit(
            Priority.HIGH, queue_depth=6
        ).admitted
        assert registry.value("resilience.admitted") == 2
        assert registry.value("resilience.shed") == 2
        assert registry.value("resilience.shed_capacity") == 1
        assert registry.value("resilience.shed_queue") == 1
