"""Deadline budgets: clocks, expiry, constraints, and the partiality
record — including the end-to-end property that the index probe loop
never executes a probe after the budget expires."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.obs import MetricsRegistry
from repro.resilience import Deadline, DegradedReason, ManualClock


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestManualClock:
    def test_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(12.5)
        assert clock() == 12.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestDeadline:
    def test_after_ms_expires_on_the_clock(self):
        clock = ManualClock()
        deadline = Deadline.after_ms(10.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining_ms() == 10.0
        clock.advance(9.999)
        assert not deadline.expired()
        clock.advance(0.001)
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0

    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired()
        assert deadline.remaining_ms() == float("inf")

    def test_unlimited_accepts_injected_clock(self):
        clock = ManualClock()
        deadline = Deadline.unlimited(clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after_ms(0.0)
        with pytest.raises(ValueError):
            Deadline.after_ms(-5.0)

    def test_invalid_constraints_rejected(self):
        with pytest.raises(ValueError):
            Deadline.unlimited(max_probes=0)
        with pytest.raises(ValueError):
            Deadline.unlimited(max_query_words=0)

    def test_tighten_keeps_strictest(self):
        deadline = Deadline.unlimited(max_probes=100, max_query_words=8)
        deadline.tighten(max_probes=50, max_query_words=10)
        assert deadline.max_probes == 50
        assert deadline.max_query_words == 8
        deadline.tighten(max_probes=None)
        assert deadline.max_probes == 50

    def test_tighten_sets_unset_knobs(self):
        deadline = Deadline.unlimited()
        deadline.tighten(max_probes=16, max_query_words=4)
        assert deadline.max_probes == 16
        assert deadline.max_query_words == 4

    def test_partiality_record(self):
        deadline = Deadline.unlimited()
        assert not deadline.partial
        assert deadline.primary_reason() is DegradedReason.NONE
        deadline.mark_partial(DegradedReason.DEADLINE)
        deadline.mark_partial(DegradedReason.PARTIAL_SHARDS)
        assert deadline.partial
        assert deadline.partial_reasons == (
            DegradedReason.DEADLINE,
            DegradedReason.PARTIAL_SHARDS,
        )
        assert deadline.primary_reason() is DegradedReason.DEADLINE


class ReadCountClock:
    """Returns the number of prior reads: 0, 1, 2, ...

    ``Deadline.after_ms(k, clock)`` consumes read 0, so the probe loop's
    ``expired()`` checks read 1, 2, ...; the deadline expires exactly at
    read ``k``, i.e. after ``k - 1`` probes were allowed through.
    """

    def __init__(self):
        self.reads = 0

    def __call__(self):
        value = float(self.reads)
        self.reads += 1
        return value


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1),
            ad("comic books", 2),
            ad("books", 3),
            ad("cheap used books", 4),
            ad("cheap", 5),
        ]
    )


class TestIndexDeadline:
    def test_expired_budget_probes_nothing(self, corpus):
        registry = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, obs=registry)
        clock = ManualClock()
        deadline = Deadline.after_ms(5.0, clock=clock)
        clock.advance(10.0)
        result = index.query(Query.from_text("cheap used books"), deadline=deadline)
        assert result == []
        assert deadline.partial
        assert DegradedReason.DEADLINE in deadline.partial_reasons
        assert registry.value("index.probes") == 0
        assert registry.value("resilience.deadline_partials") == 1

    def test_generous_budget_matches_undeadlined_query(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        query = Query.from_text("cheap used books")
        full = index.query(query)
        deadline = Deadline.after_ms(1e9)
        assert index.query(query, deadline=deadline) == full
        assert not deadline.partial

    def test_max_probes_caps_and_flags(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        query = Query.from_text("cheap used books")
        full_probes = index.probe_count(query)
        assert full_probes > 1
        deadline = Deadline.unlimited(max_probes=1)
        result = index.query(query, deadline=deadline)
        assert DegradedReason.PROBES_CAPPED in deadline.partial_reasons
        full = index.query(query)
        assert {a.info.listing_id for a in result} <= {
            a.info.listing_id for a in full
        }

    def test_max_query_words_truncates_and_flags(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        deadline = Deadline.unlimited(max_query_words=1)
        index.query(Query.from_text("cheap used books"), deadline=deadline)
        assert DegradedReason.TRUNCATED in deadline.partial_reasons


WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]

phrase_strategy = st.lists(
    st.sampled_from(WORDS), min_size=1, max_size=4, unique=True
)
corpus_strategy = st.lists(phrase_strategy, min_size=1, max_size=8)
query_strategy = st.lists(
    st.sampled_from(WORDS), min_size=1, max_size=5, unique=True
)


class TestDeadlineProperty:
    """Satellite: the hypothesis deadline-budget property.

    For any corpus, query, and expiry point: (a) no probe executes after
    the budget expires, (b) a short result is always flagged partial
    with the DEADLINE reason, and (c) a budget generous enough for the
    whole plan returns exactly the no-deadline answer, unflagged.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        phrases=corpus_strategy,
        query_words=query_strategy,
        budget=st.integers(min_value=1, max_value=40),
    )
    def test_probe_loop_respects_expiry(self, phrases, query_words, budget):
        corpus = AdCorpus(
            [ad(" ".join(phrase), i) for i, phrase in enumerate(phrases)]
        )
        registry = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, obs=registry)
        query = Query.from_text(" ".join(query_words))
        full = index.query(query)
        full_probes = index.probe_count(query)
        probes_before = registry.value("index.probes")

        clock = ReadCountClock()
        deadline = Deadline.after_ms(float(budget), clock=clock)
        result = index.query(query, deadline=deadline)

        # (a) Exactly min(full, budget - 1) probes ran: the loop checks
        # the budget before every probe and stops at the first expiry.
        allowed = budget - 1
        executed = registry.value("index.probes") - probes_before
        assert executed == min(full_probes, allowed)

        if allowed >= full_probes:
            # (c) A generous budget is invisible: identical results, no
            # partiality flag.
            assert result == full
            assert not deadline.partial
        else:
            # (b) A short result is flagged, never silent.
            assert deadline.partial
            assert DegradedReason.DEADLINE in deadline.partial_reasons
            assert {a.info.listing_id for a in result} <= {
                a.info.listing_id for a in full
            }

    @settings(max_examples=30, deadline=None)
    @given(phrases=corpus_strategy, query_words=query_strategy)
    def test_unlimited_deadline_is_invisible(self, phrases, query_words):
        corpus = AdCorpus(
            [ad(" ".join(phrase), i) for i, phrase in enumerate(phrases)]
        )
        index = WordSetIndex.from_corpus(corpus)
        query = Query.from_text(" ".join(query_words))
        deadline = Deadline.unlimited()
        assert index.query(query, deadline=deadline) == index.query(query)
        assert not deadline.partial
