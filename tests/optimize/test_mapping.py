"""Tests for the mapping types, long-phrase remap, and the full optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query, Workload
from repro.cost.model import CostModel
from repro.cost.workload_cost import cost_node, total_cost
from repro.optimize.mapping import (
    Mapping,
    OptimizerConfig,
    corpus_groups,
    locator_access_profile,
    node_size_bound,
    node_weight,
    optimize_mapping,
)
from repro.optimize.remap import build_index, long_phrase_mapping


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


MODEL = CostModel()


class TestMappingType:
    def test_identity(self):
        corpus = AdCorpus([ad("a b", 1), ad("c", 2)])
        mapping = Mapping.identity(corpus)
        assert mapping.locator_for(frozenset({"a", "b"})) == frozenset({"a", "b"})
        assert mapping.remapped_count() == 0

    def test_rejects_non_subset(self):
        with pytest.raises(ValueError):
            Mapping({frozenset({"a"}): frozenset({"b"})})

    def test_rejects_empty_locator(self):
        with pytest.raises(ValueError):
            Mapping({frozenset({"a"}): frozenset()})

    def test_rejects_overlong_locator(self):
        with pytest.raises(ValueError):
            Mapping({frozenset({"a", "b"}): frozenset({"a", "b"})}, max_words=1)

    def test_locator_for_unmapped_is_identity(self):
        mapping = Mapping({})
        assert mapping.locator_for(frozenset({"x"})) == frozenset({"x"})

    def test_counters(self):
        mapping = Mapping(
            {
                frozenset({"a", "b"}): frozenset({"a"}),
                frozenset({"a"}): frozenset({"a"}),
            }
        )
        assert mapping.remapped_count() == 1
        assert mapping.num_locators() == 1


class TestGroups:
    def test_corpus_groups_partition(self):
        corpus = AdCorpus([ad("a b", 1), ad("b a", 2), ad("c", 3)])
        groups = corpus_groups(corpus)
        assert len(groups) == 2
        sizes = sorted(len(g.ads) for g in groups)
        assert sizes == [1, 2]

    def test_group_entry_bytes(self):
        corpus = AdCorpus([ad("a b", 1)])
        (group,) = corpus_groups(corpus)
        assert group.entry_bytes == 3 + corpus[0].size_bytes()


class TestAccessProfile:
    def test_profile_counts_superset_queries_by_length(self):
        locators = {frozenset({"a"}), frozenset({"a", "b"})}
        workload = Workload(
            [
                (Query.from_text("a b"), 3),
                (Query.from_text("a c"), 2),
                (Query.from_text("z"), 9),
            ]
        )
        profile = locator_access_profile(locators, workload, max_words=None)
        assert profile[frozenset({"a"})] == {2: 5}
        assert profile[frozenset({"a", "b"})] == {2: 3}

    def test_max_words_limits_enumeration(self):
        locators = {frozenset({"a", "b", "c"})}
        workload = Workload([(Query.from_text("a b c"), 1)])
        profile = locator_access_profile(locators, workload, max_words=2)
        # 3-word locator can never be probed when max_words=2.
        assert frozenset({"a", "b", "c"}) not in profile


class TestNodeWeight:
    def test_zero_when_unaccessed(self):
        group = corpus_groups(AdCorpus([ad("a b", 1)]))[0]
        assert node_weight(frozenset({"a"}), [group], {}, MODEL) == 0.0

    def test_early_termination_in_weight(self):
        g_short = corpus_groups(AdCorpus([ad("a b", 1)]))[0]
        g_long = corpus_groups(AdCorpus([ad("a b c d", 2)]))[0]
        access = {2: 10}  # only 2-word queries
        w_short = node_weight(frozenset({"a"}), [g_short], access, MODEL)
        w_both = node_weight(frozenset({"a"}), [g_short, g_long], access, MODEL)
        # The 4-word group is never scanned by 2-word queries.
        assert w_both == pytest.approx(w_short)

    def test_monotone_in_members_for_long_queries(self):
        g1 = corpus_groups(AdCorpus([ad("a b", 1)]))[0]
        g2 = corpus_groups(AdCorpus([ad("a c", 2)]))[0]
        access = {5: 4}
        w1 = node_weight(frozenset({"a"}), [g1], access, MODEL)
        w12 = node_weight(frozenset({"a"}), [g1, g2], access, MODEL)
        assert w12 > w1


class TestNodeSizeBound:
    def test_small_for_memory_costs(self):
        assert 2 <= node_size_bound(MODEL, avg_group_bytes=50.0) <= 50

    def test_degenerate_avg(self):
        assert node_size_bound(MODEL, 0.0) == 2


class TestLongPhraseMapping:
    def make_corpus(self):
        return AdCorpus(
            [
                ad("a b", 1),
                ad("a b c d e", 2),  # long (max_words=3)
                ad("x y z w v u", 3),  # long, no short subset exists
            ]
        )

    def test_long_groups_remapped(self):
        corpus = self.make_corpus()
        mapping = long_phrase_mapping(corpus, max_words=3)
        long_set = frozenset({"a", "b", "c", "d", "e"})
        locator = mapping.locator_for(long_set)
        assert len(locator) <= 3
        assert locator <= long_set

    def test_prefers_existing_locator(self):
        corpus = self.make_corpus()
        mapping = long_phrase_mapping(corpus, max_words=3)
        assert mapping.locator_for(
            frozenset({"a", "b", "c", "d", "e"})
        ) == frozenset({"a", "b"})

    def test_synthesizes_when_no_subset(self):
        corpus = self.make_corpus()
        mapping = long_phrase_mapping(corpus, max_words=3)
        orphan = frozenset({"x", "y", "z", "w", "v", "u"})
        locator = mapping.locator_for(orphan)
        assert len(locator) == 3 and locator <= orphan

    def test_short_groups_identity(self):
        corpus = self.make_corpus()
        mapping = long_phrase_mapping(corpus, max_words=3)
        assert mapping.locator_for(frozenset({"a", "b"})) == frozenset({"a", "b"})

    def test_rejects_bad_max_words(self):
        with pytest.raises(ValueError):
            long_phrase_mapping(AdCorpus(), 0)

    def test_index_under_mapping_is_correct(self):
        corpus = self.make_corpus()
        mapping = long_phrase_mapping(corpus, max_words=3)
        index = build_index(corpus, mapping)
        index.check_invariants()
        for qtext in ("a b c d e f", "x y z w v u t", "a b"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in index.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(corpus, q))
            assert got == want


class TestOptimizeMapping:
    def make_setup(self):
        corpus = AdCorpus(
            [
                ad("books", 1),
                ad("used books", 2),
                ad("cheap used books", 3),
                ad("rare stamps", 4),
            ]
        )
        workload = Workload(
            [
                (Query.from_text("cheap used books"), 50),
                (Query.from_text("used books"), 20),
                (Query.from_text("rare stamps france"), 5),
            ]
        )
        return corpus, workload

    def test_produces_valid_mapping(self):
        corpus, workload = self.make_setup()
        mapping = optimize_mapping(corpus, workload, MODEL)
        index = build_index(corpus, mapping)
        index.check_invariants()

    def test_correctness_preserved(self):
        corpus, workload = self.make_setup()
        mapping = optimize_mapping(corpus, workload, MODEL)
        index = build_index(corpus, mapping)
        for query, _ in workload:
            got = sorted(a.info.listing_id for a in index.query(query))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == want

    def test_optimized_no_worse_than_identity_on_node_cost(self):
        corpus, workload = self.make_setup()
        mapping = optimize_mapping(corpus, workload, MODEL)
        optimized = build_index(corpus, mapping)
        identity = build_index(corpus, None)
        assert cost_node(optimized, workload, MODEL) <= cost_node(
            identity, workload, MODEL
        ) + 1e-9

    def test_co_accessed_nodes_merged(self):
        # Every query hitting "cheap used books" also hits "used books";
        # merging them saves a random access per query — the optimizer
        # must exploit that (the paper's Case 2 argument).
        corpus, workload = self.make_setup()
        mapping = optimize_mapping(corpus, workload, MODEL)
        index = build_index(corpus, mapping)
        assert index.stats().num_nodes < 4

    def test_empty_corpus(self):
        mapping = optimize_mapping(AdCorpus(), Workload(), MODEL)
        assert len(mapping) == 0

    def test_long_phrases_get_short_locators(self):
        corpus = AdCorpus([ad("a b c d e f g h i j k l", 1), ad("a b", 2)])
        workload = Workload([(Query.from_text("a b"), 1)])
        config = OptimizerConfig(max_words=4)
        mapping = optimize_mapping(corpus, workload, MODEL, config)
        long_set = frozenset("abcdefghijkl".split()) | {
            "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"
        }
        # Re-derive the actual word-set from the corpus.
        long_set = corpus[0].words
        assert len(mapping.locator_for(long_set)) <= 4

    def test_total_cost_never_worse_with_same_max_words(self):
        corpus, workload = self.make_setup()
        config = OptimizerConfig(max_words=None)
        mapping = optimize_mapping(corpus, workload, MODEL, config)
        optimized = build_index(corpus, mapping)
        identity = build_index(corpus, None)
        assert total_cost(optimized, workload, MODEL) <= total_cost(
            identity, workload, MODEL
        ) + 1e-9


words_alphabet = [f"w{i}" for i in range(8)]


def phrase_strategy(max_len=4):
    return st.lists(
        st.sampled_from(words_alphabet), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def setup_strategy(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=15))
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(
        st.lists(phrase_strategy(max_len=6), min_size=1, max_size=6)
    )
    freqs = draw(
        st.lists(
            st.integers(1, 100), min_size=len(queries), max_size=len(queries)
        )
    )
    workload = Workload(
        [(Query.from_text(q), f) for q, f in zip(queries, freqs)]
    )
    return AdCorpus(ads), workload


class TestOptimizerProperties:
    @given(setup_strategy())
    @settings(max_examples=40, deadline=None)
    def test_optimized_index_always_correct(self, setup):
        corpus, workload = setup
        mapping = optimize_mapping(corpus, workload, MODEL)
        index = build_index(corpus, mapping)
        index.check_invariants()
        for query, _ in workload:
            got = sorted(a.info.listing_id for a in index.query(query))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == want

    @given(setup_strategy())
    @settings(max_examples=25, deadline=None)
    def test_node_cost_never_above_identity(self, setup):
        corpus, workload = setup
        config = OptimizerConfig(max_words=None, withdrawal=True)
        mapping = optimize_mapping(corpus, workload, MODEL, config)
        optimized = build_index(corpus, mapping)
        identity = build_index(corpus, None)
        assert cost_node(optimized, workload, MODEL) <= cost_node(
            identity, workload, MODEL
        ) + 1e-6
