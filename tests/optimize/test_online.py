"""Tests for online maintenance (insert/delete + periodic re-optimization)."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query, Workload
from repro.cost.model import CostModel
from repro.optimize.mapping import OptimizerConfig
from repro.optimize.online import MaintainedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


MODEL = CostModel()


@pytest.fixture()
def maintained():
    corpus = AdCorpus(
        [ad("books", 1), ad("used books", 2), ad("cheap used books", 3)]
    )
    workload = Workload(
        [
            (Query.from_text("cheap used books"), 10),
            (Query.from_text("books"), 5),
        ]
    )
    return MaintainedIndex(
        corpus,
        workload,
        MODEL,
        config=OptimizerConfig(max_words=4),
        reopt_threshold=0,
    )


class TestInsertion:
    def test_insert_short_ad_queryable(self, maintained):
        maintained.insert(ad("rare coins", 10))
        result = maintained.query(Query.from_text("rare coins shop"))
        assert 10 in {a.info.listing_id for a in result}
        maintained.index.check_invariants()

    def test_insert_follows_existing_group(self, maintained):
        maintained.insert(ad("used books", 20))
        node = maintained.index.node_for(frozenset({"used", "books"}))
        ids = {e.ad.info.listing_id for e in node.entries}
        assert {2, 20} <= ids

    def test_insert_long_ad_gets_short_locator(self, maintained):
        long_ad = ad("w1 w2 w3 w4 w5 w6 w7", 30)
        maintained.insert(long_ad)
        placement = maintained.index.placement()
        assert len(placement[long_ad.words]) <= 4
        result = maintained.query(
            Query.from_text("w1 w2 w3 w4 w5 w6 w7 w8")
        )
        assert 30 in {a.info.listing_id for a in result}
        maintained.index.check_invariants()

    def test_insert_long_ad_prefers_existing_subset_locator(self, maintained):
        maintained.insert(ad("alpha beta", 40))
        long_ad = ad("alpha beta gamma delta epsilon zeta", 41)
        maintained.insert(long_ad)
        locator = maintained.index.placement()[long_ad.words]
        assert locator == frozenset({"alpha", "beta"})


class TestDeletion:
    def test_delete_removes_from_results(self, maintained):
        victim = ad("used books", 2)
        assert maintained.delete(victim)
        result = maintained.query(Query.from_text("cheap used books"))
        assert 2 not in {a.info.listing_id for a in result}
        maintained.index.check_invariants()

    def test_delete_absent_returns_false(self, maintained):
        assert not maintained.delete(ad("nonexistent phrase", 99))


class TestReoptimization:
    def test_threshold_triggers_reopt(self):
        corpus = AdCorpus([ad("a b", 1)])
        workload = Workload([(Query.from_text("a b"), 1)])
        maintained = MaintainedIndex(
            corpus, workload, MODEL, reopt_threshold=3
        )
        for i in range(3):
            maintained.insert(ad(f"new{i} phrase", 10 + i))
        assert maintained.reopt_count == 1
        assert maintained.mutations_since_reopt == 0
        maintained.index.check_invariants()

    def test_manual_reopt_with_new_workload(self, maintained):
        new_workload = Workload([(Query.from_text("books"), 100)])
        maintained.reoptimize(new_workload)
        assert maintained.reopt_count == 1
        maintained.index.check_invariants()

    def test_results_stable_across_reopt(self):
        ads = [ad("books", 1), ad("used books", 2), ad("old maps", 3)]
        corpus = AdCorpus(ads)
        workload = Workload([(Query.from_text("used books"), 5)])
        maintained = MaintainedIndex(corpus, workload, MODEL, reopt_threshold=0)
        q = Query.from_text("cheap used books")
        before = sorted(a.info.listing_id for a in maintained.query(q))
        maintained.reoptimize()
        after = sorted(a.info.listing_id for a in maintained.query(q))
        assert before == after == [1, 2]


class TestChurnEquivalence:
    def test_mixed_churn_matches_oracle(self):
        corpus = AdCorpus([ad(f"base w{i}", i) for i in range(10)])
        workload = Workload([(Query.from_text("base w1 w2"), 5)])
        maintained = MaintainedIndex(corpus, workload, MODEL, reopt_threshold=7)
        live = list(corpus)
        for i in range(20):
            new_ad = ad(f"churn{i % 4} base", 100 + i)
            maintained.insert(new_ad)
            live.append(new_ad)
            if i % 3 == 0:
                victim = live.pop(0)
                maintained.delete(victim)
        maintained.index.check_invariants()
        for qtext in ("base w1 churn0", "base churn1 churn2", "nothing here"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in maintained.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(live, q))
            assert got == want
