"""Tests for the generic weighted set cover solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.setcover import (
    CandidateSet,
    exact_weighted_set_cover,
    fixed_weight,
    greedy_weighted_set_cover,
    harmonic,
    withdrawal_improve,
)


def cand(name, elements, weight):
    return CandidateSet(
        name=name, elements=frozenset(elements), weight_fn=fixed_weight(weight)
    )


def cost(solution):
    return sum(chosen.weight for chosen in solution)


def covered(solution):
    out = set()
    for chosen in solution:
        out |= chosen.covered
    return out


class TestGreedy:
    def test_trivial_single_set(self):
        sol = greedy_weighted_set_cover({1, 2}, [cand("a", {1, 2}, 1.0)])
        assert covered(sol) == {1, 2}
        assert cost(sol) == 1.0

    def test_picks_cheaper_ratio(self):
        sets = [
            cand("big", {1, 2, 3, 4}, 4.0),  # ratio 1.0
            cand("cheap", {1, 2, 3, 4}, 2.0),  # ratio 0.5
        ]
        sol = greedy_weighted_set_cover({1, 2, 3, 4}, sets)
        assert [c.candidate.name for c in sol] == ["cheap"]

    def test_classic_greedy_suboptimality(self):
        # The textbook example where greedy pays ~H_k times optimum.
        universe = {1, 2, 3, 4}
        sets = [
            cand("opt1", {1, 2}, 1.0 + 1e-6),
            cand("opt2", {3, 4}, 1.0 + 1e-6),
            cand("g1", {1, 2, 3}, 1.0),
            cand("g2", {4}, 1.0),
        ]
        sol = greedy_weighted_set_cover(universe, sets)
        assert covered(sol) == universe

    def test_empty_universe(self):
        assert greedy_weighted_set_cover(set(), [cand("a", {1}, 1.0)]) == []

    def test_uncoverable_raises(self):
        with pytest.raises(ValueError):
            greedy_weighted_set_cover({1, 2}, [cand("a", {1}, 1.0)])

    def test_residual_weights_reprice(self):
        # A residual-aware candidate whose weight is proportional to the
        # covered elements.
        per_element = CandidateSet(
            name="lin",
            elements=frozenset({1, 2, 3}),
            weight_fn=lambda els: 10.0 * len(els),
        )
        cheap_pair = cand("pair", {1, 2}, 1.0)
        sol = greedy_weighted_set_cover({1, 2, 3}, [per_element, cheap_pair])
        # pair is taken first (ratio 0.5 vs 10); lin then covers only {3}
        # and must be priced at 10, not 30.
        assert cost(sol) == pytest.approx(11.0)

    def test_solution_sets_disjoint_coverage(self):
        sets = [cand("a", {1, 2}, 1.0), cand("b", {2, 3}, 1.0)]
        sol = greedy_weighted_set_cover({1, 2, 3}, sets)
        seen = set()
        for chosen in sol:
            assert not (chosen.covered & seen)
            seen |= chosen.covered


class TestExact:
    def test_finds_optimum(self):
        universe = {1, 2, 3, 4}
        sets = [
            cand("all", universe, 3.0),
            cand("a", {1, 2}, 1.0),
            cand("b", {3, 4}, 1.0),
        ]
        sol = exact_weighted_set_cover(universe, sets)
        assert cost(sol) == pytest.approx(2.0)

    def test_uncoverable_raises(self):
        with pytest.raises(ValueError):
            exact_weighted_set_cover({1, 2}, [cand("a", {1}, 1.0)])

    def test_empty_universe(self):
        assert exact_weighted_set_cover(set(), []) == []


def random_instance(rng, n_elements, n_sets, max_set_size):
    universe = list(range(n_elements))
    sets = []
    for i in range(n_sets):
        size = rng.randint(1, max_set_size)
        elements = frozenset(rng.sample(universe, min(size, n_elements)))
        sets.append(cand(i, elements, rng.uniform(0.5, 5.0)))
    # Guarantee coverability with singletons.
    for e in universe:
        sets.append(cand(f"s{e}", {e}, rng.uniform(2.0, 6.0)))
    return set(universe), sets


class TestApproximationBound:
    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_within_harmonic_of_optimal(self, seed):
        """Chvátal's guarantee: greedy <= H_k * OPT for set size <= k."""
        rng = random.Random(seed)
        k = 3
        universe, sets = random_instance(rng, 6, 6, max_set_size=k)
        greedy_cost = cost(greedy_weighted_set_cover(universe, sets))
        opt_cost = cost(exact_weighted_set_cover(universe, sets))
        assert greedy_cost <= harmonic(k) * opt_cost + 1e-9

    def test_harmonic_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(3) == pytest.approx(1 + 0.5 + 1 / 3)


class TestWithdrawal:
    def test_removes_redundant_set(self):
        universe = {1, 2}
        sets = [cand("a", {1, 2}, 1.0), cand("b", {2}, 0.5)]
        # Force a bad starting solution with a redundant member.
        from repro.optimize.setcover import ChosenSet

        bad = [
            ChosenSet(candidate=sets[0], covered=frozenset({1, 2})),
            ChosenSet(candidate=sets[1], covered=frozenset({2})),
        ]
        improved = withdrawal_improve(universe, sets, bad)
        assert cost(improved) <= cost(bad)
        assert covered(improved) == universe

    def test_replaces_with_cheaper(self):
        universe = {1, 2}
        expensive = cand("exp", {1, 2}, 10.0)
        cheap = cand("cheap", {1, 2}, 1.0)
        from repro.optimize.setcover import ChosenSet

        bad = [ChosenSet(candidate=expensive, covered=frozenset(universe))]
        improved = withdrawal_improve(universe, [expensive, cheap], bad)
        assert cost(improved) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_greedy(self, seed):
        rng = random.Random(100 + seed)
        universe, sets = random_instance(rng, 8, 10, max_set_size=4)
        greedy = greedy_weighted_set_cover(universe, sets)
        improved = withdrawal_improve(universe, sets, greedy)
        assert cost(improved) <= cost(greedy) + 1e-9
        assert covered(improved) == universe


class TestPropertyBased:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_greedy_always_covers(self, seed):
        rng = random.Random(seed)
        universe, sets = random_instance(rng, 10, 8, max_set_size=5)
        sol = greedy_weighted_set_cover(universe, sets)
        assert covered(sol) == universe
        # Disjoint coverage partitions the universe.
        assert sum(len(c.covered) for c in sol) == len(universe)
