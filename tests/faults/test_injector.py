"""Tests for the fault-injection harness itself (injector + mutators)."""

import pytest

from repro.faults import (
    NULL_INJECTOR,
    FaultInjector,
    InjectedCrash,
    active_injector,
    bit_flip,
    tear_tail,
    truncate_at,
)
from repro.obs import MetricsRegistry


class TestCrashpoints:
    def test_unarmed_point_is_silent(self):
        injector = FaultInjector()
        injector.crashpoint("anywhere")
        assert injector.fired == []
        assert injector.visited == ["anywhere"]

    def test_armed_point_raises(self):
        injector = FaultInjector()
        with injector.arm("save.tmp_written"):
            with pytest.raises(InjectedCrash) as excinfo:
                injector.crashpoint("save.tmp_written")
        assert excinfo.value.point == "save.tmp_written"
        assert injector.fired == ["save.tmp_written"]

    def test_arm_scope_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.arm("p"):
            pass
        injector.crashpoint("p")  # disarmed: no raise

    def test_fires_on_nth_hit_only(self):
        injector = FaultInjector()
        injector.arm_forever("p", hits=3)
        injector.crashpoint("p")
        injector.crashpoint("p")
        with pytest.raises(InjectedCrash):
            injector.crashpoint("p")
        injector.crashpoint("p")  # times=1 exhausted

    def test_times_bounds_repeat_fires(self):
        injector = FaultInjector()
        injector.arm_forever("p", times=2)
        for _ in range(2):
            with pytest.raises(InjectedCrash):
                injector.crashpoint("p")
        injector.crashpoint("p")

    def test_should_fail_reports_instead_of_raising(self):
        injector = FaultInjector()
        injector.arm_forever("rpc", times=2)
        assert injector.should_fail("rpc")
        assert injector.should_fail("rpc")
        assert not injector.should_fail("rpc")

    def test_is_armed_previews_without_visiting(self):
        injector = FaultInjector()
        assert not injector.is_armed("p")
        injector.arm_forever("p")
        assert injector.is_armed("p")
        assert injector.visited == []

    def test_hooks_run_on_every_visit(self):
        injector = FaultInjector()
        seen = []
        injector.on("p", seen.append)
        injector.crashpoint("p")
        injector.crashpoint("p")
        assert seen == ["p", "p"]

    def test_fired_faults_count_into_obs(self):
        registry = MetricsRegistry()
        injector = FaultInjector(obs=registry)
        injector.arm_forever("p")
        with pytest.raises(InjectedCrash):
            injector.crashpoint("p")
        assert registry.value("faults_injected") == 1

    def test_reset_clears_everything(self):
        injector = FaultInjector()
        injector.arm_forever("p")
        injector.on("p", lambda _: None)
        injector.reset()
        injector.crashpoint("p")
        assert injector.fired == []

    def test_invalid_plan_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm_forever("p", hits=0)


class TestNullInjector:
    def test_null_injector_never_fires(self):
        NULL_INJECTOR.crashpoint("anything")
        assert not NULL_INJECTOR.should_fail("anything")
        assert not NULL_INJECTOR.is_armed("anything")

    def test_null_injector_cannot_be_armed(self):
        with pytest.raises(ValueError):
            NULL_INJECTOR.arm_forever("p")

    def test_active_injector_normalises_none(self):
        assert active_injector(None) is NULL_INJECTOR
        real = FaultInjector()
        assert active_injector(real) is real


class TestMutators:
    def test_tear_tail_keeps_prefix_of_last_line(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("first line\nsecond line\n")
        tear_tail(path, keep_fraction=0.5)
        data = path.read_text()
        assert data.startswith("first line\n")
        assert not data.endswith("\n")
        assert "second line" not in data

    def test_tear_tail_single_line(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("only line here\n")
        size = tear_tail(path, keep_fraction=0.5)
        assert size == len("only line here") // 2
        assert path.read_text() == "only li"

    def test_tear_tail_empty_file_untouched(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("")
        assert tear_tail(path) == 0
        assert path.read_text() == ""

    def test_bit_flip_changes_exactly_one_bit(self, tmp_path):
        path = tmp_path / "data"
        original = b"hello durable world"
        path.write_bytes(original)
        offset = bit_flip(path, offset=4, bit=1)
        mutated = path.read_bytes()
        assert offset == 4
        assert len(mutated) == len(original)
        diffs = [
            (i, a ^ b)
            for i, (a, b) in enumerate(zip(original, mutated))
            if a != b
        ]
        assert diffs == [(4, 1 << 1)]
        # Deterministic: flipping again restores the original.
        bit_flip(path, offset=4, bit=1)
        assert path.read_bytes() == original

    def test_bit_flip_defaults_to_middle(self, tmp_path):
        path = tmp_path / "data"
        path.write_bytes(b"0123456789")
        assert bit_flip(path) == 5

    def test_bit_flip_rejects_empty_and_bad_offsets(self, tmp_path):
        path = tmp_path / "data"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            bit_flip(path)
        path.write_bytes(b"xy")
        with pytest.raises(ValueError):
            bit_flip(path, offset=7)

    def test_truncate_at(self, tmp_path):
        path = tmp_path / "data"
        path.write_bytes(b"0123456789")
        truncate_at(path, 4)
        assert path.read_bytes() == b"0123"
