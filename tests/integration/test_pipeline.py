"""End-to-end integration: generate -> optimize -> compress -> serve.

Exercises the full production pipeline across module boundaries and checks
global invariants: every structure stage returns identical results, cost
never regresses through optimization, and the compressed artifact is exact.
"""

import pytest

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.core.matching import MatchType, naive_broad_match, naive_match
from repro.cost.model import CostModel
from repro.cost.workload_cost import total_cost
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index, long_phrase_mapping

MODEL = CostModel()


@pytest.fixture(scope="module")
def pipeline():
    generated = generate_corpus(CorpusConfig(num_ads=2_500, seed=33))
    workload = generate_workload(
        generated,
        QueryConfig(num_distinct=400, total_frequency=8_000, seed=5),
    )
    corpus = generated.corpus
    mapping = optimize_mapping(
        corpus, workload, MODEL, OptimizerConfig(max_words=10)
    )
    optimized = build_index(corpus, mapping)
    compressed = CompressedWordSetIndex.from_index(optimized, suffix_bits=14)
    return corpus, workload, optimized, compressed


class TestFullPipeline:
    def test_all_stages_agree_with_oracle(self, pipeline):
        corpus, workload, optimized, compressed = pipeline
        identity = build_index(corpus, None)
        inverted = NonRedundantInvertedIndex.from_corpus(corpus)
        counting = CountingInvertedIndex.from_corpus(corpus)
        for query, _ in list(workload)[:150]:
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            for structure in (identity, optimized, compressed, inverted, counting):
                got = sorted(
                    a.info.listing_id for a in structure.query(query)
                )
                assert got == expected, type(structure).__name__

    def test_optimization_never_regresses_cost(self, pipeline):
        corpus, workload, optimized, _ = pipeline
        identity = build_index(corpus, None)
        long_only = build_index(corpus, long_phrase_mapping(corpus, 10))
        cost_identity = total_cost(identity, workload, MODEL)
        cost_long = total_cost(long_only, workload, MODEL)
        cost_opt = total_cost(optimized, workload, MODEL)
        assert cost_opt <= cost_long + 1e-6
        assert cost_long <= cost_identity + 1e-6

    def test_optimized_index_invariants(self, pipeline):
        _, _, optimized, _ = pipeline
        optimized.check_invariants()

    def test_compressed_smaller_entropy_than_hash_model(self, pipeline):
        _, _, optimized, compressed = pipeline
        hash_bits = optimized.hash_table_bytes() * 8
        assert compressed.entropy_bits() < hash_bits

    def test_match_types_after_optimization(self, pipeline):
        corpus, workload, optimized, _ = pipeline
        for query, _ in list(workload)[:60]:
            for mt in (MatchType.EXACT, MatchType.PHRASE):
                got = sorted(
                    a.info.listing_id for a in optimized.query(query, mt)
                )
                expected = sorted(
                    a.info.listing_id for a in naive_match(corpus, query, mt)
                )
                assert got == expected


class TestRunnerSmoke:
    def test_runner_all_cheap_experiments(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig1", "fig2", "fig3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert out.count("====") >= 3
