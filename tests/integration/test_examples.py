"""Smoke tests: every example script runs to completion and prints its
expected final output."""

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "broad" in out
        assert "[1, 2, 4]" in out
        assert "after re-mapping" in out

    def test_ad_platform(self):
        out = run_example("ad_platform.py")
        assert "queries served:        2,000" in out
        assert "impressions" in out

    def test_workload_tuning(self):
        out = run_example("workload_tuning.py")
        assert "sample-optimized mapping" in out
        assert "after workload shift" in out

    def test_compressed_serving(self):
        out = run_example("compressed_serving.py")
        assert "verified 300 queries identical" in out
        assert "front-coded" in out

    def test_online_maintenance(self):
        out = run_example("online_maintenance.py")
        assert "all answers oracle-verified" in out

    def test_auction_budgets(self):
        out = run_example("auction_budgets.py")
        assert "queries:              10,000" in out
        assert "revenue" in out

    def test_import_and_serve(self):
        out = run_example("import_and_serve.py")
        assert "done — all stages verified" in out
        assert "recovery replayed 2 op(s)" in out
