"""``ServeRequest``/``ServeResult`` dict/JSON round-trips — the wire
schema contract, tested with no network tier anywhere in sight."""

import json

import pytest

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.resilience.admission import Priority
from repro.resilience.deadline import Deadline, DegradedReason, ManualClock
from repro.serving import AdServer, ServeRequest, ServeResult, WireSchemaError
from repro.serving.request import ad_from_dict, ad_to_dict
from repro.core.wordset_index import WordSetIndex


def ad(text, listing_id=0, campaign_id=0, bid=0, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            campaign_id=campaign_id,
            bid_price_micros=bid,
            exclusion_phrases=exclusions,
        ),
    )


CORPUS = [
    ad("cheap used books", 1, campaign_id=9, bid=500),
    ad("used books", 2, bid=300),
    ad("books", 3, bid=200),
    ad("books used cheap", 6, bid=450),
    ad("summer sale shoes", 8, bid=100, exclusions=("winter boots",)),
]


class TestAdCodec:
    def test_round_trip_preserves_identity_and_phrase_order(self):
        original = ad("cheap used books", 7, campaign_id=3, bid=123,
                      exclusions=("rare maps",))
        decoded = ad_from_dict(ad_to_dict(original))
        assert decoded == original
        assert decoded.phrase == ("cheap", "used", "books")

    def test_missing_phrase_raises_schema_error(self):
        with pytest.raises(WireSchemaError):
            ad_from_dict({"listing_id": 1})


class TestServeRequestRoundTrip:
    def test_full_round_trip(self):
        request = ServeRequest.from_text(
            "cheap used books",
            user_id="u1",
            priority=Priority.HIGH,
            deadline_ms=125.5,
            request_id="req-1",
        )
        assert ServeRequest.from_dict(request.to_dict()) == request
        assert ServeRequest.from_json(request.to_json()) == request

    def test_defaults_are_omitted_from_the_wire(self):
        encoded = ServeRequest.from_text("books").to_dict()
        assert encoded == {"query": ["books"]}

    def test_deadline_object_never_serializes(self):
        clock = ManualClock()
        request = ServeRequest.from_text(
            "books", deadline=Deadline.after_ms(50.0, clock=clock)
        )
        assert "deadline" not in request.to_dict()
        # The round-tripped request is equal: ``deadline`` is excluded
        # from comparison exactly because it cannot cross the wire.
        assert ServeRequest.from_dict(request.to_dict()) == request

    def test_resolve_deadline_prefers_the_object(self):
        clock = ManualClock()
        explicit = Deadline.after_ms(50.0, clock=clock)
        request = ServeRequest.from_text(
            "books", deadline_ms=500.0, deadline=explicit
        )
        assert request.resolve_deadline(clock) is explicit

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"query": "not a list"},
            {"query": ["ok", 3]},
            {"query": ["ok"], "user_id": 1.5},
            {"query": ["ok"], "priority": "urgent"},
            {"query": ["ok"], "deadline_ms": -5},
            {"query": ["ok"], "deadline_ms": "fast"},
            {"query": ["ok"], "request_id": 9},
            "not an object",
        ],
    )
    def test_bad_payloads_raise_schema_errors(self, payload):
        with pytest.raises(WireSchemaError):
            ServeRequest.from_dict(payload)

    def test_nonpositive_deadline_rejected_at_construction(self):
        with pytest.raises(WireSchemaError):
            ServeRequest.from_text("books", deadline_ms=0)


class TestServeResultRoundTrip:
    def _result(self, text="books used cheap extra"):
        server = AdServer(WordSetIndex.from_corpus(CORPUS), slots=3)
        return server.serve(Query.from_text(text))

    def test_round_trip_is_equal(self):
        result = self._result()
        assert result.ads, "fixture query must award slots"
        assert ServeResult.from_dict(result.to_dict()) == result
        assert ServeResult.from_json(result.to_json()) == result

    def test_award_ordering_and_ad_identity_survive(self):
        result = self._result()
        decoded = ServeResult.from_dict(
            json.loads(result.to_json())
        )
        assert [a.info.listing_id for a in decoded.ads] == [
            a.info.listing_id for a in result.ads
        ]
        for ours, theirs in zip(result.outcome.awards, decoded.outcome.awards):
            assert ours.ad.phrase == theirs.ad.phrase
            assert ours.price_micros == theirs.price_micros
            assert ours.slot == theirs.slot

    def test_degraded_reason_survives(self):
        result = self._result()
        flagged = ServeResult(
            query=result.query,
            outcome=result.outcome,
            degraded_reason=DegradedReason.SHED_CAPACITY,
        )
        decoded = ServeResult.from_dict(flagged.to_dict())
        assert decoded.degraded_reason is DegradedReason.SHED_CAPACITY
        assert decoded.degraded

    def test_unknown_reason_raises_schema_error(self):
        encoded = self._result().to_dict()
        encoded["degraded_reason"] = "melted"
        with pytest.raises(WireSchemaError):
            ServeResult.from_dict(encoded)

    def test_missing_outcome_raises_schema_error(self):
        with pytest.raises(WireSchemaError):
            ServeResult.from_dict({"query": ["books"]})


class TestServeRequestApi:
    """The redesigned ``serve(ServeRequest)`` entry point."""

    def _servers(self, **kwargs):
        return (
            AdServer(WordSetIndex.from_corpus(CORPUS), **kwargs),
            AdServer(WordSetIndex.from_corpus(CORPUS), **kwargs),
        )

    def test_request_object_matches_legacy_signature_bit_for_bit(self):
        legacy, redesigned = self._servers(frequency_cap=1)
        for text in ("books", "cheap used books", "summer sale shoes"):
            query = Query.from_text(text)
            old = legacy.serve(query, user_id="u1")
            new = redesigned.serve(ServeRequest(query=query, user_id="u1"))
            assert old.to_dict() == new.to_dict()
        assert legacy.stats.snapshot() == redesigned.stats.snapshot()

    def test_mixing_request_object_and_kwargs_is_an_error(self):
        server, _ = self._servers()
        request = ServeRequest.from_text("books")
        with pytest.raises(TypeError):
            server.serve(request, user_id="u1")
        with pytest.raises(TypeError):
            server.serve(request, priority=Priority.HIGH)

    def test_serve_batch_mixing_styles_is_an_error(self):
        server, _ = self._servers()
        with pytest.raises(TypeError):
            server.serve_batch(
                [ServeRequest.from_text("books"), Query.from_text("books")]
            )

    def test_serve_batch_of_requests_carries_per_item_user_ids(self):
        sequential, batched = self._servers(frequency_cap=1)
        requests = [
            ServeRequest.from_text("books", user_id="u1"),
            ServeRequest.from_text("books", user_id="u1"),
            ServeRequest.from_text("books", user_id="u2"),
        ]
        expected = [sequential.serve(r) for r in requests]
        got = batched.serve_batch(requests)
        assert [r.to_dict() for r in got] == [r.to_dict() for r in expected]
