"""Resilience features of the ad server: admission shedding, deadline
budgets, adaptive degradation, stale-cache fallback — and the guarantee
that with everything disabled the baseline pipeline is untouched."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.resilience import (
    AdmissionConfig,
    AdmissionController,
    Deadline,
    DegradationLevel,
    DegradationPolicy,
    DegradedReason,
    ManualClock,
    Priority,
)
from repro.serving.result_cache import CachedIndex
from repro.serving.server import AdServer, ServingStats


def ad(text, listing_id, bid=100):
    return Advertisement.from_text(
        text,
        AdInfo(listing_id=listing_id, campaign_id=listing_id, bid_price_micros=bid),
    )


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1, bid=300),
            ad("books", 2, bid=200),
            ad("cheap used books", 3, bid=500),
        ]
    )


@pytest.fixture()
def index(corpus):
    return WordSetIndex.from_corpus(corpus)


class FailingIndex:
    """Raises on query until ``healthy`` is flipped back on."""

    supports_deadline = False

    def __init__(self, inner):
        self.inner = inner
        self.healthy = True

    def query(self, query, match_type=MatchType.BROAD):
        if not self.healthy:
            raise RuntimeError("retrieval down")
        return self.inner.query(query, match_type)


class TestBaselineUntouched:
    def test_no_resilience_no_behavior_change(self, index):
        server = AdServer(index, slots=2)
        result = server.serve(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result.ads] == [3, 1]
        assert result.degraded_reason is DegradedReason.NONE
        assert not result.degraded
        assert server.stats.shed == 0
        assert server.stats.degraded == 0

    def test_snapshot_has_resilience_counters_at_zero(self, index):
        server = AdServer(index)
        server.serve(Query.from_text("books"))
        snapshot = server.stats.snapshot()
        assert snapshot["shed"] == 0
        assert snapshot["degraded"] == 0
        assert snapshot["stale_results"] == 0
        assert snapshot["deadline_partials"] == 0
        assert not any(k.startswith("degraded_reason.") for k in snapshot)

    def test_generous_deadline_matches_baseline(self, index):
        plain = AdServer(index, slots=2)
        budgeted = AdServer(index, slots=2, default_deadline_ms=1e9)
        query = Query.from_text("cheap used books")
        assert [a.info.listing_id for a in budgeted.serve(query).ads] == [
            a.info.listing_id for a in plain.serve(query).ads
        ]
        assert not budgeted.serve(query).degraded


class TestAdmission:
    def make_server(self, index, **admission_kwargs):
        clock = ManualClock()
        admission = AdmissionController(
            AdmissionConfig(**admission_kwargs), clock=clock
        )
        return AdServer(index, slots=2, admission=admission), clock

    def test_shed_returns_flagged_empty_result(self, index):
        # burst=2 admits exactly one NORMAL request (needs 1 + 0.1*burst
        # tokens, leaving the bucket under the reserve line).
        server, _ = self.make_server(index, rate_per_s=10.0, burst=2.0)
        query = Query.from_text("cheap used books")
        assert server.serve(query).ads  # drains the bucket to 1 token
        shed = server.serve(query)
        assert shed.ads == []
        assert shed.degraded
        assert shed.degraded_reason is DegradedReason.SHED_CAPACITY

    def test_shed_counts_in_stats_but_not_queries(self, index):
        server, _ = self.make_server(index, rate_per_s=10.0, burst=2.0)
        query = Query.from_text("books")
        server.serve(query)
        server.serve(query)
        assert server.stats.queries == 1
        assert server.stats.shed == 1
        snapshot = server.stats.snapshot()
        assert snapshot["degraded_reason.shed_capacity"] == 1

    def test_priority_passes_through(self, index):
        server, _ = self.make_server(index, rate_per_s=10.0, burst=10.0)
        query = Query.from_text("books")
        for _ in range(7):
            assert not server.serve(query, priority=Priority.HIGH).degraded
        # Bucket at LOW's reserve line: LOW sheds, HIGH still serves.
        assert (
            server.serve(query, priority=Priority.LOW).degraded_reason
            is DegradedReason.SHED_CAPACITY
        )
        assert not server.serve(query, priority=Priority.HIGH).degraded

    def test_inflight_released_after_serve(self, index):
        server, _ = self.make_server(index, max_queue_depth=1)
        query = Query.from_text("books")
        for _ in range(5):
            assert not server.serve(query).degraded
        assert server.admission.inflight == 0

    def test_batch_preserves_order_around_shed_positions(self, index):
        # burst=3 admits exactly two NORMAL requests before the reserve
        # line; the third position sheds.
        server, _ = self.make_server(index, rate_per_s=10.0, burst=3.0)
        queries = [
            Query.from_text("cheap used books"),
            Query.from_text("books"),
            Query.from_text("used books"),
        ]
        results = server.serve_batch(queries)
        assert len(results) == 3
        assert [r.query for r in results] == queries
        assert not results[0].degraded
        assert not results[1].degraded
        assert results[2].degraded_reason is DegradedReason.SHED_CAPACITY
        assert server.stats.shed == 1


class TestDeadline:
    def test_expired_deadline_flags_result(self, index):
        clock = ManualClock()
        server = AdServer(index, slots=2, default_deadline_ms=10.0, clock=clock)

        original_query = index.query

        def slow_query(query, match_type=MatchType.BROAD, deadline=None):
            clock.advance(50.0)
            return original_query(query, match_type, deadline)

        index.query = slow_query
        result = server.serve(Query.from_text("cheap used books"))
        assert result.degraded_reason is DegradedReason.DEADLINE
        assert server.stats.deadline_partials == 1
        assert server.stats.degraded == 1
        assert server.stats.snapshot()["degraded_reason.deadline"] == 1

    def test_caller_deadline_wins_over_default(self, index):
        clock = ManualClock()
        server = AdServer(index, slots=2, default_deadline_ms=1e9, clock=clock)
        expired = Deadline.after_ms(1.0, clock=clock)
        clock.advance(5.0)
        result = server.serve(Query.from_text("books"), deadline=expired)
        assert result.degraded_reason is DegradedReason.DEADLINE


class TestDegradation:
    def make_server(self, index, pressure, **kwargs):
        policy = DegradationPolicy(
            high_ms=50.0,
            low_ms=10.0,
            ladder=(
                DegradationLevel(),
                DegradationLevel(max_query_words=1, stale_fallback=True),
            ),
            cooldown_queries=2,
            pressure_fn=pressure,
        )
        return AdServer(index, slots=2, degradation=policy, **kwargs)

    def test_pressure_truncates_queries(self, index):
        server = self.make_server(index, lambda: 100.0)
        query = Query.from_text("cheap used books")
        first = server.serve(query)
        assert first.degraded_reason is DegradedReason.NONE
        full_ids = {a.info.listing_id for a in first.ads}
        # The second query trips the cooldown before retrieval: the
        # ladder steps to max_query_words=1 and the result is truncated.
        degraded = server.serve(query)
        assert degraded.degraded_reason is DegradedReason.TRUNCATED
        assert {a.info.listing_id for a in degraded.ads} <= full_ids
        assert server.stats.degraded == 1
        assert server.stats.snapshot()["degraded_reason.truncated"] == 1

    def test_pressure_clears_and_fidelity_returns(self, index):
        readings = [100.0, 0.0]
        server = self.make_server(index, lambda: readings.pop(0))
        query = Query.from_text("cheap used books")
        server.serve(query)
        server.serve(query)  # steps down
        assert server.degradation.degraded
        server.serve(query)
        server.serve(query)  # steps back up
        assert not server.degradation.degraded
        result = server.serve(query)
        assert result.degraded_reason is DegradedReason.NONE


class TestStaleFallback:
    def make_cached_server(self, index, **kwargs):
        failing = FailingIndex(index)
        cached = CachedIndex(failing, capacity=16)
        return AdServer(cached, slots=2, **kwargs), failing, cached

    def test_stale_result_served_on_error(self, index):
        server, failing, cached = self.make_cached_server(
            index, stale_on_error=True
        )
        query = Query.from_text("cheap used books")
        fresh = server.serve(query)
        assert fresh.ads
        cached.invalidate()  # demotes the cached result to the stale store
        failing.healthy = False
        stale = server.serve(query)
        assert stale.degraded_reason is DegradedReason.STALE_CACHE
        assert [a.info.listing_id for a in stale.ads] == [
            a.info.listing_id for a in fresh.ads
        ]
        assert server.stats.stale_results == 1
        assert server.stats.snapshot()["degraded_reason.stale_cache"] == 1

    def test_unknown_query_still_raises(self, index):
        server, failing, cached = self.make_cached_server(
            index, stale_on_error=True
        )
        failing.healthy = False
        with pytest.raises(RuntimeError):
            server.serve(Query.from_text("never seen before"))

    def test_stale_fallback_gated_off_by_default(self, index):
        server, failing, cached = self.make_cached_server(index)
        query = Query.from_text("books")
        server.serve(query)
        cached.invalidate()
        failing.healthy = False
        with pytest.raises(RuntimeError):
            server.serve(query)

    def test_degradation_ladder_enables_stale_fallback(self, index):
        failing = FailingIndex(index)
        cached = CachedIndex(failing, capacity=16)
        policy = DegradationPolicy(
            high_ms=50.0,
            low_ms=10.0,
            ladder=(
                DegradationLevel(),
                DegradationLevel(stale_fallback=True),
            ),
            cooldown_queries=1,
            pressure_fn=lambda: 100.0,
        )
        server = AdServer(cached, slots=2, degradation=policy)
        query = Query.from_text("books")
        server.serve(query)  # populates the cache; ladder steps down
        cached.invalidate()
        failing.healthy = False
        result = server.serve(query)
        assert result.degraded_reason is DegradedReason.STALE_CACHE


class TestPartialNeverCached:
    def test_partial_results_bypass_the_cache(self, index):
        clock = ManualClock()
        cached = CachedIndex(index, capacity=16)
        query = Query.from_text("cheap used books")
        deadline = Deadline.after_ms(1.0, clock=clock)
        clock.advance(5.0)  # expired before the first probe
        partial = cached.query(query, deadline=deadline)
        assert partial == []
        assert deadline.partial
        # The empty partial was not cached: a fresh query sees full results.
        assert cached.query(query)
        assert cached.cache_stats.hits == 0


class TestSnapshotShape:
    def test_reason_keys_sorted_and_complete(self):
        stats = ServingStats()
        stats.record_reason(DegradedReason.TRUNCATED)
        stats.record_reason(DegradedReason.DEADLINE)
        stats.record_reason(DegradedReason.DEADLINE)
        stats.record_reason(DegradedReason.NONE)  # never recorded
        snapshot = stats.snapshot()
        reason_keys = [k for k in snapshot if k.startswith("degraded_reason.")]
        assert reason_keys == [
            "degraded_reason.deadline",
            "degraded_reason.truncated",
        ]
        assert snapshot["degraded_reason.deadline"] == 2
