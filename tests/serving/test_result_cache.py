"""Tests for the LRU result cache, including invalidation correctness."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType, naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.serving.result_cache import CachedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def cached():
    corpus = AdCorpus([ad("used books", 1), ad("books", 2)])
    return CachedIndex(WordSetIndex.from_corpus(corpus), capacity=8)


class TestCaching:
    def test_hit_on_repeat(self, cached):
        q = Query.from_text("cheap used books")
        first = cached.query(q)
        second = cached.query(q)
        assert [a.info.listing_id for a in first] == [
            a.info.listing_id for a in second
        ]
        assert cached.cache_stats.hits == 1
        assert cached.cache_stats.misses == 1

    def test_word_order_shares_entry(self, cached):
        cached.query(Query.from_text("used books"))
        cached.query(Query.from_text("books used"))
        assert cached.cache_stats.hits == 1

    def test_caller_cannot_corrupt_cache(self, cached):
        q = Query.from_text("used books")
        result = cached.query(q)
        result.clear()  # mutate the returned list
        again = cached.query(q)
        assert len(again) == 2

    def test_lru_eviction(self):
        corpus = AdCorpus([ad(f"w{i}", i) for i in range(10)])
        cached = CachedIndex(WordSetIndex.from_corpus(corpus), capacity=2)
        for i in range(3):
            cached.query(Query.from_text(f"w{i}"))
        cached.query(Query.from_text("w0"))  # evicted -> miss
        assert cached.cache_stats.misses == 4
        assert cached.cached_queries == 2

    def test_rejects_bad_capacity(self, cached):
        with pytest.raises(ValueError):
            CachedIndex(cached.index, capacity=0)


class TestInvalidation:
    def test_insert_invalidates(self, cached):
        q = Query.from_text("cheap used books")
        cached.query(q)
        cached.insert(ad("cheap books", 3))
        result = cached.query(q)
        assert 3 in {a.info.listing_id for a in result}
        assert cached.cache_stats.invalidations == 1

    def test_delete_invalidates(self, cached):
        q = Query.from_text("cheap used books")
        cached.query(q)
        assert cached.delete(ad("used books", 1))
        result = cached.query(q)
        assert 1 not in {a.info.listing_id for a in result}

    def test_failed_delete_keeps_cache(self, cached):
        q = Query.from_text("used books")
        cached.query(q)
        assert not cached.delete(ad("absent", 99))
        cached.query(q)
        assert cached.cache_stats.hits == 1


class TestDelegation:
    """CachedIndex is a true drop-in for the pluggable-index contract."""

    def test_query_with_match_type_is_cached(self, cached):
        q = Query.from_text("used books")
        first = cached.query(q, MatchType.EXACT)
        second = cached.query(q, MatchType.EXACT)
        assert [a.info.listing_id for a in first] == [1]
        assert [a.info.listing_id for a in second] == [1]
        assert cached.cache_stats.hits == 1

    def test_match_types_do_not_share_entries(self, cached):
        q = Query.from_text("cheap used books")
        broad = cached.query(q, MatchType.BROAD)
        exact = cached.query(q, MatchType.EXACT)
        assert len(broad) == 2 and exact == []
        assert cached.cache_stats.misses == 2

    def test_phrase_keyed_on_token_order(self, cached):
        # Broad match folds word order away; phrase match must not.
        a = cached.query(Query.from_text("used books"), MatchType.PHRASE)
        b = cached.query(Query.from_text("books used"), MatchType.PHRASE)
        # "used books" (1) is a phrase of the first ordering only; the
        # one-word phrase "books" (2) sits inside both.
        assert sorted(x.info.listing_id for x in a) == [1, 2]
        assert sorted(x.info.listing_id for x in b) == [2]
        assert cached.cache_stats.hits == 0

    def test_stats_forwards_to_index(self, cached):
        stats = cached.stats()
        assert stats.num_ads == 2
        assert stats.num_nodes == 2

    def test_len_delegates(self, cached):
        assert len(cached) == len(cached.index) == 2

    def test_insert_and_delete_pass_through(self, cached):
        cached.insert(ad("rare maps", 7))
        assert len(cached) == 3
        assert cached.delete(ad("rare maps", 7))
        assert len(cached) == 2

    def test_insert_forwards_locator(self, cached):
        cached.insert(ad("very cheap used books", 8), locator=frozenset({"used"}))
        assert cached.index.placement()[
            frozenset({"very", "cheap", "used", "books"})
        ] == frozenset({"used"})

    def test_unknown_attributes_fall_through(self, cached):
        assert cached.probe_count(Query.from_text("used books")) >= 1
        cached.check_invariants()
        with pytest.raises(AttributeError):
            cached.no_such_attribute

    def test_private_attributes_do_not_fall_through(self, cached):
        with pytest.raises(AttributeError):
            cached._not_a_real_attr

    def test_batch_pays_one_miss_per_wordset(self, cached):
        q1 = Query.from_text("used books")
        q2 = Query.from_text("books used")
        results = cached.query_broad_batch([q1, q2, q1])
        assert [len(r) for r in results] == [2, 2, 2]
        assert cached.cache_stats.misses == 1
        assert cached.cache_stats.hits == 2


class TestPowerLawHitRate:
    def test_small_cache_high_hit_rate_on_zipf_workload(self):
        """The design premise: power-law query frequencies make a small
        cache absorb most traffic."""
        generated = generate_corpus(CorpusConfig(num_ads=1_000, seed=3))
        workload = generate_workload(
            generated,
            QueryConfig(num_distinct=500, total_frequency=20_000, seed=1),
        )
        cached = CachedIndex(
            WordSetIndex.from_corpus(generated.corpus), capacity=100
        )
        for query in workload.sample_stream(3_000, seed=2):
            cached.query(query)
        # 100 slots over 500 distinct Zipf queries: well above 100/500.
        assert cached.cache_stats.hit_rate() > 0.5

    def test_results_always_match_oracle(self):
        generated = generate_corpus(CorpusConfig(num_ads=400, seed=5))
        corpus = generated.corpus
        cached = CachedIndex(WordSetIndex.from_corpus(corpus), capacity=16)
        workload = generate_workload(
            generated, QueryConfig(num_distinct=60, total_frequency=600, seed=2)
        )
        for query in workload.sample_stream(300, seed=3):
            got = sorted(a.info.listing_id for a in cached.query(query))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == want
