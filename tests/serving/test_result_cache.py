"""Tests for the LRU result cache, including invalidation correctness."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.serving.result_cache import CachedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def cached():
    corpus = AdCorpus([ad("used books", 1), ad("books", 2)])
    return CachedIndex(WordSetIndex.from_corpus(corpus), capacity=8)


class TestCaching:
    def test_hit_on_repeat(self, cached):
        q = Query.from_text("cheap used books")
        first = cached.query_broad(q)
        second = cached.query_broad(q)
        assert [a.info.listing_id for a in first] == [
            a.info.listing_id for a in second
        ]
        assert cached.stats.hits == 1
        assert cached.stats.misses == 1

    def test_word_order_shares_entry(self, cached):
        cached.query_broad(Query.from_text("used books"))
        cached.query_broad(Query.from_text("books used"))
        assert cached.stats.hits == 1

    def test_caller_cannot_corrupt_cache(self, cached):
        q = Query.from_text("used books")
        result = cached.query_broad(q)
        result.clear()  # mutate the returned list
        again = cached.query_broad(q)
        assert len(again) == 2

    def test_lru_eviction(self):
        corpus = AdCorpus([ad(f"w{i}", i) for i in range(10)])
        cached = CachedIndex(WordSetIndex.from_corpus(corpus), capacity=2)
        for i in range(3):
            cached.query_broad(Query.from_text(f"w{i}"))
        cached.query_broad(Query.from_text("w0"))  # evicted -> miss
        assert cached.stats.misses == 4
        assert cached.cached_queries == 2

    def test_rejects_bad_capacity(self, cached):
        with pytest.raises(ValueError):
            CachedIndex(cached.index, capacity=0)


class TestInvalidation:
    def test_insert_invalidates(self, cached):
        q = Query.from_text("cheap used books")
        cached.query_broad(q)
        cached.insert(ad("cheap books", 3))
        result = cached.query_broad(q)
        assert 3 in {a.info.listing_id for a in result}
        assert cached.stats.invalidations == 1

    def test_delete_invalidates(self, cached):
        q = Query.from_text("cheap used books")
        cached.query_broad(q)
        assert cached.delete(ad("used books", 1))
        result = cached.query_broad(q)
        assert 1 not in {a.info.listing_id for a in result}

    def test_failed_delete_keeps_cache(self, cached):
        q = Query.from_text("used books")
        cached.query_broad(q)
        assert not cached.delete(ad("absent", 99))
        cached.query_broad(q)
        assert cached.stats.hits == 1


class TestPowerLawHitRate:
    def test_small_cache_high_hit_rate_on_zipf_workload(self):
        """The design premise: power-law query frequencies make a small
        cache absorb most traffic."""
        generated = generate_corpus(CorpusConfig(num_ads=1_000, seed=3))
        workload = generate_workload(
            generated,
            QueryConfig(num_distinct=500, total_frequency=20_000, seed=1),
        )
        cached = CachedIndex(
            WordSetIndex.from_corpus(generated.corpus), capacity=100
        )
        for query in workload.sample_stream(3_000, seed=2):
            cached.query_broad(query)
        # 100 slots over 500 distinct Zipf queries: well above 100/500.
        assert cached.stats.hit_rate() > 0.5

    def test_results_always_match_oracle(self):
        generated = generate_corpus(CorpusConfig(num_ads=400, seed=5))
        corpus = generated.corpus
        cached = CachedIndex(WordSetIndex.from_corpus(corpus), capacity=16)
        workload = generate_workload(
            generated, QueryConfig(num_distinct=60, total_frequency=600, seed=2)
        )
        for query in workload.sample_stream(300, seed=3):
            got = sorted(a.info.listing_id for a in cached.query_broad(query))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == want
