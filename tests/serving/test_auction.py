"""Tests for the GSP auction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdInfo, Advertisement
from repro.serving.auction import run_gsp_auction


def ad(listing_id, bid, campaign=0):
    return Advertisement.from_text(
        f"phrase {listing_id}",
        AdInfo(listing_id=listing_id, campaign_id=campaign,
               bid_price_micros=bid),
    )


class TestRanking:
    def test_ranked_by_bid(self):
        outcome = run_gsp_auction([ad(1, 100), ad(2, 300), ad(3, 200)], slots=3)
        assert [a.info.listing_id for a in outcome.winners()] == [2, 3, 1]

    def test_slots_limit(self):
        outcome = run_gsp_auction([ad(i, 100 + i) for i in range(10)], slots=3)
        assert len(outcome.awards) == 3

    def test_quality_scores_rerank(self):
        quality = {1: 3.0, 2: 1.0}.__getitem__
        outcome = run_gsp_auction(
            [ad(1, 100), ad(2, 200)],
            slots=2,
            quality_fn=lambda a: quality(a.info.listing_id),
        )
        # ad 1: rank 300; ad 2: rank 200.
        assert [a.info.listing_id for a in outcome.winners()] == [1, 2]

    def test_tie_break_by_listing_id(self):
        outcome = run_gsp_auction([ad(9, 100), ad(3, 100)], slots=2)
        assert [a.info.listing_id for a in outcome.winners()] == [3, 9]

    def test_empty_candidates(self):
        outcome = run_gsp_auction([], slots=4)
        assert outcome.awards == ()


class TestPricing:
    def test_second_price(self):
        outcome = run_gsp_auction([ad(1, 300), ad(2, 100)], slots=2)
        first, second = outcome.awards
        assert first.price_micros == 101  # just above the next ad rank
        assert second.price_micros == 1  # reserve

    def test_price_never_exceeds_bid(self):
        outcome = run_gsp_auction([ad(1, 100), ad(2, 100)], slots=2)
        for award in outcome.awards:
            assert award.price_micros <= award.bid_micros

    def test_reserve_floor(self):
        outcome = run_gsp_auction([ad(1, 500)], slots=1, reserve_micros=50)
        assert outcome.awards[0].price_micros == 50

    def test_below_reserve_excluded(self):
        outcome = run_gsp_auction(
            [ad(1, 10), ad(2, 500)], slots=2, reserve_micros=50
        )
        assert [a.info.listing_id for a in outcome.winners()] == [2]

    def test_quality_adjusted_price(self):
        # winner quality 2.0, next ad rank 100 -> price = 100/2 + 1 = 51.
        outcome = run_gsp_auction(
            [ad(1, 100), ad(2, 100)],
            slots=2,
            quality_fn=lambda a: 2.0 if a.info.listing_id == 1 else 1.0,
        )
        assert outcome.awards[0].price_micros == 51

    def test_total_price(self):
        outcome = run_gsp_auction([ad(1, 300), ad(2, 100)], slots=2)
        assert outcome.total_price_micros == 102


class TestValidation:
    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            run_gsp_auction([], slots=0)

    def test_rejects_negative_reserve(self):
        with pytest.raises(ValueError):
            run_gsp_auction([], slots=1, reserve_micros=-1)

    def test_rejects_nonpositive_quality(self):
        with pytest.raises(ValueError):
            run_gsp_auction([ad(1, 100)], slots=1, quality_fn=lambda a: 0.0)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(1, 10_000)),
            min_size=1,
            max_size=20,
            unique_by=lambda t: t[0],
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=80)
    def test_gsp_invariants(self, bidders, slots):
        ads = [ad(lid, bid) for lid, bid in bidders]
        outcome = run_gsp_auction(ads, slots=slots)
        ranks = [award.ad_rank for award in outcome.awards]
        # Slate ordered by ad rank, prices within [reserve, bid], and no
        # winner pays more than their own bid (GSP individual rationality).
        assert ranks == sorted(ranks, reverse=True)
        for award in outcome.awards:
            assert 1 <= award.price_micros <= award.bid_micros
