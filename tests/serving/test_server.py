"""Tests for the end-to-end ad server pipeline."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.serving.server import AdServer, serve_trace


def ad(text, listing_id, bid=100, campaign=None, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            campaign_id=campaign if campaign is not None else listing_id,
            bid_price_micros=bid,
            exclusion_phrases=tuple(exclusions),
        ),
    )


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1, bid=300),
            ad("books", 2, bid=200),
            ad("cheap used books", 3, bid=500),
            ad("used books", 4, bid=100, exclusions=("free",)),
        ]
    )


@pytest.fixture()
def server(corpus):
    return AdServer(WordSetIndex.from_corpus(corpus), slots=2)


class TestServe:
    def test_returns_top_slots_by_bid(self, server):
        result = server.serve(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result.ads] == [3, 1]

    def test_exclusion_filter(self, server):
        result = server.serve(Query.from_text("free used books"))
        assert 4 not in {a.info.listing_id for a in result.ads}
        assert server.stats.filtered_exclusion == 1

    def test_no_candidates(self, server):
        result = server.serve(Query.from_text("red shoes"))
        assert result.ads == []

    def test_stats_accumulate(self, server):
        server.serve(Query.from_text("used books"))
        server.serve(Query.from_text("books"))
        assert server.stats.queries == 2
        assert server.stats.impressions >= 2
        assert server.stats.fill_rate() > 0

    def test_serve_trace(self, server):
        queries = [Query.from_text("used books")] * 5
        stats = serve_trace(server, queries)
        assert stats.queries == 5


class TestBudgets:
    def test_budget_filters_when_exhausted(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=2,
            campaign_budgets_micros={3: 600},
        )
        q = Query.from_text("cheap used books")
        first = server.serve(q)
        assert 3 in {a.info.listing_id for a in first.ads}
        server.record_click(first, slot=0)  # charges campaign 3
        # Budget now below the bid: campaign must stop serving.
        assert server.budget_remaining(3) < 500
        second = server.serve(q)
        assert 3 not in {a.info.listing_id for a in second.ads}
        assert server.stats.filtered_budget >= 1

    def test_click_revenue_recorded(self, server):
        result = server.serve(Query.from_text("cheap used books"))
        price = server.record_click(result, slot=0)
        assert price > 0
        assert server.stats.revenue_micros == price
        assert server.stats.clicks == 1

    def test_click_clipped_to_budget(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros={3: 50},
        )
        # Budget 50 < bid 500: the campaign cannot serve at all.
        result = server.serve(Query.from_text("cheap used books"))
        assert 3 not in {a.info.listing_id for a in result.ads}

    def test_exhausted_campaigns(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros={1: 0},
        )
        assert server.exhausted_campaigns() == [1]


class TestFrequencyCap:
    def test_cap_limits_repeat_impressions(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=2
        )
        q = Query.from_text("cheap used books")
        shown = [server.serve(q, user_id="u1").ads for _ in range(4)]
        # Listing 3 wins twice, then is capped; listing 1 takes over.
        assert [a[0].info.listing_id for a in shown] == [3, 3, 1, 1]
        assert server.stats.filtered_frequency_cap > 0

    def test_cap_is_per_user(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=1
        )
        q = Query.from_text("cheap used books")
        assert server.serve(q, user_id="a").ads[0].info.listing_id == 3
        assert server.serve(q, user_id="b").ads[0].info.listing_id == 3

    def test_no_user_id_no_cap(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=1
        )
        q = Query.from_text("cheap used books")
        assert server.serve(q).ads[0].info.listing_id == 3
        assert server.serve(q).ads[0].info.listing_id == 3


class TestPluggableRetrieval:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda c: WordSetIndex.from_corpus(c),
            lambda c: TrieWordSetIndex.from_corpus(c),
            lambda c: ShardedWordSetIndex.from_corpus(c, num_shards=3),
        ],
    )
    def test_same_slate_any_structure(self, corpus, factory):
        server = AdServer(factory(corpus), slots=2)
        result = server.serve(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result.ads] == [3, 1]

    def test_rejects_bad_slots(self, corpus):
        with pytest.raises(ValueError):
            AdServer(WordSetIndex.from_corpus(corpus), slots=0)
