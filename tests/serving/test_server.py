"""Tests for the end-to-end ad server pipeline."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.serving.server import AdServer, serve_trace


def ad(text, listing_id, bid=100, campaign=None, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            campaign_id=campaign if campaign is not None else listing_id,
            bid_price_micros=bid,
            exclusion_phrases=tuple(exclusions),
        ),
    )


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1, bid=300),
            ad("books", 2, bid=200),
            ad("cheap used books", 3, bid=500),
            ad("used books", 4, bid=100, exclusions=("free",)),
        ]
    )


@pytest.fixture()
def server(corpus):
    return AdServer(WordSetIndex.from_corpus(corpus), slots=2)


class TestServe:
    def test_returns_top_slots_by_bid(self, server):
        result = server.serve(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result.ads] == [3, 1]

    def test_exclusion_filter(self, server):
        result = server.serve(Query.from_text("free used books"))
        assert 4 not in {a.info.listing_id for a in result.ads}
        assert server.stats.filtered_exclusion == 1

    def test_no_candidates(self, server):
        result = server.serve(Query.from_text("red shoes"))
        assert result.ads == []

    def test_stats_accumulate(self, server):
        server.serve(Query.from_text("used books"))
        server.serve(Query.from_text("books"))
        assert server.stats.queries == 2
        assert server.stats.impressions >= 2
        assert server.stats.fill_rate() > 0

    def test_serve_trace(self, server):
        queries = [Query.from_text("used books")] * 5
        stats = serve_trace(server, queries)
        assert stats.queries == 5


class TestBudgets:
    def test_budget_filters_when_exhausted(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=2,
            campaign_budgets_micros={3: 600},
        )
        q = Query.from_text("cheap used books")
        first = server.serve(q)
        assert 3 in {a.info.listing_id for a in first.ads}
        server.record_click(first, slot=0)  # charges campaign 3
        # Budget now below the bid: campaign must stop serving.
        assert server.budget_remaining(3) < 500
        second = server.serve(q)
        assert 3 not in {a.info.listing_id for a in second.ads}
        assert server.stats.filtered_budget >= 1

    def test_click_revenue_recorded(self, server):
        result = server.serve(Query.from_text("cheap used books"))
        price = server.record_click(result, slot=0)
        assert price > 0
        assert server.stats.revenue_micros == price
        assert server.stats.clicks == 1

    def test_click_clipped_to_budget(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros={3: 50},
        )
        # Budget 50 < bid 500: the campaign cannot serve at all.
        result = server.serve(Query.from_text("cheap used books"))
        assert 3 not in {a.info.listing_id for a in result.ads}

    def test_exhausted_campaigns(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros={1: 0},
        )
        assert server.exhausted_campaigns() == [1]


class TestFrequencyCap:
    def test_cap_limits_repeat_impressions(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=2
        )
        q = Query.from_text("cheap used books")
        shown = [server.serve(q, user_id="u1").ads for _ in range(4)]
        # Listing 3 wins twice, then is capped; listing 1 takes over.
        assert [a[0].info.listing_id for a in shown] == [3, 3, 1, 1]
        assert server.stats.filtered_frequency_cap > 0

    def test_cap_is_per_user(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=1
        )
        q = Query.from_text("cheap used books")
        assert server.serve(q, user_id="a").ads[0].info.listing_id == 3
        assert server.serve(q, user_id="b").ads[0].info.listing_id == 3

    def test_no_user_id_no_cap(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=1
        )
        q = Query.from_text("cheap used books")
        assert server.serve(q).ads[0].info.listing_id == 3
        assert server.serve(q).ads[0].info.listing_id == 3


class TestPluggableRetrieval:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda c: WordSetIndex.from_corpus(c),
            lambda c: TrieWordSetIndex.from_corpus(c),
            lambda c: ShardedWordSetIndex.from_corpus(c, num_shards=3),
        ],
    )
    def test_same_slate_any_structure(self, corpus, factory):
        server = AdServer(factory(corpus), slots=2)
        result = server.serve(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result.ads] == [3, 1]

    def test_rejects_bad_slots(self, corpus):
        with pytest.raises(ValueError):
            AdServer(WordSetIndex.from_corpus(corpus), slots=0)


class TestServeBatch:
    QUERIES = (
        "cheap used books",
        "books",
        "used books cheap",  # same word-set as the first
        "red shoes",
    )

    def queries(self):
        return [Query.from_text(t) for t in self.QUERIES]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda c: WordSetIndex.from_corpus(c),
            lambda c: ShardedWordSetIndex.from_corpus(c, num_shards=3),
        ],
    )
    def test_batch_equals_sequential_serving(self, corpus, factory):
        batch_server = AdServer(factory(corpus), slots=2)
        seq_server = AdServer(factory(corpus), slots=2)
        batched = batch_server.serve_batch(self.queries())
        sequential = [seq_server.serve(q) for q in self.queries()]
        assert [
            [a.info.listing_id for a in r.ads] for r in batched
        ] == [[a.info.listing_id for a in r.ads] for r in sequential]
        assert batch_server.stats == seq_server.stats

    def test_batch_respects_budget_filter(self, corpus):
        # A campaign whose budget cannot cover its bid is filtered during
        # batched serving exactly as during sequential serving.
        budgets = {3: 100}  # listing 3 bids 500
        batch_server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros=dict(budgets),
        )
        seq_server = AdServer(
            WordSetIndex.from_corpus(corpus),
            slots=1,
            campaign_budgets_micros=dict(budgets),
        )
        queries = [Query.from_text("cheap used books")] * 3
        batched = batch_server.serve_batch(queries)
        sequential = [seq_server.serve(q) for q in queries]
        assert [
            [a.info.listing_id for a in r.ads] for r in batched
        ] == [[a.info.listing_id for a in r.ads] for r in sequential]
        assert all(r.ads[0].info.listing_id == 1 for r in batched)
        assert batch_server.stats == seq_server.stats
        assert batch_server.stats.filtered_budget == 3

    def test_batch_respects_frequency_cap(self, corpus):
        server = AdServer(
            WordSetIndex.from_corpus(corpus), slots=1, frequency_cap=2
        )
        queries = [Query.from_text("used books")] * 4
        results = server.serve_batch(queries, user_id="u1")
        shown = [r.ads[0].info.listing_id if r.ads else None for r in results]
        # Listing 1 wins until capped, then the next bidder takes over.
        assert shown[:2] == [1, 1]
        assert all(s != 1 for s in shown[2:])

    def test_engine_rebuilt_when_index_swapped(self, corpus):
        server = AdServer(WordSetIndex.from_corpus(corpus), slots=2)
        server.serve_batch([Query.from_text("books")])
        first_engine = server._batch_engine
        server.index = ShardedWordSetIndex.from_corpus(corpus, num_shards=2)
        result = server.serve_batch([Query.from_text("cheap used books")])
        assert server._batch_engine is not first_engine
        assert [a.info.listing_id for a in result[0].ads] == [3, 1]

    def test_empty_batch(self, corpus):
        server = AdServer(WordSetIndex.from_corpus(corpus))
        assert server.serve_batch([]) == []
        assert server.stats.queries == 0


class _BrokenIndex:
    """A retrieval index whose single-query path always raises."""

    def __init__(self, inner):
        self._inner = inner

    def query(self, query):
        raise RuntimeError("retrieval exploded")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestDegradeOnError:
    def test_retrieval_errors_propagate_by_default(self, corpus):
        server = AdServer(
            _BrokenIndex(WordSetIndex.from_corpus(corpus)), slots=2
        )
        with pytest.raises(RuntimeError, match="retrieval exploded"):
            server.serve(Query.from_text("used books"))

    def test_degraded_serve_returns_empty_slate(self, corpus):
        server = AdServer(
            _BrokenIndex(WordSetIndex.from_corpus(corpus)),
            slots=2,
            degrade_on_error=True,
        )
        result = server.serve(Query.from_text("used books"))
        assert result.ads == []
        assert server.stats.retrieval_errors == 1
        assert server.stats.queries == 1

    def test_degraded_errors_count_into_obs(self, corpus):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        server = AdServer(
            _BrokenIndex(WordSetIndex.from_corpus(corpus)),
            slots=2,
            degrade_on_error=True,
        )
        server.bind_obs(registry)
        server.serve(Query.from_text("used books"))
        server.serve(Query.from_text("books"))
        assert registry.value("serve.retrieval_errors") == 2

    def test_batch_falls_back_per_query_on_engine_failure(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        server = AdServer(index, slots=2, degrade_on_error=True)

        # Sabotage only the batch engine; per-query retrieval still works.
        class BrokenEngine:
            def __init__(self, index):
                self.index = index

            def query_broad_batch(self, queries):
                raise RuntimeError("batch engine down")

        server._batch_engine = BrokenEngine(index)
        queries = [
            Query.from_text("used books"),
            Query.from_text("cheap used books"),
        ]
        results = server.serve_batch(queries)
        sequential = AdServer(
            WordSetIndex.from_corpus(corpus), slots=2
        )
        expected = [
            sequential.serve(q).ads for q in queries
        ]
        assert [r.ads for r in results] == expected
        assert server.stats.retrieval_errors == 0
