"""Tests for probe planning: vocabulary prefilter and size-histogram bound."""

from math import comb

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.perf.prefilter import naive_plan, plan_probes


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestPlanProbes:
    def test_unindexed_words_dropped(self):
        plan = plan_probes(
            frozenset({"a", "b", "zz"}),
            vocabulary={"a", "b"},
            size_histogram={1: 2},
            max_words=None,
        )
        assert plan.candidates == ("a", "b")
        assert plan.pruned

    def test_sizes_restricted_to_histogram(self):
        plan = plan_probes(
            frozenset({"a", "b", "c", "d"}),
            vocabulary={"a", "b", "c", "d"},
            size_histogram={1: 3, 3: 1},
            max_words=None,
        )
        assert plan.sizes == (1, 3)
        assert plan.probe_count() == comb(4, 1) + comb(4, 3)

    def test_bound_caps_at_largest_locator(self):
        plan = plan_probes(
            frozenset(f"w{i}" for i in range(10)),
            vocabulary={f"w{i}" for i in range(10)},
            size_histogram={2: 5},
            max_words=None,
        )
        assert plan.sizes == (2,)
        assert plan.probe_count() == comb(10, 2)

    def test_max_words_still_applies(self):
        plan = plan_probes(
            frozenset({"a", "b", "c"}),
            vocabulary={"a", "b", "c"},
            size_histogram={1: 1, 2: 1, 3: 1},
            max_words=2,
        )
        assert plan.sizes == (1, 2)

    def test_empty_vocabulary_means_no_probes(self):
        plan = plan_probes(
            frozenset({"a", "b"}),
            vocabulary=set(),
            size_histogram={},
            max_words=None,
        )
        assert plan.candidates == ()
        assert plan.sizes == ()
        assert plan.probe_count() == 0

    def test_naive_plan_is_paper_formula(self):
        words = frozenset(f"w{i}" for i in range(8))
        plan = naive_plan(words, max_words=3)
        assert not plan.pruned
        assert plan.probe_count() == sum(comb(8, i) for i in range(1, 4))
        unbounded = naive_plan(words, max_words=None)
        assert unbounded.probe_count() == 2**8 - 1


class TestIndexProbePlan:
    def test_plan_tracks_live_locators(self):
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1), ad("maps", 2)])
        )
        assert index.indexed_vocabulary() == frozenset(
            {"used", "books", "maps"}
        )
        assert index.locator_size_histogram() == {1: 1, 2: 1}
        assert index.max_locator_size() == 2

    def test_probe_count_matches_tracker(self):
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1), ad("maps", 2), ad("books", 3)]),
            tracker=tracker,
        )
        for text in ("cheap used books", "maps of spain", "nothing here"):
            query = Query.from_text(text)
            before = tracker.stats.hash_probes
            index.query(query)
            measured = tracker.stats.hash_probes - before
            assert measured == index.probe_count(query)

    def test_delete_shrinks_the_plan(self):
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1), ad("maps", 2)])
        )
        query = Query.from_text("old maps")
        assert index.probe_count(query) == 1  # just {maps}
        assert index.delete(ad("maps", 2))
        assert index.probe_count(query) == 0
        assert "maps" not in index.indexed_vocabulary()
        index.check_invariants()

    def test_fast_path_flag_selects_plan(self):
        corpus = AdCorpus([ad("a b", 1)])
        fast = WordSetIndex.from_corpus(corpus)
        naive = WordSetIndex.from_corpus(corpus, fast_path=False)
        query_words = frozenset({"a", "b", "c"})
        assert fast.probe_plan(query_words).pruned
        assert not naive.probe_plan(query_words).pruned
        assert fast.probe_plan(query_words).probe_count() == 1
        assert naive.probe_plan(query_words).probe_count() == 7
