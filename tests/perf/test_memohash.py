"""Tests for memoized word hashing and incremental subset-hash enumeration."""

from itertools import combinations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.wordhash import wordhash
from repro.perf.memohash import (
    clear_contrib_cache,
    hashed_index_subsets,
    hashed_subsets,
    word_contrib,
)

WORDS = ["apple", "banana", "cherry", "date", "elderberry", "fig"]


class TestWordContrib:
    def test_contrib_equals_singleton_wordhash(self):
        for word in WORDS:
            assert word_contrib(word) == wordhash(frozenset({word}))

    def test_xor_of_contribs_equals_set_wordhash(self):
        acc = 0
        for word in WORDS:
            acc ^= word_contrib(word)
        assert acc == wordhash(frozenset(WORDS))

    def test_cache_round_trip(self):
        clear_contrib_cache()
        first = word_contrib("memo-test-word")
        assert word_contrib("memo-test-word") == first
        assert clear_contrib_cache() >= 1
        assert word_contrib("memo-test-word") == first


class TestHashedIndexSubsets:
    def test_order_matches_itertools_combinations(self):
        contribs = [word_contrib(w) for w in WORDS]
        sizes = [1, 2, 3]
        got = [
            tuple(indices)
            for _, indices in hashed_index_subsets(contribs, sizes)
        ]
        want = [
            combo
            for size in sizes
            for combo in combinations(range(len(WORDS)), size)
        ]
        assert got == want

    def test_keys_equal_wordhash_of_subset(self):
        contribs = [word_contrib(w) for w in WORDS]
        for key, indices in hashed_index_subsets(contribs, range(1, 7)):
            subset = frozenset(WORDS[i] for i in indices)
            assert key == wordhash(subset)

    def test_out_of_range_sizes_skipped(self):
        contribs = [word_contrib(w) for w in WORDS[:3]]
        assert list(hashed_index_subsets(contribs, [0, 4, 99])) == []

    def test_empty_contribs(self):
        assert list(hashed_index_subsets([], [1, 2])) == []

    def test_indices_are_live(self):
        # Documented sharp edge: the yielded list mutates in place, so a
        # caller keeping subset identities must copy.
        contribs = [word_contrib(w) for w in WORDS[:4]]
        raw = [idx for _, idx in hashed_index_subsets(contribs, [2])]
        copied = [
            tuple(idx) for _, idx in hashed_index_subsets(contribs, [2])
        ]
        assert len(set(copied)) == len(copied)
        assert all(r is raw[0] for r in raw)  # one live list throughout

    @given(
        st.lists(
            st.sampled_from([f"w{i}" for i in range(10)]),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        st.lists(st.integers(1, 8), min_size=1, max_size=4, unique=True),
    )
    def test_property_matches_naive_rehash(self, words, sizes):
        words = sorted(words)
        sizes = sorted(sizes)
        got = {
            (subset, key) for subset, key in hashed_subsets(words, sizes)
        }
        want = {
            (frozenset(combo), wordhash(frozenset(combo)))
            for size in sizes
            for combo in combinations(words, size)
        }
        assert got == want
