"""Steady-state allocation regression tests for the batch hot path.

Two guarantees pinned here:

* **interned decode** — with the decoded-node cache closed
  (``cache_bytes=0``) every probe re-decodes its node, but the segment's
  intern tables hand back the *same* ``Advertisement`` objects each
  time, so repeated queries retain no new per-node lists/strings;
* **allocation-flat batches** — replaying an identical batch through
  :class:`~repro.perf.batch.BatchQueryEngine` in steady state (intern
  tables, plan memos, and key caches warm) does not grow traced memory:
  the engine hands slate ownership to the first asker instead of
  re-copying for every position, and the kernel path reuses its
  precomputed key arrays.
"""

import gc
import tracemalloc

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.perf.batch import BatchQueryEngine
from repro.segment import (
    PackedSegmentIndex,
    SegmentBuilder,
    filter_tombstones,
)

ADS = [
    Advertisement(
        ("red", "shoes"), AdInfo(listing_id=1, bid_price_micros=500)
    ),
    Advertisement(
        ("red", "shoes"), AdInfo(listing_id=2, bid_price_micros=700)
    ),
    Advertisement(("running", "shoes"), AdInfo(listing_id=3)),
    Advertisement(("shoes",), AdInfo(listing_id=4)),
    Advertisement(("red", "wine"), AdInfo(listing_id=5)),
]

BATCH = [
    Query(tokens=("red", "shoes")),
    Query(tokens=("shoes", "red")),  # same word-set: dedup fan-out
    Query(tokens=("running", "shoes")),
    Query(tokens=("red", "wine", "shoes")),
]


@pytest.fixture()
def segment_path(tmp_path):
    path = tmp_path / "alloc.seg"
    SegmentBuilder(WordSetIndex.from_corpus(AdCorpus(ADS))).write(path)
    return path


def test_uncached_decode_returns_interned_ads(segment_path):
    with PackedSegmentIndex(segment_path, cache_bytes=0) as segment:
        query = Query(tokens=("red", "shoes"))
        first = segment.query(query)
        second = segment.query(query)
        assert first == second and first
        for ad_a, ad_b in zip(first, second):
            assert ad_a is ad_b  # same objects, not equal copies


def test_dedup_hands_ownership_without_copy():
    engine = BatchQueryEngine(WordSetIndex.from_corpus(AdCorpus(ADS)))
    results = engine.query_broad_batch(BATCH)
    # Positions 0 and 1 share one probe pass but must stay independent
    # lists (callers mutate their slates during ranking).
    assert results[0] == results[1]
    assert results[0] is not results[1]
    results[0].clear()
    assert results[1]


@pytest.mark.parametrize("cache_bytes", [0, 1 << 20])
def test_steady_state_batches_do_not_grow_memory(segment_path, cache_bytes):
    """Repeated identical batches must be allocation-flat once every
    cache (intern tables, plan memo, flat-key LRU, node cache) is warm —
    the tracemalloc regression gate for the zero-allocation decode."""
    with PackedSegmentIndex(segment_path, cache_bytes=cache_bytes) as segment:
        engine = BatchQueryEngine(segment)
        for _ in range(5):  # fill every cache before measuring
            engine.query_broad_batch(BATCH)
        gc.collect()
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(50):
                engine.query_broad_batch(BATCH)
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # Transient slates come and go; retained growth stays below a
        # small slack (interpreter bookkeeping), not O(batches).
        assert after - before < 16 * 1024, (
            f"steady-state batches retained {after - before} bytes"
        )


class TestFilterTombstonesAllocation:
    """``filter_tombstones`` defers every allocation until the first
    actual hit: the no-hit serving case returns the input list itself
    (identity, not an equal copy) and never clones the tombstone map."""

    def test_no_hit_returns_the_input_list_identity(self):
        results = list(ADS[:3])
        tombstones = {ADS[4]: 1}  # dead ad not in these results
        filtered = filter_tombstones(results, tombstones)
        assert filtered is results

    def test_empty_tombstones_is_identity(self):
        results = list(ADS)
        assert filter_tombstones(results, {}) is results

    def test_hit_rebuilds_without_mutating_inputs(self):
        results = list(ADS)
        tombstones = {ADS[0]: 1}
        filtered = filter_tombstones(results, tombstones)
        assert filtered is not results
        assert filtered == ADS[1:]
        # The caller's tombstone map is scratch-copied, not consumed.
        assert tombstones == {ADS[0]: 1}
        assert results == ADS

    def test_no_hit_filtering_is_allocation_flat(self):
        results = list(ADS)
        tombstones = {ADS[4]: 2}
        del results[4]  # ensure zero hits
        for _ in range(5):
            filter_tombstones(results, tombstones)
        gc.collect()
        tracemalloc.start()
        try:
            before, _ = tracemalloc.get_traced_memory()
            for _ in range(1000):
                filter_tombstones(results, tombstones)
            gc.collect()
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 4 * 1024, (
            f"no-hit tombstone filtering retained {after - before} bytes"
        )
