"""Property test: the probe-pruning fast path is result-identical.

The tentpole guarantee of the fast path is that it changes *only* the
probe count, never the answer.  Random corpora (with and without
re-mapping) and random query batches are checked three ways against each
other: pruned index, unpruned index, and the brute-force oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.perf.batch import BatchQueryEngine

ALPHABET = [f"w{i}" for i in range(10)]


def phrase_strategy(max_len=5):
    return st.lists(
        st.sampled_from(ALPHABET), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def corpus_queries_and_mapping(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=20))
    ads = [
        Advertisement.from_text(p, AdInfo(listing_id=i))
        for i, p in enumerate(phrases)
    ]
    queries = draw(
        st.lists(phrase_strategy(max_len=7), min_size=1, max_size=6)
    )
    # Optionally re-map some long word-sets to a locator subset, so the
    # property also covers pruning under non-identity placement.
    mapping = {}
    for ad in ads:
        if len(ad.words) >= 3 and draw(st.booleans()):
            keep = draw(
                st.integers(min_value=1, max_value=len(ad.words) - 1)
            )
            mapping[ad.words] = frozenset(sorted(ad.words)[:keep])
    return ads, [Query.from_text(q) for q in queries], mapping


@settings(max_examples=60, deadline=None)
@given(corpus_queries_and_mapping())
def test_fast_naive_and_oracle_agree(data):
    ads, queries, mapping = data
    corpus = AdCorpus(ads)
    fast = WordSetIndex.from_corpus(corpus, mapping=mapping or None)
    naive = WordSetIndex.from_corpus(
        corpus, mapping=mapping or None, fast_path=False
    )
    fast.check_invariants()
    engine = BatchQueryEngine(fast)
    batched = engine.query_broad_batch(queries)
    for query, from_batch in zip(queries, batched):
        want = sorted(
            a.info.listing_id for a in naive_broad_match(corpus, query)
        )
        got_fast = sorted(
            a.info.listing_id for a in fast.query(query)
        )
        got_naive = sorted(
            a.info.listing_id for a in naive.query(query)
        )
        got_batch = sorted(a.info.listing_id for a in from_batch)
        assert got_fast == got_naive == got_batch == want
        # Pruning can only remove probes, never add them.
        assert fast.probe_count(query) <= naive.probe_count(query)


@settings(max_examples=30, deadline=None)
@given(corpus_queries_and_mapping())
def test_equivalence_survives_deletions(data):
    ads, queries, mapping = data
    corpus = AdCorpus(ads)
    fast = WordSetIndex.from_corpus(corpus, mapping=mapping or None)
    survivors = [ad for i, ad in enumerate(ads) if i % 3 != 0]
    for i, ad in enumerate(ads):
        if i % 3 == 0:
            assert fast.delete(ad)
    fast.check_invariants()
    remaining = AdCorpus(survivors)
    for query in queries:
        want = sorted(
            a.info.listing_id for a in naive_broad_match(remaining, query)
        )
        got = sorted(a.info.listing_id for a in fast.query(query))
        assert got == want
