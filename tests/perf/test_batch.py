"""Tests for the deduplicating, shard-parallel batch query engine."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.perf.batch import BatchQueryEngine
from repro.serving.result_cache import CachedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def corpus():
    return AdCorpus(
        [ad(f"w{i % 7} common x{i}", i) for i in range(40)]
        + [ad("common", 100)]
    )


def ids(results):
    return [sorted(a.info.listing_id for a in batch) for batch in results]


class TestDedup:
    def test_same_wordset_computed_once(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        engine = BatchQueryEngine(index)
        batch = [
            Query.from_text("w1 common x1"),
            Query.from_text("common w1 x1"),  # same word-set, other order
            Query.from_text("common"),
        ]
        results = engine.query_broad_batch(batch)
        assert engine.stats.queries == 3
        assert engine.stats.distinct_wordsets == 2
        assert engine.stats.dedup_rate() == pytest.approx(1 / 3)
        assert ids(results)[0] == ids(results)[1]

    def test_results_are_independent_copies(self, corpus):
        engine = BatchQueryEngine(WordSetIndex.from_corpus(corpus))
        q = Query.from_text("common")
        first, second = engine.query_broad_batch([q, q])
        first.clear()
        assert second  # clearing one position must not affect the other

    def test_stats_accumulate_across_batches(self, corpus):
        engine = BatchQueryEngine(WordSetIndex.from_corpus(corpus))
        engine.query_broad_batch([Query.from_text("common")])
        engine.query_broad_batch([Query.from_text("common")])
        assert engine.stats.batches == 2
        assert engine.stats.queries == 2

    def test_empty_batch(self, corpus):
        engine = BatchQueryEngine(WordSetIndex.from_corpus(corpus))
        assert engine.query_broad_batch([]) == []


class TestOrderEquivalence:
    def queries(self):
        return [
            Query.from_text(t)
            for t in (
                "w1 common x1",
                "common",
                "w2 common x2",
                "no match here",
                "common w1 x1",
            )
        ]

    def test_matches_sequential_single_index(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        engine = BatchQueryEngine(index)
        batch = engine.query_broad_batch(self.queries())
        sequential = [index.query(q) for q in self.queries()]
        assert ids(batch) == ids(sequential)

    @pytest.mark.parametrize("max_workers", [None, 1, 2])
    def test_matches_sequential_sharded(self, corpus, max_workers):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=3)
        engine = BatchQueryEngine(sharded, max_workers=max_workers)
        batch = engine.query_broad_batch(self.queries())
        sequential = [sharded.query(q) for q in self.queries()]
        assert ids(batch) == ids(sequential)
        # Shard-order gather: exact result order matches scatter-gather.
        assert [
            [a.info.listing_id for a in b] for b in batch
        ] == [[a.info.listing_id for a in s] for s in sequential]

    def test_sharded_convenience_method(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=2)
        got = sharded.query_broad_batch(self.queries())
        want = [sharded.query(q) for q in self.queries()]
        assert ids(got) == ids(want)


class TestMatchTypes:
    def test_phrase_and_exact_dedup_on_tokens(self):
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1), ad("books used", 2)])
        )
        engine = BatchQueryEngine(index)
        batch = [
            Query.from_text("used books"),
            Query.from_text("books used"),  # same word-set, different tokens
        ]
        exact = engine.query_batch(batch, MatchType.EXACT)
        assert ids(exact) == [[1], [2]]
        # Token-keyed dedup: two distinct token sequences, no sharing.
        assert engine.stats.distinct_wordsets == 2

    def test_broad_through_cache_wrapper(self, corpus):
        cached = CachedIndex(WordSetIndex.from_corpus(corpus), capacity=8)
        engine = BatchQueryEngine(cached)
        q = Query.from_text("common")
        engine.query_broad_batch([q, q, q])
        # Engine dedups before the cache sees repeats: one miss total.
        assert cached.cache_stats.misses == 1


class TestValidation:
    def test_rejects_bad_worker_count(self, corpus):
        with pytest.raises(ValueError):
            BatchQueryEngine(WordSetIndex.from_corpus(corpus), max_workers=0)
