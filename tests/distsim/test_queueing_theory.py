"""Validate the discrete-event simulator against closed-form queueing
theory.

If the DES is correct, an M/M/1 system (Poisson arrivals, exponential
service, one server) must reproduce the textbook mean response time
``W = 1 / (mu - lambda)``; an M/D/1 system (deterministic service) must
show roughly *half* the M/M/1 queueing delay (Pollaczek-Khinchine with
zero service variance).  These laws pin the simulator's arrival process,
FCFS discipline, and busy-time accounting all at once.
"""

import random

import pytest

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.server import Server

QUERY = Query.from_text("q")


def simulate_queue(
    service_sampler, arrival_rate_per_ms, duration_ms=120_000.0, seed=1
):
    """Single-server queue fed by Poisson arrivals; returns latencies."""
    events = EventQueue()
    server = Server(events, cores=1)
    rng = random.Random(seed)
    latencies = []

    def arrival(time):
        start = events.now

        def done():
            latencies.append(events.now - start)

        server.submit(service_sampler(), done)
        next_time = time + rng.expovariate(arrival_rate_per_ms)
        if next_time < duration_ms:
            events.schedule_at(next_time, lambda: arrival(next_time))

    events.schedule_at(0.0, lambda: arrival(0.0))
    events.run(until=duration_ms * 2)
    # Discard warm-up.
    return latencies[len(latencies) // 10:], server


class TestMM1:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_response_matches_theory(self, rho):
        mu = 1.0  # service rate per ms (mean service 1 ms)
        lam = rho * mu
        rng = random.Random(42)
        latencies, _ = simulate_queue(
            lambda: rng.expovariate(mu), arrival_rate_per_ms=lam
        )
        expected = 1.0 / (mu - lam)  # M/M/1: W = 1/(mu - lambda)
        measured = sum(latencies) / len(latencies)
        assert measured == pytest.approx(expected, rel=0.15)

    def test_utilization_equals_rho(self):
        mu, lam = 1.0, 0.7
        rng = random.Random(3)
        _, server = simulate_queue(
            lambda: rng.expovariate(mu), arrival_rate_per_ms=lam
        )
        assert server.utilization(120_000.0) == pytest.approx(0.7, abs=0.04)


class TestMD1:
    def test_deterministic_service_halves_queueing_delay(self):
        """Pollaczek-Khinchine: Wq(M/D/1) = Wq(M/M/1) / 2."""
        mu, lam = 1.0, 0.7
        rng = random.Random(9)
        mm1, _ = simulate_queue(
            lambda: rng.expovariate(mu), arrival_rate_per_ms=lam, seed=5
        )
        md1, _ = simulate_queue(lambda: 1.0, arrival_rate_per_ms=lam, seed=5)
        mm1_wait = sum(mm1) / len(mm1) - 1.0  # queueing delay only
        md1_wait = sum(md1) / len(md1) - 1.0
        assert md1_wait == pytest.approx(mm1_wait / 2, rel=0.25)

    def test_low_load_no_queueing(self):
        latencies, _ = simulate_queue(
            lambda: 1.0, arrival_rate_per_ms=0.05, seed=2
        )
        mean = sum(latencies) / len(latencies)
        assert mean == pytest.approx(1.0, rel=0.05)
