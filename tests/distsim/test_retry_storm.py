"""Retry-storm regression: a dead shard must not be hammered forever.

Without a breaker, every query retries against the dead shard —
attempted legs grow with offered load (the metastable amplification
pattern).  With per-shard breakers the attempted legs stay bounded by
the breaker window, and the rest of the cluster keeps serving partial
results.  Also holds the :class:`ScatterConfig` constructor validation
(moved into ``__post_init__``) against regressions.
"""

import pytest

from repro.core.queries import Query
from repro.distsim.scatter import ScatterConfig, ScatterGatherCluster
from repro.faults import FaultInjector
from repro.obs import MetricsRegistry
from repro.resilience import BreakerConfig


QUERIES = [Query.from_text("cheap used books"), Query.from_text("maps")]

BREAKER = BreakerConfig(
    window=8,
    failure_threshold=0.5,
    min_samples=4,
    reset_after_ms=10_000.0,  # never half-opens inside the run
    half_open_probes=1,
)


def run_with_dead_shard(breaker=None, registry=None):
    """A 600ms run where shard0 drops every submission."""
    injector = FaultInjector()
    injector.arm_forever("server.shard0", times=1_000_000)
    config = ScatterConfig(
        num_shards=2,
        duration_ms=600.0,
        seed=11,
        shard_timeout_ms=20.0,
        max_retries=3,
        retry_backoff_ms=1.0,
        allow_partial=True,
        min_shards=1,
        breaker=breaker,
    )
    cluster = ScatterGatherCluster(
        lambda shard, query: 1.0, config, obs=registry, faults=injector
    )
    metrics = cluster.run(QUERIES, arrival_rate_qps=200.0)
    return cluster, metrics


class TestRetryStorm:
    def test_unguarded_run_amplifies_load_on_the_dead_shard(self):
        registry = MetricsRegistry()
        cluster, metrics = run_with_dead_shard(registry=registry)
        # Every query attempts 1 + max_retries legs against shard0.
        assert cluster.legs_attempted[0] >= 4 * metrics.completed
        assert cluster.legs_attempted[0] > cluster.legs_attempted[1]
        assert registry.value("scatter.retries") >= 3 * metrics.completed
        assert registry.value("resilience.breaker_opened") == 0

    def test_breaker_bounds_attempted_legs(self):
        registry = MetricsRegistry()
        cluster, metrics = run_with_dead_shard(
            breaker=BREAKER, registry=registry
        )
        # The breaker opens inside the first window of outcomes and the
        # cool-off outlives the run, so attempted legs stay bounded by
        # the window regardless of offered load.
        assert metrics.completed > BREAKER.window
        assert cluster.legs_attempted[0] <= BREAKER.window
        assert registry.value("resilience.breaker_opened") == 1
        assert registry.value("resilience.breaker_short_circuits") > 0
        # Short-circuited legs are never retried: retry volume collapses
        # versus the unguarded run.
        assert registry.value("scatter.retries") < 4 * BREAKER.window
        # The healthy shard keeps answering: queries complete partial.
        assert registry.value("partial_results") == metrics.completed
        assert registry.value("scatter.failed_queries") == 0

    def test_breaker_cuts_dead_shard_traffic_versus_unguarded(self):
        unguarded, _ = run_with_dead_shard()
        guarded, _ = run_with_dead_shard(breaker=BREAKER)
        assert guarded.legs_attempted[0] * 5 < unguarded.legs_attempted[0]
        # Healthy-shard service is unaffected by the guard.
        assert guarded.legs_attempted[1] > 0

    def test_half_open_probe_after_cooloff(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        injector.arm_forever("server.shard0", times=1_000_000)
        config = ScatterConfig(
            num_shards=2,
            duration_ms=600.0,
            seed=11,
            shard_timeout_ms=20.0,
            max_retries=0,
            allow_partial=True,
            min_shards=1,
            breaker=BreakerConfig(
                window=8,
                failure_threshold=0.5,
                min_samples=4,
                reset_after_ms=100.0,
                half_open_probes=1,
            ),
        )
        cluster = ScatterGatherCluster(
            lambda shard, query: 1.0, config, obs=registry, faults=injector
        )
        cluster.run(QUERIES, arrival_rate_qps=200.0)
        # The breaker re-probes the still-dead shard after each 100ms
        # cool-off and re-opens on the probe's failure.
        assert registry.value("resilience.breaker_half_open") >= 2
        assert registry.value("resilience.breaker_opened") >= 2
        # Still bounded far below the unguarded 4-legs-per-query storm.
        assert cluster.legs_attempted[0] <= 8 + 2 * 6


class TestScatterConfigValidation:
    """Satellite regression: constructor-time validation lives in
    ``ScatterConfig.__post_init__`` and rejects nonsense before a
    cluster ever runs."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"cores_per_server": 0},
            {"duration_ms": 0.0},
            {"network_base_ms": -1.0},
            {"network_jitter_ms": -0.1},
            {"shard_timeout_ms": 0.0},
            {"max_retries": -1},
            {"retry_backoff_ms": -1.0},
            {"min_shards": 0},
            {"num_shards": 4, "min_shards": 5},
            {"deadline_ms": 0.0},
            {"deadline_ms": -10.0},
            {"hedge_ms": 0.0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ScatterConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = ScatterConfig()
        assert config.num_shards >= 1
        assert config.deadline_ms is None
        assert config.breaker is None
        assert config.hedge_ms is None

    def test_resilience_fields_accepted(self):
        config = ScatterConfig(
            deadline_ms=50.0, hedge_ms=15.0, breaker=BreakerConfig()
        )
        assert config.deadline_ms == 50.0
        assert config.hedge_ms == 15.0
