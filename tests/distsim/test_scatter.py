"""Tests for the scatter-gather sharded cluster simulation."""

import pytest

from repro.core.queries import Query
from repro.distsim.scatter import (
    ScatterConfig,
    ScatterGatherCluster,
    uniform_shard_service,
)

QUERIES = [Query.from_text(f"q{i}") for i in range(4)]


def make_cluster(num_shards, total_ms=2.0, **kwargs):
    config = ScatterConfig(
        num_shards=num_shards, duration_ms=2_000.0, seed=3, **kwargs
    )
    return ScatterGatherCluster(
        uniform_shard_service(lambda q: total_ms, num_shards), config
    )


class TestScatterGather:
    def test_basic_run(self):
        metrics = make_cluster(4).run(QUERIES, arrival_rate_qps=100)
        assert metrics.completed > 50
        assert metrics.mean_latency_ms() > 0

    def test_sharding_divides_cpu_work(self):
        one = make_cluster(1).run(QUERIES, 200)
        four = make_cluster(4).run(QUERIES, 200)
        # Four servers each do 1/4 of the work: per-server utilization drops.
        assert four.cpu_utilization < one.cpu_utilization

    def test_sharding_cuts_latency_for_heavy_queries(self):
        one = make_cluster(1, total_ms=8.0).run(QUERIES, 50)
        four = make_cluster(4, total_ms=8.0).run(QUERIES, 50)
        assert four.mean_latency_ms() < one.mean_latency_ms()

    def test_straggler_effect_with_jitter(self):
        """Wide fan-outs pay the max of N network legs: with cheap
        service, more shards can *hurt* latency."""
        narrow = make_cluster(
            1, total_ms=0.1, network_jitter_ms=2.0
        ).run(QUERIES, 50)
        wide = make_cluster(
            16, total_ms=0.1, network_jitter_ms=2.0
        ).run(QUERIES, 50)
        assert wide.mean_latency_ms() > narrow.mean_latency_ms()

    def test_throughput_scales_with_shards(self):
        # At a rate that saturates 1 shard, 4 shards keep up.
        one = make_cluster(1, total_ms=4.0).run(QUERIES, 1_500)
        four = make_cluster(4, total_ms=4.0).run(QUERIES, 1_500)
        assert four.achieved_rps > one.achieved_rps

    def test_deterministic(self):
        a = make_cluster(3).run(QUERIES, 100)
        b = make_cluster(3).run(QUERIES, 100)
        assert a.latencies_ms == b.latencies_ms

    def test_validation(self):
        cluster = make_cluster(2)
        with pytest.raises(ValueError):
            cluster.run(QUERIES, 0)
        with pytest.raises(ValueError):
            cluster.run([], 10)
        with pytest.raises(ValueError):
            ScatterGatherCluster(
                uniform_shard_service(lambda q: 1.0, 1),
                ScatterConfig(num_shards=0),
            )

    def test_uniform_service_floor(self):
        service = uniform_shard_service(lambda q: 0.0, 8)
        assert service(0, QUERIES[0]) == 0.001
