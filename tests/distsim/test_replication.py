"""Tests for replicated shard groups: routing, load balancing, failures."""

import pytest

from repro.core.queries import Query
from repro.distsim.replication import ReplicatedCluster, ReplicationConfig

QUERIES = [Query.from_text(f"q{i}") for i in range(4)]


def make_cluster(
    shards=2, replicas=2, service_ms=1.0, failed=None, routing="least_loaded",
    seed=3,
):
    config = ReplicationConfig(
        num_shards=shards,
        replicas_per_shard=replicas,
        duration_ms=2_000.0,
        routing=routing,
        seed=seed,
    )
    return ReplicatedCluster(
        lambda i, q: service_ms, config, failed_replicas=failed
    )


class TestRouting:
    def test_basic_run(self):
        result = make_cluster().run(QUERIES, arrival_rate_qps=100)
        assert result.metrics.completed > 50
        assert result.failed_queries == 0
        assert result.availability == 1.0

    def test_replicas_double_capacity(self):
        # One replica saturates around cores/service = 4000 qps; two keep up.
        single = make_cluster(shards=1, replicas=1, service_ms=1.0)
        double = make_cluster(shards=1, replicas=2, service_ms=1.0)
        rate = 6_000
        assert (
            double.run(QUERIES, rate).metrics.achieved_rps
            > single.run(QUERIES, rate).metrics.achieved_rps
        )

    def test_least_loaded_beats_random_under_contention(self):
        # JSQ's advantage appears near saturation (capacity here is
        # 4 replicas x 4 cores / 2 ms = 8000 qps; offer 95% of it).
        rate = 7_600
        random_routing = make_cluster(
            shards=1, replicas=4, service_ms=2.0, routing="random"
        ).run(QUERIES, rate)
        least_loaded = make_cluster(
            shards=1, replicas=4, service_ms=2.0, routing="least_loaded"
        ).run(QUERIES, rate)
        assert (
            least_loaded.metrics.mean_latency_ms()
            < random_routing.metrics.mean_latency_ms()
        )

    def test_deterministic(self):
        a = make_cluster().run(QUERIES, 200)
        b = make_cluster().run(QUERIES, 200)
        assert a.metrics.latencies_ms == b.metrics.latencies_ms


class TestFailures:
    def test_single_replica_failure_is_absorbed(self):
        result = make_cluster(failed={(0, 0)}).run(QUERIES, 100)
        assert result.failed_queries == 0
        assert result.metrics.completed > 50

    def test_whole_shard_down_fails_queries(self):
        result = make_cluster(failed={(0, 0), (0, 1)}).run(QUERIES, 100)
        assert result.failed_queries > 0
        assert result.metrics.completed == 0
        assert result.availability == 0.0

    def test_failure_shifts_load_to_survivor(self):
        healthy = make_cluster(shards=1, replicas=2, service_ms=1.0)
        degraded = make_cluster(
            shards=1, replicas=2, service_ms=1.0, failed={(0, 1)}
        )
        rate = 2_000
        assert (
            degraded.run(QUERIES, rate).metrics.cpu_utilization
            > healthy.run(QUERIES, rate).metrics.cpu_utilization
        )


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            make_cluster(shards=0)
        with pytest.raises(ValueError):
            make_cluster(replicas=0)
        with pytest.raises(ValueError):
            make_cluster(routing="psychic")

    def test_rejects_bad_run_args(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.run(QUERIES, 0)
        with pytest.raises(ValueError):
            cluster.run([], 10)
