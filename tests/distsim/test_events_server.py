"""Tests for the DES core and the FCFS server."""

import pytest

from repro.distsim.events import EventQueue
from repro.distsim.server import Server


class TestEventQueue:
    def test_runs_in_time_order(self):
        events = EventQueue()
        log = []
        events.schedule(5.0, lambda: log.append("b"))
        events.schedule(1.0, lambda: log.append("a"))
        events.run()
        assert log == ["a", "b"]
        assert events.now == 5.0

    def test_ties_broken_by_insertion(self):
        events = EventQueue()
        log = []
        events.schedule(1.0, lambda: log.append(1))
        events.schedule(1.0, lambda: log.append(2))
        events.run()
        assert log == [1, 2]

    def test_until_stops_early(self):
        events = EventQueue()
        log = []
        events.schedule(1.0, lambda: log.append("early"))
        events.schedule(10.0, lambda: log.append("late"))
        events.run(until=5.0)
        assert log == ["early"]
        assert events.now == 5.0
        assert len(events) == 1

    def test_actions_can_schedule(self):
        events = EventQueue()
        log = []

        def chain():
            log.append(events.now)
            if events.now < 3:
                events.schedule(1.0, chain)

        events.schedule(1.0, chain)
        events.run()
        assert log == [1.0, 2.0, 3.0]

    def test_rejects_past(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            events.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            events.schedule_at(-0.5, lambda: None)


class TestServer:
    def test_single_job(self):
        events = EventQueue()
        server = Server(events, cores=1)
        done = []
        server.submit(5.0, lambda: done.append(events.now))
        events.run()
        assert done == [5.0]
        assert server.jobs_done == 1

    def test_fcfs_queueing_single_core(self):
        events = EventQueue()
        server = Server(events, cores=1)
        done = []
        server.submit(5.0, lambda: done.append(("a", events.now)))
        server.submit(5.0, lambda: done.append(("b", events.now)))
        events.run()
        assert done == [("a", 5.0), ("b", 10.0)]

    def test_parallel_cores(self):
        events = EventQueue()
        server = Server(events, cores=2)
        done = []
        server.submit(5.0, lambda: done.append(events.now))
        server.submit(5.0, lambda: done.append(events.now))
        events.run()
        assert done == [5.0, 5.0]

    def test_utilization_full(self):
        events = EventQueue()
        server = Server(events, cores=1)
        server.submit(10.0, lambda: None)
        events.run()
        assert server.utilization(10.0) == pytest.approx(1.0)

    def test_utilization_half(self):
        events = EventQueue()
        server = Server(events, cores=2)
        server.submit(10.0, lambda: None)
        events.run()
        assert server.utilization(10.0) == pytest.approx(0.5)

    def test_queue_length(self):
        events = EventQueue()
        server = Server(events, cores=1)
        for _ in range(3):
            server.submit(1.0, lambda: None)
        assert server.queue_length == 2

    def test_rejects_bad_args(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            Server(events, cores=0)
        server = Server(events)
        with pytest.raises(ValueError):
            server.submit(-1.0, lambda: None)
