"""Tests for the two-tier cluster simulation and its metrics."""

import pytest

from repro.core.queries import Query
from repro.distsim.cluster import (
    ClusterConfig,
    TwoTierCluster,
    find_saturation_rate,
)
from repro.distsim.metrics import RunMetrics, smooth_histogram
from repro.distsim.network import NetworkModel


def make_cluster(index_ms=1.0, data_ms=0.5, **config_kwargs):
    config = ClusterConfig(duration_ms=2_000.0, seed=4, **config_kwargs)
    return TwoTierCluster(
        index_service_ms=lambda q: index_ms,
        data_service_ms=lambda q: data_ms,
        config=config,
    )


QUERIES = [Query.from_text(f"q{i}") for i in range(5)]


class TestNetworkModel:
    def test_nonnegative_delay(self):
        net = NetworkModel(base_ms=0.5, jitter_ms=0.2, seed=1)
        assert all(net.delay_ms() >= 0.5 for _ in range(100))

    def test_zero_jitter_deterministic(self):
        net = NetworkModel(base_ms=0.7, jitter_ms=0.0)
        assert net.delay_ms() == 0.7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkModel(base_ms=-1)


class TestClusterRun:
    def test_low_load_latency_near_service_plus_network(self):
        cluster = make_cluster(index_ms=1.0, data_ms=0.5)
        metrics = cluster.run(QUERIES, arrival_rate_qps=20)
        assert metrics.completed > 10
        # 3 network hops (~0.8ms each) + 1.5ms service ≈ 4ms; no queueing.
        assert 2.0 < metrics.mean_latency_ms() < 10.0

    def test_throughput_tracks_offered_load_when_underloaded(self):
        cluster = make_cluster(index_ms=0.5, data_ms=0.2)
        metrics = cluster.run(QUERIES, arrival_rate_qps=100)
        assert metrics.achieved_rps == pytest.approx(100, rel=0.2)

    def test_overload_saturates_throughput(self):
        # 4 cores x 1ms service => capacity ~4000 qps; offer 40000.
        cluster = make_cluster(index_ms=1.0, data_ms=0.1)
        metrics = cluster.run(QUERIES, arrival_rate_qps=40_000)
        assert metrics.achieved_rps < 10_000
        assert metrics.cpu_utilization > 0.9

    def test_faster_structure_lower_utilization_same_load(self):
        """The paper's CPU story: at the same arrival rate, the cheaper
        per-query structure shows much lower CPU utilization."""
        slow = make_cluster(index_ms=1.5).run(QUERIES, 2_000)
        fast = make_cluster(index_ms=0.4).run(QUERIES, 2_000)
        assert fast.cpu_utilization < slow.cpu_utilization

    def test_deterministic(self):
        a = make_cluster().run(QUERIES, 500)
        b = make_cluster().run(QUERIES, 500)
        assert a.latencies_ms == b.latencies_ms

    def test_rejects_bad_input(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.run(QUERIES, 0)
        with pytest.raises(ValueError):
            cluster.run([], 10)


class TestSaturation:
    def test_finds_higher_rate_for_faster_structure(self):
        slow = make_cluster(index_ms=2.0, data_ms=0.2)
        fast = make_cluster(index_ms=0.5, data_ms=0.2)
        slow_rate, _ = find_saturation_rate(slow, QUERIES, start_qps=200)
        fast_rate, _ = find_saturation_rate(fast, QUERIES, start_qps=200)
        assert fast_rate > slow_rate

    def test_returns_metrics_at_rate(self):
        cluster = make_cluster()
        rate, metrics = find_saturation_rate(cluster, QUERIES, start_qps=100)
        assert metrics.offered_rps == rate


class TestMetrics:
    def make_metrics(self, latencies):
        return RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=1000.0,
            cpu_utilization=0.5,
            offered_rps=10,
            completed_in_window=len(latencies),
        )

    def test_histogram_buckets(self):
        metrics = self.make_metrics([1, 2, 6, 7, 12])
        histogram = metrics.latency_histogram(bucket_ms=5.0)
        assert histogram[0.0] == pytest.approx(0.4)
        assert histogram[5.0] == pytest.approx(0.4)
        assert histogram[10.0] == pytest.approx(0.2)

    def test_histogram_fractions_sum_to_one(self):
        metrics = self.make_metrics([3, 8, 13, 21, 44])
        assert sum(metrics.latency_histogram().values()) == pytest.approx(1.0)

    def test_fraction_within(self):
        metrics = self.make_metrics([5, 10, 15, 20])
        assert metrics.fraction_within(10) == pytest.approx(0.5)

    def test_percentile(self):
        metrics = self.make_metrics(list(range(1, 101)))
        assert metrics.percentile_ms(50) == pytest.approx(51, abs=1)
        with pytest.raises(ValueError):
            metrics.percentile_ms(0)

    def test_achieved_rps(self):
        metrics = self.make_metrics([1.0] * 50)
        assert metrics.achieved_rps == pytest.approx(50.0)

    def test_empty_metrics(self):
        metrics = self.make_metrics([])
        assert metrics.mean_latency_ms() == 0.0
        assert metrics.fraction_within(10) == 0.0
        assert metrics.latency_histogram() == {}

    def test_smooth_histogram_preserves_buckets(self):
        histogram = {0.0: 0.5, 5.0: 0.1, 10.0: 0.4}
        smoothed = smooth_histogram(histogram, window=3)
        assert set(smoothed) == set(histogram)
        assert smoothed[5.0] == pytest.approx((0.5 + 0.1 + 0.4) / 3)

    def test_smooth_histogram_empty(self):
        assert smooth_histogram({}) == {}
