"""Fault tolerance in the scatter-gather and replicated clusters:
retry-with-backoff, per-shard timeouts, and graceful partial results."""

import pytest

from repro.core.queries import Query
from repro.distsim.replication import ReplicatedCluster, ReplicationConfig
from repro.distsim.scatter import ScatterConfig, ScatterGatherCluster
from repro.faults import FaultInjector
from repro.obs import MetricsRegistry


QUERIES = [Query.from_text("cheap used books"), Query.from_text("maps")]


def flat_service(_shard, _query):
    return 1.0


def run_cluster(config, injector=None, registry=None, qps=100.0):
    cluster = ScatterGatherCluster(
        flat_service, config, obs=registry, faults=injector
    )
    return cluster.run(QUERIES, arrival_rate_qps=qps)


class TestScatterRetries:
    def test_transient_failure_recovered_by_retry(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        # First two submissions to shard0 are dropped; retries succeed.
        injector.arm_forever("server.shard0", times=2)
        config = ScatterConfig(
            num_shards=2, duration_ms=500.0, max_retries=3,
            retry_backoff_ms=0.5,
        )
        metrics = run_cluster(config, injector, registry)
        assert registry.value("scatter.retries") == 2
        assert registry.value("scatter.shard_failures") == 0
        assert registry.value("scatter.failed_queries") == 0
        assert registry.value("partial_results") == 0
        assert metrics.completed > 0

    def test_exhausted_retries_fail_the_query_without_partials(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        # Shard0 drops every submission for the whole run.
        injector.arm_forever("server.shard0", times=10_000)
        config = ScatterConfig(
            num_shards=2, duration_ms=300.0, max_retries=1,
        )
        metrics = run_cluster(config, injector, registry)
        assert metrics.completed == 0
        assert registry.value("scatter.failed_queries") > 0
        assert registry.value("scatter.retries") > 0
        assert registry.value("partial_results") == 0

    def test_partial_results_degrade_gracefully(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        injector.arm_forever("server.shard0", times=10_000)
        config = ScatterConfig(
            num_shards=3, duration_ms=300.0, allow_partial=True,
        )
        metrics = run_cluster(config, injector, registry)
        # Every query loses shard0 but completes on the other two.
        assert metrics.completed > 0
        assert registry.value("partial_results") >= metrics.completed
        assert registry.value("scatter.failed_queries") == 0

    def test_min_shards_bounds_degradation(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        injector.arm_forever("server.shard0", times=10_000)
        injector.arm_forever("server.shard1", times=10_000)
        config = ScatterConfig(
            num_shards=3, duration_ms=300.0, allow_partial=True,
            min_shards=2,
        )
        metrics = run_cluster(config, injector, registry)
        # Only one shard answers — below min_shards, so queries fail.
        assert metrics.completed == 0
        assert registry.value("scatter.failed_queries") > 0


class TestScatterTimeouts:
    def test_slow_shard_times_out_into_partial_result(self):
        registry = MetricsRegistry()

        def skewed(shard, _query):
            return 10_000.0 if shard == 0 else 0.5

        config = ScatterConfig(
            num_shards=2, duration_ms=300.0, shard_timeout_ms=20.0,
            allow_partial=True,
        )
        cluster = ScatterGatherCluster(skewed, config, obs=registry)
        metrics = cluster.run(QUERIES, arrival_rate_qps=20.0)
        assert metrics.completed > 0
        assert registry.value("scatter.shard_timeouts") > 0
        assert registry.value("partial_results") >= metrics.completed
        # The timeout also bounds latency: nothing waits for the
        # 10-second shard.
        assert max(metrics.latencies_ms) < 100.0

    def test_no_timeout_by_default(self):
        config = ScatterConfig(num_shards=2, duration_ms=300.0)
        metrics = run_cluster(config)
        assert metrics.completed > 0


class TestScatterConfigValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherCluster(
                flat_service, ScatterConfig(max_retries=-1)
            )

    def test_min_shards_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ScatterGatherCluster(
                flat_service,
                ScatterConfig(num_shards=2, min_shards=3),
            )

    def test_fault_free_run_matches_baseline(self):
        """The fault machinery must not change the base simulation: a
        run with default config equals the pre-harness seed behaviour
        (same seeds, same RNG draw order)."""
        config = ScatterConfig(num_shards=2, duration_ms=500.0)
        baseline = run_cluster(config)
        with_harness = run_cluster(
            config, FaultInjector(), MetricsRegistry()
        )
        assert baseline.latencies_ms == with_harness.latencies_ms


class TestReplicationFaults:
    def test_boot_fault_downs_replica_dynamically(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        # Down every replica of shard 0 at bring-up: total outage.
        injector.arm_forever("replica.s0r0.boot")
        injector.arm_forever("replica.s0r1.boot")
        cluster = ReplicatedCluster(
            flat_service,
            ReplicationConfig(
                num_shards=2, replicas_per_shard=2, duration_ms=300.0
            ),
            obs=registry,
            faults=injector,
        )
        result = cluster.run(QUERIES, arrival_rate_qps=50.0)
        assert result.metrics.completed == 0
        assert result.availability == 0.0
        assert registry.value("replication.failed_queries") == (
            result.failed_queries
        )
        assert registry.value("replication.queries") > 0

    def test_inflight_drop_fails_query_once(self):
        registry = MetricsRegistry()
        injector = FaultInjector()
        # One replica drops its first two jobs mid-flight.
        injector.arm_forever("server.s0r0", times=2)
        cluster = ReplicatedCluster(
            flat_service,
            ReplicationConfig(
                num_shards=2, replicas_per_shard=1, duration_ms=300.0
            ),
            obs=registry,
            faults=injector,
        )
        result = cluster.run(QUERIES, arrival_rate_qps=50.0)
        assert result.failed_queries == 2
        assert result.metrics.completed > 0
        assert 0.0 < result.availability < 1.0
