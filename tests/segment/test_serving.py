"""The packed serving path plugged into the serving and distsim layers."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.segment import SegmentBuilder, SegmentedIndex, ShardedSegmentedIndex
from repro.serving.server import AdServer


def ad(text, listing_id=0, bid=0, campaign_id=0):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            bid_price_micros=bid,
            campaign_id=campaign_id,
        ),
    )


ADS = [
    ad("cheap used books", 1, bid=500, campaign_id=1),
    ad("used books", 2, bid=300, campaign_id=1),
    ad("books", 3, bid=200, campaign_id=2),
    ad("rare maps", 4, bid=900, campaign_id=2),
]


@pytest.fixture()
def segmented(tmp_path):
    path = tmp_path / "serve.seg"
    SegmentBuilder(WordSetIndex.from_corpus(AdCorpus(ADS))).write(path)
    index = SegmentedIndex(path)
    yield index
    index.close()


class TestAdServer:
    def test_serve_runs_the_full_pipeline_off_a_segment(self, segmented):
        server = AdServer(segmented, slots=2, reserve_micros=1)
        result = server.serve(Query.from_text("cheap used books today"))
        shown = [a.info.listing_id for a in result.ads]
        # GSP ranking by bid: ad 1 (500) then ad 2 (300).
        assert shown == [1, 2]

    def test_serve_sees_overlay_mutations_immediately(self, segmented):
        server = AdServer(segmented, slots=3, reserve_micros=1)
        query = Query.from_text("cheap used books today")
        segmented.insert(ad("books used", 10, bid=800, campaign_id=3))
        segmented.delete(ADS[0])
        shown = [
            a.info.listing_id for a in server.serve(query).ads
        ]
        assert shown == [10, 2, 3]

    def test_serve_survives_compaction_between_requests(
        self, segmented, tmp_path
    ):
        server = AdServer(segmented, slots=2, reserve_micros=1)
        query = Query.from_text("cheap used books today")
        before = [
            a.info.listing_id for a in server.serve(query).ads
        ]
        segmented.compact(path=tmp_path / "gen1.seg")
        after = [
            a.info.listing_id for a in server.serve(query).ads
        ]
        assert before == after

    def test_serve_batch_fans_out_over_segment_shards(self, tmp_path):
        generated = generate_corpus(CorpusConfig(num_ads=400, seed=6))
        oracle = WordSetIndex.from_corpus(generated.corpus)
        with ShardedSegmentedIndex.pack_corpus(
            generated.corpus, tmp_path, num_shards=3
        ) as sharded:
            server = AdServer(sharded, slots=4, reserve_micros=1)
            queries = [
                Query(a.phrase + ("extra",))
                for i, a in enumerate(generated.corpus)
                if i % 41 == 0
            ]
            pages = server.serve_batch(queries)
            assert len(pages) == len(queries)
            oracle_server = AdServer(oracle, slots=4, reserve_micros=1)
            for query, page in zip(queries, pages):
                want = [
                    a.info.listing_id
                    for a in oracle_server.serve(query).ads
                ]
                assert [a.info.listing_id for a in page.ads] == want


class TestDistsimAdapter:
    def test_measured_shard_service_times_live_shards(self, tmp_path):
        from repro.distsim import measured_shard_service

        with ShardedSegmentedIndex.pack_corpus(
            AdCorpus(ADS), tmp_path, num_shards=2
        ) as sharded:
            service = measured_shard_service(sharded.shards)
            query = Query.from_text("cheap used books")
            for shard in range(2):
                ms = service(shard, query)
                assert ms >= 0.001

    def test_scatter_gather_runs_on_measured_services(self, tmp_path):
        from repro.distsim import (
            ScatterConfig,
            ScatterGatherCluster,
            measured_shard_service,
        )

        generated = generate_corpus(CorpusConfig(num_ads=200, seed=8))
        with ShardedSegmentedIndex.pack_corpus(
            generated.corpus, tmp_path, num_shards=4
        ) as sharded:
            cluster = ScatterGatherCluster(
                measured_shard_service(sharded.shards),
                ScatterConfig(num_shards=4),
            )
            queries = [
                Query(a.phrase) for a in list(generated.corpus)[:30]
            ]
            metrics = cluster.run(queries, arrival_rate_qps=200.0)
            assert len(metrics.latencies_ms) > 0
            assert all(lat > 0 for lat in metrics.latencies_ms)
