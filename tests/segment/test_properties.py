"""Property test: the segmented serving path is indistinguishable from a
plain ``WordSetIndex`` under any interleaving of inserts, deletes, and
compactions — including a compaction that crashes mid-flight."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.faults import FaultInjector, InjectedCrash
from repro.segment import SegmentBuilder, SegmentedIndex
from repro.segment.format import (
    CRASH_COMPACT_START,
    CRASH_COMPACT_WRITTEN,
    CRASH_TMP_WRITTEN,
)

WORDS = [c1 + c2 for c1 in string.ascii_lowercase[:6] for c2 in "xy"]


def phrase_strategy():
    return st.lists(
        st.sampled_from(WORDS), min_size=1, max_size=4, unique=True
    ).map(tuple)


def ad_strategy():
    return st.builds(
        lambda phrase, listing: Advertisement(
            phrase, AdInfo(listing_id=listing)
        ),
        phrase_strategy(),
        st.integers(min_value=0, max_value=30),
    )


# An op is ("insert", ad) | ("insert_locator", ad) | ("delete", ad) |
# ("compact", None) | ("crash_compact", point).  ``insert_locator``
# pins an explicit placement, which must BYPASS the tombstone-resurrect
# shortcut: the ad lands in the overlay at the requested node and the
# pending tombstone keeps cancelling the sealed copy — the net live
# multiset is identical either way, and this op proves it.
def op_strategy():
    return st.one_of(
        st.tuples(st.just("insert"), ad_strategy()),
        st.tuples(st.just("insert_locator"), ad_strategy()),
        st.tuples(st.just("delete"), ad_strategy()),
        st.tuples(st.just("compact"), st.none()),
        st.tuples(
            st.just("crash_compact"),
            st.sampled_from(
                [CRASH_COMPACT_START, CRASH_TMP_WRITTEN, CRASH_COMPACT_WRITTEN]
            ),
        ),
    )


class Oracle:
    """Multiset of live ads + naive WordSetIndex mirror."""

    def __init__(self, ads):
        self.ads = list(ads)

    def insert(self, ad):
        self.ads.append(ad)

    def delete(self, ad):
        if ad in self.ads:
            self.ads.remove(ad)
            return True
        return False

    def results(self, query):
        index = WordSetIndex()
        for ad in self.ads:
            index.insert(ad)
        return sorted(
            (a.info.listing_id, a.phrase) for a in index.query(query)
        )


PROBE_QUERIES = [
    Query(tuple(WORDS[:5])),
    Query(tuple(WORDS[5:9])),
    Query((WORDS[0], WORDS[11], WORDS[6])),
    Query(("unrelated",)),
]


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    base=st.lists(ad_strategy(), max_size=12),
    ops=st.lists(op_strategy(), max_size=20),
)
def test_interleavings_match_wordset_oracle(tmp_path_factory, base, ops):
    directory = tmp_path_factory.mktemp("prop")
    path = directory / "base.seg"
    index = WordSetIndex.from_corpus(AdCorpus(base))
    SegmentBuilder(index).write(path)

    injector = FaultInjector()
    oracle = Oracle(base)
    compactions = 0
    with SegmentedIndex(path, faults=injector) as segmented:
        for step, (kind, arg) in enumerate(ops):
            if kind == "insert":
                segmented.insert(arg)
                oracle.insert(arg)
            elif kind == "insert_locator":
                # Explicit placement at a single-word subset of the
                # phrase; the oracle places plainly — broad-query
                # results must not depend on the mapping.
                segmented.insert(arg, locator=frozenset({arg.phrase[0]}))
                oracle.insert(arg)
            elif kind == "delete":
                assert segmented.delete(arg) == oracle.delete(arg)
            elif kind == "compact":
                compactions += 1
                segmented.compact(
                    path=directory / f"gen-{compactions}.seg"
                )
            else:  # crash_compact: fail, verify, then the state lives on
                with injector.arm(arg):
                    with pytest.raises(InjectedCrash):
                        segmented.compact(
                            path=directory / f"crash-{step}.seg"
                        )
            if kind in ("insert", "insert_locator", "delete"):
                assert segmented.contains(arg) == (arg in oracle.ads), (
                    step,
                    kind,
                )
            assert len(segmented) == len(oracle.ads), (step, kind)
            for query in PROBE_QUERIES:
                got = sorted(
                    (a.info.listing_id, a.phrase)
                    for a in segmented.query(query)
                )
                assert got == oracle.results(query), (step, kind)
        assert len(segmented) == len(oracle.ads)
