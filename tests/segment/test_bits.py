"""``pack_bits``/``PackedBits`` against the ``BitVector`` oracle."""

import random

import pytest

from repro.compress.bitvector import BitVector
from repro.segment.bits import PackedBits, pack_bits


def build_pair(length, positions):
    oracle = BitVector.from_positions(length, positions)
    packed = PackedBits.from_buffer(
        memoryview(pack_bits(length, positions)), length
    )
    return oracle, packed


DENSITIES = [0.0, 0.01, 0.2, 0.5, 0.95, 1.0]


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("length", [1, 63, 64, 65, 511, 512, 1000, 4096])
def test_agrees_with_bitvector(length, density):
    rng = random.Random(int(density * 100) * 10_000 + length)
    positions = [i for i in range(length) if rng.random() < density]
    oracle, packed = build_pair(length, positions)

    assert packed.ones == oracle.ones == len(positions)
    for i in range(length):
        assert packed[i] == oracle[i]
    for i in range(length + 1):
        assert packed.rank1(i) == oracle.rank1(i)
        assert packed.rank0(i) == oracle.rank0(i)
    for j in range(1, len(positions) + 1):
        assert packed.select1(j) == oracle.select1(j) == positions[j - 1]


def test_pack_bits_layout_is_little_endian_words():
    buf = pack_bits(64, [0, 8, 63])
    assert len(buf) == 8
    word = int.from_bytes(buf, "little")
    assert word == (1 << 0) | (1 << 8) | (1 << 63)


def test_pack_bits_rejects_out_of_range():
    with pytest.raises(ValueError):
        pack_bits(8, [8])
    with pytest.raises(ValueError):
        pack_bits(8, [-1])


def test_select_out_of_range():
    _, packed = build_pair(128, [5, 70])
    with pytest.raises(ValueError):
        packed.select1(0)
    with pytest.raises(ValueError):
        packed.select1(3)


def test_rank_out_of_range():
    _, packed = build_pair(128, [5])
    with pytest.raises(IndexError):
        packed.rank1(129)
    with pytest.raises(IndexError):
        packed.rank1(-1)


def test_release_then_no_use_required():
    buf = memoryview(bytearray(pack_bits(256, [1, 100, 255])))
    packed = PackedBits.from_buffer(buf, 256)
    assert packed.rank1(256) == 3
    packed.release()
    # After release the underlying buffer can be mutated/freed safely.
    buf.release()


def test_size_bits_accounts_directory_overhead():
    _, packed = build_pair(4096, list(range(0, 4096, 3)))
    assert packed.size_bits() >= 4096
