"""``SegmentedIndex``: overlay, tombstones, crash-safe compaction."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.faults import FaultInjector, InjectedCrash
from repro.obs import MetricsRegistry
from repro.segment import (
    PackedSegmentIndex,
    SegmentBuilder,
    SegmentedIndex,
    ShardedSegmentedIndex,
)
from repro.segment.builder import stale_temp_files
from repro.segment.format import (
    CRASH_COMPACT_START,
    CRASH_COMPACT_SWAPPED,
    CRASH_COMPACT_WRITTEN,
    CRASH_TMP_SYNCED,
    CRASH_TMP_WRITTEN,
)


def ad(text, listing_id=0, bid=0):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, bid_price_micros=bid)
    )


def ids(ads):
    return sorted(a.info.listing_id for a in ads)


BASE_ADS = [
    ad("cheap used books", 1, bid=500),
    ad("used books", 2, bid=300),
    ad("books", 3, bid=200),
    ad("books", 4, bid=200),  # duplicate word-set, distinct listing
    ad("rare maps", 5),
]

PROBES = ["cheap used books today", "books", "rare maps of norway", "none"]


def write_segment(path, ads=BASE_ADS):
    SegmentBuilder(WordSetIndex.from_corpus(AdCorpus(ads))).write(path)
    return path


@pytest.fixture()
def segmented(tmp_path):
    index = SegmentedIndex(write_segment(tmp_path / "base.seg"))
    yield index
    index.close()


def oracle_for(ads):
    index = WordSetIndex()
    for a in ads:
        index.insert(a)
    return index


def assert_matches(segmented, live_ads):
    oracle = oracle_for(live_ads)
    assert len(segmented) == len(live_ads)
    for text in PROBES:
        query = Query.from_text(text)
        assert ids(segmented.query(query)) == ids(oracle.query(query)), text


class TestOverlayMutation:
    def test_insert_lands_in_overlay(self, segmented):
        new = ad("fresh inventory", 10)
        segmented.insert(new)
        assert segmented.contains(new)
        assert len(segmented.overlay) == 1
        assert_matches(segmented, BASE_ADS + [new])

    def test_delete_overlay_ad_is_plain_delete(self, segmented):
        new = ad("fresh inventory", 10)
        segmented.insert(new)
        assert segmented.delete(new)
        assert segmented.tombstone_count() == 0
        assert_matches(segmented, BASE_ADS)

    def test_delete_segment_ad_records_tombstone(self, segmented):
        assert segmented.delete(BASE_ADS[0])
        assert segmented.tombstone_count() == 1
        assert not segmented.contains(BASE_ADS[0])
        assert_matches(segmented, BASE_ADS[1:])

    def test_delete_absent_ad_is_false(self, segmented):
        assert not segmented.delete(ad("never indexed", 99))
        assert not segmented.delete(ad("books", 99))  # wrong listing id

    def test_duplicate_segment_ads_delete_one_at_a_time(self, segmented):
        dup = BASE_ADS[2]
        other = BASE_ADS[3]
        assert segmented.delete(dup)
        assert segmented.contains(other)
        assert_matches(segmented, [a for a in BASE_ADS if a != dup])
        assert segmented.delete(other)
        assert not segmented.delete(ad("books", 3, bid=200))
        assert_matches(segmented, BASE_ADS[:2] + BASE_ADS[4:])

    def test_reinsert_resurrects_tombstoned_segment_ad(self, segmented):
        target = BASE_ADS[0]
        segmented.delete(target)
        segmented.insert(target)
        assert segmented.tombstone_count() == 0
        assert len(segmented.overlay) == 0  # served by the segment copy
        assert_matches(segmented, BASE_ADS)

    def test_obs_gauges_track_overlay_and_tombstones(self, tmp_path):
        registry = MetricsRegistry()
        index = SegmentedIndex(
            write_segment(tmp_path / "obs.seg"), obs=registry
        )
        try:
            index.insert(ad("fresh inventory", 10))
            index.delete(BASE_ADS[0])
            snapshot = {m.name: m.value for m in registry.collect()}
            assert snapshot["segment.overlay_ads"] == 1.0
            assert snapshot["segment.tombstones"] == 1.0
        finally:
            index.close()


class TestCompaction:
    def test_compact_folds_overlay_and_tombstones(self, segmented, tmp_path):
        new = ad("fresh inventory", 10)
        segmented.insert(new)
        segmented.delete(BASE_ADS[1])
        target = tmp_path / "gen1.seg"
        assert segmented.compact(path=target) == target

        live = [a for a in BASE_ADS if a != BASE_ADS[1]] + [new]
        assert segmented.segment.generation == 1
        assert len(segmented.overlay) == 0
        assert segmented.tombstone_count() == 0
        assert len(segmented.segment) == len(live)
        assert_matches(segmented, live)

    def test_compact_in_place_replaces_the_file(self, tmp_path):
        path = write_segment(tmp_path / "inplace.seg")
        with SegmentedIndex(path) as segmented:
            segmented.delete(BASE_ADS[0])
            segmented.compact()
            assert segmented.segment.path == path
            assert_matches(segmented, BASE_ADS[1:])
        # The replaced file reopens as the new generation.
        with PackedSegmentIndex(path) as reopened:
            assert reopened.generation == 1
            assert len(reopened) == len(BASE_ADS) - 1

    def test_compact_counts_in_obs(self, tmp_path):
        registry = MetricsRegistry()
        with SegmentedIndex(
            write_segment(tmp_path / "c.seg"), obs=registry
        ) as segmented:
            segmented.compact()
            snapshot = {m.name: m.value for m in registry.collect()}
            assert snapshot["segment.compactions"] == 1.0

    def test_compaction_preserves_optimizer_placements(self, tmp_path):
        # An ad re-homed to a locator subset must keep its placement
        # across pack -> serve -> compact, or broad matches get lost.
        moved = ad("cheap used books extra terms", 30)
        index = WordSetIndex(max_words=3)
        for a in BASE_ADS:
            index.insert(a)
        locator = frozenset(["cheap", "used", "books"])
        index.insert(moved, locator)
        path = tmp_path / "placed.seg"
        SegmentBuilder(index).write(path)
        with SegmentedIndex(path) as segmented:
            query = Query.from_text("cheap used books extra terms today")
            before = ids(segmented.query(query))
            assert moved.info.listing_id in before
            segmented.compact()
            assert ids(segmented.query(query)) == before


class TestCompactionCrashes:
    """A crash at any compaction point leaves a servable index, and the
    on-disk segment is one complete generation or the other."""

    @pytest.mark.parametrize(
        "point",
        [
            CRASH_COMPACT_START,
            CRASH_TMP_WRITTEN,
            CRASH_COMPACT_WRITTEN,
            CRASH_COMPACT_SWAPPED,
        ],
    )
    def test_crash_leaves_live_process_servable(self, tmp_path, point):
        injector = FaultInjector()
        path = write_segment(tmp_path / "crash.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            new = ad("fresh inventory", 10)
            segmented.insert(new)
            segmented.delete(BASE_ADS[0])
            live = [a for a in BASE_ADS if a != BASE_ADS[0]] + [new]

            with injector.arm(point):
                with pytest.raises(InjectedCrash):
                    segmented.compact(path=tmp_path / "next.seg")

            # Whatever the crash point, the in-process index still
            # answers every probe with the full live truth.
            assert_matches(segmented, live)

            # And a retry completes the job.
            segmented.compact(path=tmp_path / "retry.seg")
            assert_matches(segmented, live)
        finally:
            segmented.close()

    @pytest.mark.parametrize(
        ("point", "expect_new_generation"),
        [
            (CRASH_TMP_WRITTEN, False),  # torn temp; target untouched
            (CRASH_COMPACT_WRITTEN, True),  # rename happened
        ],
    )
    def test_disk_state_is_one_generation_or_the_other(
        self, tmp_path, point, expect_new_generation
    ):
        injector = FaultInjector()
        path = write_segment(tmp_path / "disk.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            segmented.delete(BASE_ADS[0])
            with injector.arm(point):
                with pytest.raises(InjectedCrash):
                    segmented.compact()  # in place
        finally:
            segmented.close()

        # Simulated restart: reopen whatever the path holds now.
        with SegmentedIndex(path) as reopened:
            if expect_new_generation:
                assert reopened.segment.generation == 1
                assert_matches(reopened, BASE_ADS[1:])
            else:
                assert reopened.segment.generation == 0
                assert_matches(reopened, BASE_ADS)

    def test_torn_temp_write_at_crashpoint_recovers(self, tmp_path):
        # The satellite case: crash at the compaction crashpoint AND the
        # interrupted temp write is physically torn (tear_tail).  The old
        # segment must keep serving, a restart must reopen it, and a
        # retried compaction must complete.
        from repro.faults import tear_tail

        injector = FaultInjector()
        path = write_segment(tmp_path / "teartail.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            segmented.delete(BASE_ADS[0])
            with injector.arm(CRASH_TMP_WRITTEN):
                with pytest.raises(InjectedCrash):
                    segmented.compact()
            for orphan in tmp_path.glob("*.tmp"):
                tear_tail(orphan, keep_fraction=0.5)
            assert_matches(segmented, BASE_ADS[1:])  # live process fine
            segmented.compact()  # retry overwrites the torn temp
            assert segmented.segment.generation == 1
            assert_matches(segmented, BASE_ADS[1:])
        finally:
            segmented.close()
        with SegmentedIndex(path) as reopened:
            assert_matches(reopened, BASE_ADS[1:])

    def test_torn_temp_never_shadows_the_live_segment(self, tmp_path):
        # The atomic-write discipline: a crash before rename leaves only
        # a *.tmp orphan; the serving path never opens temp files.
        injector = FaultInjector()
        path = write_segment(tmp_path / "torn.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            with injector.arm(CRASH_TMP_WRITTEN):
                with pytest.raises(InjectedCrash):
                    segmented.compact()
        finally:
            segmented.close()
        orphans = list(tmp_path.glob("*.tmp"))
        assert orphans, "crash before rename should leave the temp file"
        with SegmentedIndex(path) as reopened:
            assert_matches(reopened, BASE_ADS)


class TestSharded:
    def test_pack_corpus_matches_sharded_wordset_index(self, tmp_path):
        generated = generate_corpus(CorpusConfig(num_ads=600, seed=2))
        oracle = ShardedWordSetIndex.from_corpus(
            generated.corpus, num_shards=4
        )
        with ShardedSegmentedIndex.pack_corpus(
            generated.corpus, tmp_path, num_shards=4
        ) as packed:
            assert len(packed.shards) == 4
            assert len(packed) == len(generated.corpus)
            for i, a in enumerate(generated.corpus):
                assert packed.shard_of(a.words) == oracle.shard_of(a.words)
                if i % 29 == 0:
                    query = Query(a.phrase + ("and", "more"))
                    assert ids(packed.query(query)) == ids(
                        oracle.query(query)
                    )

    def test_mutations_route_to_the_owning_shard(self, tmp_path):
        with ShardedSegmentedIndex.pack_corpus(
            AdCorpus(BASE_ADS), tmp_path, num_shards=3
        ) as packed:
            new = ad("fresh inventory", 10)
            packed.insert(new)
            assert packed.contains(new)
            assert packed.delete(BASE_ADS[0])
            assert not packed.contains(BASE_ADS[0])
            expected = [a for a in BASE_ADS if a != BASE_ADS[0]] + [new]
            assert len(packed) == len(expected)
            oracle = oracle_for(expected)
            for text in PROBES + ["fresh inventory now"]:
                query = Query.from_text(text)
                assert ids(packed.query(query)) == ids(oracle.query(query))

    def test_compact_all_rolls_every_shard(self, tmp_path):
        with ShardedSegmentedIndex.pack_corpus(
            AdCorpus(BASE_ADS), tmp_path, num_shards=2
        ) as packed:
            packed.insert(ad("fresh inventory", 10))
            paths = packed.compact_all()
            assert len(paths) == 2
            assert all(s.segment.generation == 1 for s in packed.shards)
            assert len(packed) == len(BASE_ADS) + 1

    def test_batch_engine_scatters_over_shards(self, tmp_path):
        from repro.perf.batch import BatchQueryEngine

        generated = generate_corpus(CorpusConfig(num_ads=300, seed=4))
        oracle = WordSetIndex.from_corpus(generated.corpus)
        with ShardedSegmentedIndex.pack_corpus(
            generated.corpus, tmp_path, num_shards=3
        ) as packed:
            engine = BatchQueryEngine(packed)
            batch = [
                Query(a.phrase + ("extra",))
                for i, a in enumerate(generated.corpus)
                if i % 31 == 0
            ]
            results = engine.query_broad_batch(batch)
            assert len(results) == len(batch)
            for query, got in zip(batch, results):
                assert ids(got) == ids(oracle.query(query))

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedSegmentedIndex([])


class TestStaleTempCleanup:
    """Orphaned ``*.tmp`` files from crashed writes are swept on the
    next open and again before the next compaction — crashpoint by
    crashpoint, so a regression in any one write stage shows up."""

    @pytest.mark.parametrize(
        ("point", "leaves_orphan"),
        [
            (CRASH_COMPACT_START, False),  # crash before the temp write
            (CRASH_TMP_WRITTEN, True),  # temp exists, never fsynced
            (CRASH_TMP_SYNCED, True),  # temp durable, never renamed
            (CRASH_COMPACT_WRITTEN, False),  # rename already happened
            (CRASH_COMPACT_SWAPPED, False),  # fully committed
        ],
    )
    def test_reopen_sweeps_the_orphan(self, tmp_path, point, leaves_orphan):
        injector = FaultInjector()
        path = write_segment(tmp_path / "sweep.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            segmented.insert(ad("orphan bait", 40))
            with injector.arm(point):
                with pytest.raises(InjectedCrash):
                    segmented.compact()
        finally:
            segmented.close()

        assert bool(stale_temp_files(path)) is leaves_orphan
        # Simulated restart: open must remove every orphan.
        with SegmentedIndex(path):
            pass
        assert stale_temp_files(path) == []

    def test_compact_sweeps_before_writing(self, tmp_path):
        injector = FaultInjector()
        path = write_segment(tmp_path / "precompact.seg")
        segmented = SegmentedIndex(path, faults=injector)
        try:
            segmented.insert(ad("first try", 41))
            with injector.arm(CRASH_TMP_WRITTEN):
                with pytest.raises(InjectedCrash):
                    segmented.compact()
            assert len(stale_temp_files(path)) == 1
            # The retry cleans the previous attempt's orphan and leaves
            # exactly zero temp files behind on success.
            segmented.compact()
            assert stale_temp_files(path) == []
        finally:
            segmented.close()

    def test_sibling_segment_temps_are_not_touched(self, tmp_path):
        path = write_segment(tmp_path / "mine.seg")
        sibling = tmp_path / ".other.seg.123.0.tmp"
        sibling.write_bytes(b"someone else's crash")
        with SegmentedIndex(path):
            pass
        assert sibling.exists()
