"""Segment file format: preamble validation, corruption, truncation."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.wordset_index import WordSetIndex
from repro.faults import bit_flip, truncate_at
from repro.segment import PackedSegmentIndex, SegmentBuilder, SegmentFormatError
from repro.segment.format import (
    FORMAT_VERSION,
    HEADER_START,
    MAGIC,
    encode_file,
    read_header,
    read_varint,
    section_bounds,
)


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def segment_path(tmp_path):
    corpus = AdCorpus(
        [ad("cheap used books", 1), ad("books", 2), ad("rare maps", 3)]
    )
    path = tmp_path / "fmt.seg"
    SegmentBuilder(WordSetIndex.from_corpus(corpus)).write(path)
    return path


class TestPreamble:
    def test_round_trip(self):
        header = {"sections": {"nodes": [0, 4]}, "x": 1}
        blob = encode_file(header, b"\x01\x02\x03\x04")
        parsed, payload_start = read_header(blob)
        assert parsed == header
        assert blob[payload_start:] == b"\x01\x02\x03\x04"

    def test_bad_magic_rejected(self):
        with pytest.raises(SegmentFormatError, match="magic"):
            read_header(b"NOTASEGM" + b"\x00" * 16)

    def test_truncated_preamble_rejected(self):
        with pytest.raises(SegmentFormatError, match="preamble"):
            read_header(MAGIC[:4])

    def test_future_version_rejected(self):
        blob = bytearray(encode_file({}, b""))
        blob[len(MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(SegmentFormatError, match="version"):
            read_header(bytes(blob))

    def test_truncated_header_rejected(self):
        blob = encode_file({"k": "v"}, b"")
        with pytest.raises(SegmentFormatError, match="incomplete header"):
            read_header(blob[: HEADER_START + 2])

    def test_non_json_header_rejected(self):
        blob = bytearray(encode_file({"k": "v"}, b""))
        blob[HEADER_START] = 0xFF
        with pytest.raises(SegmentFormatError, match="corrupt"):
            read_header(bytes(blob))

    def test_non_object_header_rejected(self):
        import json
        import struct

        body = json.dumps([1, 2]).encode()
        blob = MAGIC + struct.pack("<II", FORMAT_VERSION, len(body)) + body
        with pytest.raises(SegmentFormatError, match="not an object"):
            read_header(blob)


class TestVarint:
    def test_round_trip_values(self):
        from repro.compress.deltas import varint_encode

        for value in (0, 1, 127, 128, 300, 2**21, 2**35):
            data = varint_encode(value)
            got, end = read_varint(data, 0)
            assert (got, end) == (value, len(data))

    def test_truncated_varint_raises(self):
        with pytest.raises(SegmentFormatError, match="truncated varint"):
            read_varint(b"\x80\x80", 0)


class TestSectionBounds:
    def test_missing_section(self):
        with pytest.raises(SegmentFormatError, match="missing section"):
            section_bounds({"sections": {}}, "nodes")

    def test_malformed_entry(self):
        with pytest.raises(SegmentFormatError, match="malformed"):
            section_bounds({"sections": {"nodes": [1, -2]}}, "nodes")


class TestOnDiskCorruption:
    """Damage a real segment file; the loader must fail loudly."""

    def test_clean_file_loads(self, segment_path):
        with PackedSegmentIndex(segment_path) as packed:
            assert len(packed) == 3

    def test_payload_bit_flip_detected(self, segment_path):
        # Middle of the file is inside the payload (checksummed).
        bit_flip(segment_path, offset=-8)
        with pytest.raises(SegmentFormatError, match="checksum"):
            PackedSegmentIndex(segment_path)

    def test_truncated_payload_detected(self, segment_path):
        size = segment_path.stat().st_size
        truncate_at(segment_path, size - 16)
        with pytest.raises(SegmentFormatError):
            PackedSegmentIndex(segment_path)

    def test_empty_file_detected(self, segment_path):
        segment_path.write_bytes(b"")
        with pytest.raises(SegmentFormatError):
            PackedSegmentIndex(segment_path)

    def test_missing_file_detected(self, tmp_path):
        with pytest.raises(SegmentFormatError, match="cannot open"):
            PackedSegmentIndex(tmp_path / "nope.seg")
