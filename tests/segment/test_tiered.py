"""Tiered segments: seal/merge lifecycle, crash-safe manifest, oracle
equivalence under churn, and wiring into the serving stack."""

from collections import Counter

import pytest

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.faults import FaultInjector, InjectedCrash
from repro.obs import MetricsRegistry, WorkloadRecorder
from repro.segment import (
    TIERED_CRASHPOINTS,
    BackgroundMerger,
    Manifest,
    ManifestFormatError,
    SegmentRecord,
    TieredConfig,
    TieredSegmentedIndex,
    manifest_fingerprint,
    pack_corpus_tiered,
    read_manifest,
)
from repro.segment.churn import ChurnConfig, run_churn_drill
from repro.segment.format import (
    CRASH_MANIFEST_SWAPPED,
    CRASH_MERGE_START,
    CRASH_MERGE_WRITTEN,
    CRASH_SEAL_START,
    CRASH_SEAL_WRITTEN,
)
from repro.segment.tiered import MANIFEST_NAME


def ad(text, listing_id=0, bid=100):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, bid_price_micros=bid)
    )


def ids(ads):
    return sorted(a.info.listing_id for a in ads)


def slate(ads):
    return sorted(
        (a.phrase, a.info.listing_id, a.info.bid_price_micros) for a in ads
    )


PROBES = [
    Query(("common", "w0")),
    Query(("common", "w1", "w2")),
    Query(("w3",)),
    Query(("absent", "words")),
]


def fill(index, oracle, count, start=0):
    for i in range(start, start + count):
        a = ad(f"w{i % 5} common item{i}", listing_id=i)
        index.insert(a)
        oracle.insert(a)


def assert_matches(index, oracle):
    assert len(index) == len(oracle)
    for query in PROBES:
        assert slate(index.query(query)) == slate(oracle.query(query)), query


def committed_view(directory):
    """Live-ad multiset of the *committed* generation on disk."""
    reopened = TieredSegmentedIndex(directory, read_only=True)
    try:
        return Counter(reopened.live_ads())
    finally:
        reopened.close()


class TestManifest:
    def test_round_trip(self):
        manifest = Manifest(
            generation=3,
            next_seq=7,
            segments=(
                SegmentRecord(name="seg-000001-L0.seg", level=0, seq=1,
                              num_ads=10),
            ),
            tombstones=((ad("dead thing", 9), 2),),
            max_words=5,
        )
        decoded = Manifest.decode(manifest.encode())
        assert decoded == manifest

    def test_checksum_mismatch_rejected(self):
        data = Manifest(generation=1).encode()
        torn = data.replace(b'"generation": 1', b'"generation": 2')
        with pytest.raises(ManifestFormatError, match="checksum"):
            Manifest.decode(torn)

    def test_garbage_rejected(self):
        with pytest.raises(ManifestFormatError):
            Manifest.decode(b"\x00\xffnot json")
        with pytest.raises(ManifestFormatError):
            Manifest.decode(b'{"format": "something-else"}')

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestFormatError):
            read_manifest(tmp_path / MANIFEST_NAME)

    def test_read_only_open_requires_manifest(self, tmp_path):
        with pytest.raises(ManifestFormatError):
            TieredSegmentedIndex(tmp_path / "absent", read_only=True)


class TestLifecycle:
    def test_auto_seal_creates_l0_segments(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=5, fan_in=100)
        )
        oracle = WordSetIndex()
        with index:
            fill(index, oracle, 23)
            stats = index.stats()
            assert stats["levels"] == {"0": 4}
            assert stats["overlay_ads"] == 3
            assert_matches(index, oracle)

    def test_ratio_merge_folds_fan_in_segments_upward(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=4, fan_in=3)
        )
        oracle = WordSetIndex()
        with index:
            fill(index, oracle, 60)
            levels = {
                record.level for record in index.manifest.segments
            }
            assert max(levels) >= 1
            # The ratio policy never leaves fan_in segments at a level.
            per_level = Counter(
                record.level for record in index.manifest.segments
            )
            assert all(count < 3 for count in per_level.values())
            assert_matches(index, oracle)
            assert index.read_amplification() <= index.read_amp_bound()

    def test_cross_tier_tombstones_filter_oldest_copy(self, tmp_path):
        config = TieredConfig(seal_threshold=2, fan_in=100)
        index = TieredSegmentedIndex(tmp_path, config=config)
        oracle = WordSetIndex()
        with index:
            duplicate = ad("dup common w0", listing_id=500)
            for _ in range(3):  # one copy per L0 segment
                index.insert(duplicate)
                oracle.insert(duplicate)
                index.insert(ad("filler x", listing_id=501))
                oracle.insert(ad("filler x", listing_id=501))
            assert index.delete(duplicate) and oracle.delete(duplicate)
            assert index.delete(duplicate) and oracle.delete(duplicate)
            assert_matches(index, oracle)
            assert index.contains(duplicate)
            assert index.delete(duplicate) and oracle.delete(duplicate)
            assert not index.contains(duplicate)
            assert not index.delete(duplicate)

    def test_reinsert_resurrects_tombstoned_sealed_ad(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=2, fan_in=100)
        )
        with index:
            victim = ad("resurrect me common", listing_id=7)
            index.insert(victim)
            index.insert(ad("filler y", listing_id=8))  # triggers seal
            assert index.delete(victim)
            assert index.tombstone_count() == 1
            index.insert(victim)
            assert index.tombstone_count() == 0
            assert len(index.overlay) == 0  # resurrected, not duplicated
            assert index.contains(victim)

    def test_seal_commits_tombstone_only_generation(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=2, fan_in=100)
        )
        with index:
            victim = ad("delete me common", listing_id=1)
            index.insert(victim)
            index.insert(ad("filler z", listing_id=2))
            generation = index.generation
            assert index.delete(victim)
            assert index.seal() is None  # no overlay — manifest-only
            assert index.generation == generation + 1
            assert index.seal() is None  # nothing changed — no commit
            assert index.generation == generation + 1
        reopened = TieredSegmentedIndex(tmp_path)
        with reopened:
            assert not reopened.contains(victim)

    def test_unsealed_overlay_is_volatile_by_design(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=100)
        )
        with index:
            index.insert(ad("sealed one common", listing_id=1))
            index.seal()
            index.insert(ad("volatile one", listing_id=2))
        reopened = TieredSegmentedIndex(tmp_path)
        with reopened:
            assert ids(reopened.live_ads()) == [1]

    def test_reopen_round_trips_exact_state(self, tmp_path):
        config = TieredConfig(seal_threshold=3, fan_in=2)
        index = TieredSegmentedIndex(tmp_path, config=config)
        oracle = WordSetIndex()
        with index:
            fill(index, oracle, 50)
            for i in range(0, 50, 7):
                victim = ad(f"w{i % 5} common item{i}", listing_id=i)
                assert index.delete(victim) == oracle.delete(victim)
            index.seal()
            expected = Counter(index.live_ads())
        reopened = TieredSegmentedIndex(tmp_path, config=config)
        with reopened:
            assert Counter(reopened.live_ads()) == expected
            assert_matches(reopened, oracle)

    def test_manifest_fingerprint_moves_on_every_commit(self, tmp_path):
        index = TieredSegmentedIndex(
            tmp_path, config=TieredConfig(seal_threshold=100)
        )
        with index:
            first = manifest_fingerprint(tmp_path)
            assert first is not None
            index.insert(ad("a thing common", listing_id=1))
            index.seal()
            second = manifest_fingerprint(tmp_path)
            assert second != first

    def test_read_only_rejects_writes(self, tmp_path):
        with TieredSegmentedIndex(tmp_path) as writer:
            writer.insert(ad("content common", listing_id=1))
            writer.seal()
            reader = TieredSegmentedIndex(tmp_path, read_only=True)
            try:
                assert len(reader) == 1
                with pytest.raises(RuntimeError):
                    reader.insert(ad("nope", listing_id=2))
                with pytest.raises(RuntimeError):
                    reader.delete(ad("content common", listing_id=1))
                with pytest.raises(RuntimeError):
                    reader.seal()
            finally:
                reader.close()

    def test_full_compact_folds_everything_into_one_segment(self, tmp_path):
        config = TieredConfig(seal_threshold=3, fan_in=3)
        index = TieredSegmentedIndex(tmp_path, config=config)
        oracle = WordSetIndex()
        with index:
            fill(index, oracle, 31)
            index.compact()
            assert len(index.manifest.segments) == 1
            assert index.read_amplification() == 2
            assert_matches(index, oracle)

    def test_stats_shape(self, tmp_path):
        with TieredSegmentedIndex(tmp_path) as index:
            index.insert(ad("one common", listing_id=1))
            index.seal()
            stats = index.stats()
            for key in (
                "num_ads", "generation", "segments", "levels",
                "overlay_ads", "tombstones", "read_amplification",
                "read_amp_bound", "segment_bytes",
            ):
                assert key in stats
            assert stats["segments"][0]["level"] == 0

    def test_obs_counters_and_gauges(self, tmp_path):
        obs = MetricsRegistry()
        config = TieredConfig(seal_threshold=2, fan_in=2)
        with TieredSegmentedIndex(tmp_path, config=config, obs=obs) as index:
            oracle = WordSetIndex()
            fill(index, oracle, 16)
            assert obs.value("tiered.seals") >= 4
            assert obs.value("tiered.merges") >= 1
            assert obs.value("tiered.segments") == len(
                index.manifest.segments
            )


class TestCrashRecovery:
    """Every named crashpoint: the reopened index is exactly one
    committed generation, with no stray files."""

    def seeded(self, tmp_path, faults=None):
        config = TieredConfig(seal_threshold=5, fan_in=2)
        index = TieredSegmentedIndex(tmp_path, config=config, faults=faults)
        oracle = WordSetIndex()
        fill(index, oracle, 12)
        index.seal()
        return index, oracle, config

    @pytest.mark.parametrize("point", TIERED_CRASHPOINTS)
    def test_seal_crash_reopens_committed_generation(self, tmp_path, point):
        if point in (CRASH_MERGE_START, CRASH_MERGE_WRITTEN):
            pytest.skip("merge points do not fire during a seal")
        injector = FaultInjector()
        index, oracle, config = self.seeded(tmp_path, faults=injector)
        committed = committed_view(tmp_path)
        pending = [ad(f"pending p{i}", listing_id=100 + i) for i in range(3)]
        for extra in pending:
            index.insert(extra)
        with injector.arm(point):
            with pytest.raises(InjectedCrash):
                index.seal()
        index.close()  # simulate process death; overlay not re-sealed

    # What must reopen depends on where the crash hit: before the
        # rename the old generation holds; at/after the swap the new one.
        reopened = TieredSegmentedIndex(tmp_path, config=config)
        with reopened:
            live = Counter(reopened.live_ads())
            if point == CRASH_MANIFEST_SWAPPED:
                assert live == committed + Counter(pending)
            else:
                assert live == committed
            # The sweep leaves exactly the manifest + referenced files.
            referenced = {
                record.name for record in reopened.manifest.segments
            }
            on_disk = {p.name for p in tmp_path.iterdir()}
            assert on_disk == referenced | {MANIFEST_NAME}

    @pytest.mark.parametrize("point", TIERED_CRASHPOINTS)
    def test_merge_crash_reopens_committed_generation(self, tmp_path, point):
        injector = FaultInjector()
        config = TieredConfig(
            seal_threshold=3, fan_in=2, auto_merge=False
        )
        index = TieredSegmentedIndex(tmp_path, config=config, faults=injector)
        oracle = WordSetIndex()
        fill(index, oracle, 13)
        index.seal()
        committed = committed_view(tmp_path)
        assert len(index.manifest.segments) >= 2
        if point in (CRASH_SEAL_START, CRASH_SEAL_WRITTEN):
            pytest.skip("seal points do not fire during a merge")
        with injector.arm(point):
            with pytest.raises(InjectedCrash):
                index.maybe_merge()
        index.close()
        reopened = TieredSegmentedIndex(tmp_path, config=config)
        with reopened:
            # Merges never change content, only layout — every point
            # reopens the same live multiset.
            assert Counter(reopened.live_ads()) == committed
            assert_matches(reopened, oracle)
            referenced = {
                record.name for record in reopened.manifest.segments
            }
            on_disk = {p.name for p in tmp_path.iterdir()}
            assert on_disk == referenced | {MANIFEST_NAME}

    def test_crashed_seal_retries_cleanly_in_process(self, tmp_path):
        injector = FaultInjector()
        config = TieredConfig(seal_threshold=100)
        index = TieredSegmentedIndex(tmp_path, config=config, faults=injector)
        with index:
            index.insert(ad("retry me common", listing_id=1))
            with injector.arm("segment.tmp_written"):
                with pytest.raises(InjectedCrash):
                    index.seal()
            # The overlay survived the crash; the retry commits.
            assert index.seal() is not None
            assert ids(index.live_ads()) == [1]


class TestContinuousChurn:
    def test_churn_drill_with_background_merges(self, tmp_path):
        result = run_churn_drill(
            tmp_path / "drill",
            ChurnConfig(ops=4_000, probe_every=100, seal_threshold=64),
        )
        assert result.ok, result.to_json()
        assert result.merges > 0
        assert result.probes > 0

    def test_churn_drill_survives_injected_crashes(self, tmp_path):
        result = run_churn_drill(
            tmp_path / "drill",
            ChurnConfig(
                ops=4_000, probe_every=100, seal_threshold=64,
                crash_every=400,
            ),
        )
        assert result.ok, result.to_json()
        assert result.injected_crashes > 0

    def test_background_merger_bounds_read_amplification(self, tmp_path):
        config = TieredConfig(seal_threshold=16, fan_in=4)
        index = TieredSegmentedIndex(tmp_path, config=config)
        merger = BackgroundMerger(index, interval_s=0.001)
        with index, merger:
            for i in range(600):
                index.insert(ad(f"w{i % 9} common i{i}", listing_id=i))
        merger.drain()
        assert index.read_amplification() <= index.read_amp_bound()


class TestWorkloadDrivenMerges:
    def test_merges_consume_recorded_coaccess(self, tmp_path):
        obs = MetricsRegistry()
        recorder = WorkloadRecorder(obs)
        config = TieredConfig(seal_threshold=4, fan_in=2)
        index = TieredSegmentedIndex(
            tmp_path, config=config, obs=obs, recorder=recorder
        )
        oracle = WordSetIndex()
        with index:
            fill(index, oracle, 10)
            # Broad queries record co-access before the next merges.
            for _ in range(5):
                for query in PROBES:
                    index.query(query)
            assert recorder.distinct_tracked() > 0
            fill(index, oracle, 30, start=10)
            assert obs.value("tiered.optimized_merges") >= 1
            assert_matches(index, oracle)


class TestServingIntegration:
    def test_adserver_serves_over_tiered_index(self, tmp_path):
        from repro.serving.server import AdServer

        config = TieredConfig(seal_threshold=4, fan_in=2)
        index = TieredSegmentedIndex(tmp_path, config=config)
        with index:
            for i in range(20):
                index.insert(
                    ad(f"auction w{i % 3} common", listing_id=i, bid=100 + i)
                )
            server = AdServer(index, slots=4)
            result = server.serve(Query(("auction", "w1", "common")))
            assert not result.degraded
            assert 1 <= len(result.ads) <= 4
            # Highest-bid copy of the matching phrase wins the auction.
            assert result.outcome.candidates > 0

    def test_batch_engine_over_tiered_shards(self, tmp_path):
        from repro.perf.batch import BatchQueryEngine

        ads = [ad(f"batch w{i % 7} common b{i}", listing_id=i)
               for i in range(120)]
        oracle = WordSetIndex()
        for a in ads:
            oracle.insert(a)
        sharded = pack_corpus_tiered(
            ads, tmp_path, num_shards=3,
            config=TieredConfig(seal_threshold=8, fan_in=2),
        )
        try:
            engine = BatchQueryEngine(sharded)
            batch = [Query((f"w{i}", "common", "batch")) for i in range(7)]
            results = engine.query_broad_batch(batch)
            for query, got in zip(batch, results):
                assert ids(got) == ids(oracle.query(query))
        finally:
            for shard in sharded.shards:
                shard.close()

    def test_sharded_mutations_route_and_compact(self, tmp_path):
        ads = [ad(f"route w{i % 3} common", listing_id=i) for i in range(30)]
        sharded = pack_corpus_tiered(
            ads, tmp_path, num_shards=2,
            config=TieredConfig(seal_threshold=4, fan_in=2),
        )
        try:
            extra = ad("route w1 common fresh", listing_id=999)
            sharded.insert(extra)
            assert sharded.contains(extra)
            assert sharded.delete(ads[0])
            assert len(sharded) == 30
            sharded.compact_all()
            assert len(sharded) == 30
        finally:
            for shard in sharded.shards:
                shard.close()

    def test_worker_reloads_on_manifest_swap(self, tmp_path):
        from repro.netserve.worker import WorkerConfig, _Worker

        directory = tmp_path / "tiered"
        config = TieredConfig(seal_threshold=100)
        writer = TieredSegmentedIndex(directory, config=config)
        writer.insert(ad("serve w0 common", listing_id=1))
        writer.seal()
        worker = _Worker(
            WorkerConfig(
                segment_path=str(directory),
                socket_path=str(tmp_path / "sock"),
                # Probe the manifest before every batch: this test is
                # about the swap itself, not the throttle (which has
                # its own coverage in tests/netserve/test_batching.py).
                reload_check_interval_s=0.0,
            )
        )
        try:
            reply = worker.handle({
                "type": "serve",
                "request": {"query": ["serve", "w0", "common"]},
            })
            assert reply["type"] == "result"
            assert reply["result"]["outcome"]["candidates"] == 1
            assert reply["generation"] == writer.generation
            # Commit a new generation; the worker must pick it up
            # between requests.
            writer.insert(ad("serve w0 common", listing_id=2))
            writer.seal()
            reply = worker.handle({
                "type": "serve",
                "request": {"query": ["serve", "w0", "common"]},
            })
            assert reply["result"]["outcome"]["candidates"] == 2
            assert reply["generation"] == writer.generation
            assert worker.manifest_reloads == 1
            stats = worker.stats_payload()
            assert stats["tiered"]["generation"] == writer.generation
            assert stats["tiered"]["manifest_reloads"] == 1
        finally:
            worker.close()
            writer.close()
