"""``PackedSegmentIndex``: equivalence with the dict index it froze."""

import warnings

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType, naive_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.obs import MetricsRegistry
from repro.segment import PackedSegmentIndex, SegmentBuilder


def ad(text, listing_id=0, campaign_id=0, bid=0, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            campaign_id=campaign_id,
            bid_price_micros=bid,
            exclusion_phrases=exclusions,
        ),
    )


def ids(ads):
    return sorted(a.info.listing_id for a in ads)


@pytest.fixture(scope="module")
def corpus():
    return AdCorpus(
        [
            ad("cheap used books", 1, campaign_id=9, bid=500),
            ad("used books", 2, bid=300),
            ad("books", 3, bid=200),
            ad("rare maps", 4),
            ad("cheap flights paris", 5, bid=900),
            ad("books used cheap", 6),  # same word-set as ad 1
            ad("books", 7, bid=200),  # duplicate phrase, distinct listing
            ad("summer sale shoes", 8, exclusions=("winter boots",)),
        ]
    )


@pytest.fixture(scope="module")
def dict_index(corpus):
    return WordSetIndex.from_corpus(corpus)


@pytest.fixture(scope="module", params=["cached", "uncached"])
def packed(request, dict_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("packed") / f"{request.param}.seg"
    SegmentBuilder(dict_index).write(path, generation=3)
    cache = 0 if request.param == "uncached" else 1 << 20
    index = PackedSegmentIndex(path, cache_bytes=cache)
    yield index
    index.close()


QUERIES = [
    "cheap used books",
    "books used cheap extra words here",
    "cheap flights paris today",
    "summer sale shoes",
    "winter boots summer sale shoes",
    "completely unrelated query",
    "books",
]


class TestEquivalence:
    def test_broad_results_match_dict_index(self, packed, dict_index):
        for text in QUERIES:
            query = Query.from_text(text)
            assert ids(packed.query(query)) == ids(dict_index.query(query)), (
                text
            )

    def test_match_types_and_exclusions_apply(self, packed, corpus):
        for text in QUERIES:
            query = Query.from_text(text)
            for match_type in MatchType:
                got = ids(packed.query(query, match_type))
                want = ids(naive_match(corpus, query, match_type))
                assert got == want, (text, match_type)

    def test_decoded_ads_carry_full_info(self, packed):
        results = packed.query(Query.from_text("cheap used books"))
        by_listing = {a.info.listing_id: a for a in results}
        assert by_listing[1].info.bid_price_micros == 500
        assert by_listing[1].info.campaign_id == 9
        assert by_listing[1].phrase == ("cheap", "used", "books")

    def test_iter_ads_is_the_whole_corpus(self, packed, corpus):
        assert ids(packed.iter_ads()) == ids(corpus)

    def test_len_and_generation(self, packed, corpus):
        assert len(packed) == len(corpus)
        assert packed.generation == 3

    def test_lookup_count_counts_duplicates(self, packed):
        assert packed.lookup_count(ad("books", 3, bid=200)) == 1
        assert packed.lookup_count(ad("books", 99)) == 0
        assert packed.lookup_count(ad("never indexed phrase")) == 0


class TestResourceAccounting:
    def test_resident_bytes_excludes_the_mapping_payload(self, packed):
        # The resident figure includes aux state but is far below a full
        # in-memory decode; segment bytes are the file, mapped not heap.
        assert packed.segment_bytes() == packed.path.stat().st_size
        assert packed.resident_bytes() > 0

    def test_tracker_charges_probes_and_candidates(self, dict_index, tmp_path):
        path = tmp_path / "tracked.seg"
        SegmentBuilder(dict_index).write(path)
        tracker = AccessTracker()
        with PackedSegmentIndex(path, tracker=tracker) as packed:
            packed.query(Query.from_text("cheap used books"))
        assert tracker.stats.hash_probes > 0
        assert tracker.stats.candidates_examined > 0

    def test_obs_counters_move(self, dict_index, tmp_path):
        path = tmp_path / "obs.seg"
        SegmentBuilder(dict_index).write(path)
        registry = MetricsRegistry()
        with PackedSegmentIndex(path, obs=registry) as packed:
            packed.query(Query.from_text("cheap used books"))
            expected_bytes = packed.segment_bytes()
        snapshot = {m.name: m for m in registry.collect()}
        assert snapshot["segment.queries"].value == 1
        assert snapshot["segment.probes"].value > 0
        assert snapshot["segment.bytes"].value == expected_bytes

    def test_cache_stays_within_budget(self, dict_index, tmp_path):
        path = tmp_path / "budget.seg"
        SegmentBuilder(dict_index).write(path)
        with PackedSegmentIndex(path, cache_bytes=1 << 20) as packed:
            for text in QUERIES:
                packed.query(Query.from_text(text))
            assert packed.cache_bytes_used() <= 1 << 20
            assert packed.stats()["cached_nodes"] > 0

    def test_zero_cache_budget_disables_caching(self, dict_index, tmp_path):
        path = tmp_path / "nocache.seg"
        SegmentBuilder(dict_index).write(path)
        with PackedSegmentIndex(path, cache_bytes=0) as packed:
            for text in QUERIES:
                packed.query(Query.from_text(text))
            assert packed.cache_bytes_used() == 0
            assert packed.stats()["cached_nodes"] == 0


class TestLifecycle:
    def test_close_is_idempotent(self, dict_index, tmp_path):
        path = tmp_path / "close.seg"
        SegmentBuilder(dict_index).write(path)
        packed = PackedSegmentIndex(path)
        packed.query(Query.from_text("books"))
        packed.close()
        packed.close()

    def test_query_broad_alias_removed(self, packed):
        assert not hasattr(packed, "query_broad")

    def test_query_does_not_warn(self, packed):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            packed.query(Query.from_text("books"))


class TestAtScale:
    """A generated corpus exercises suffix collisions and node merging."""

    def test_equivalence_on_generated_corpus(self, tmp_path):
        generated = generate_corpus(CorpusConfig(num_ads=1_500, seed=5))
        index = WordSetIndex.from_corpus(generated.corpus)
        path = tmp_path / "scale.seg"
        SegmentBuilder(index).write(path)
        with PackedSegmentIndex(path, cache_bytes=1 << 18) as packed:
            assert len(packed) == len(generated.corpus)
            for i, ad_ in enumerate(generated.corpus):
                if i % 37 == 0:
                    query = Query(ad_.phrase + ("extra", "words"))
                    assert ids(packed.query(query)) == ids(
                        index.query(query)
                    )

    def test_forced_suffix_collisions_stay_correct(self, corpus, tmp_path):
        # 1-bit suffixes: every node shares one of two suffix slots, so
        # every probe scans merged nodes and the word-count early break.
        index = WordSetIndex.from_corpus(corpus)
        path = tmp_path / "collide.seg"
        SegmentBuilder(index, suffix_bits=1).write(path)
        with PackedSegmentIndex(path) as packed:
            assert packed.num_nodes() <= 2
            for text in QUERIES:
                query = Query.from_text(text)
                assert ids(packed.query(query)) == ids(index.query(query))
