"""Public-API integrity: exports resolve, carry docs, and stay consistent."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.cost",
    "repro.invindex",
    "repro.optimize",
    "repro.compress",
    "repro.memsim",
    "repro.distsim",
    "repro.datagen",
    "repro.serving",
    "repro.perf",
    "repro.faults",
    "repro.resilience",
]


class TestExports:
    def test_root_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__all__, f"{module_name} exports nothing"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_sorted_and_unique(self, module_name):
        module = importlib.import_module(module_name)
        names = list(module.__all__)
        assert names == sorted(names), f"{module_name}.__all__ unsorted"
        assert len(names) == len(set(names))

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_and_functions_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{module_name}: {undocumented}"

    def test_public_methods_documented_on_core_types(self):
        from repro.core.wordset_index import WordSetIndex

        undocumented = [
            name
            for name, member in inspect.getmembers(WordSetIndex)
            if not name.startswith("_")
            and callable(member)
            and not (member.__doc__ and member.__doc__.strip())
        ]
        assert not undocumented, undocumented


class TestInterchangeability:
    def test_all_retrieval_structures_share_query(self):
        """The serving layer's pluggability contract: every structure
        answers through ``query``; the primary structures no longer
        carry the removed ``query_broad`` deprecation alias (only the
        baselines keep it, as their native surface)."""
        from repro.compress.compressed_hash import CompressedWordSetIndex
        from repro.core.impact_index import ImpactOrderedIndex
        from repro.core.sharded import ShardedWordSetIndex
        from repro.core.tree_index import TrieWordSetIndex
        from repro.core.wordset_index import WordSetIndex
        from repro.invindex import (
            CountingInvertedIndex,
            NonRedundantInvertedIndex,
            RedundantInvertedIndex,
        )
        from repro.serving.result_cache import CachedIndex

        primary = (
            WordSetIndex,
            TrieWordSetIndex,
            ShardedWordSetIndex,
            ImpactOrderedIndex,
            CachedIndex,
        )
        baselines = (
            CompressedWordSetIndex,
            NonRedundantInvertedIndex,
            CountingInvertedIndex,
            RedundantInvertedIndex,
        )
        for cls in primary + baselines:
            assert callable(getattr(cls, "query"))
        for cls in primary:
            assert not hasattr(cls, "query_broad")
        for cls in baselines:
            assert callable(getattr(cls, "query_broad"))
