"""Tests for the main-memory cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cost.model import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_defaults_positive(self):
        model = CostModel()
        assert model.cost_random() > 0
        assert model.cost_scan(100) > 0

    def test_scan_zero_bytes_is_free(self):
        assert CostModel().cost_scan(0) == 0.0

    def test_scan_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().cost_scan(-1)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_scan_monotone(self, a, b):
        # The paper's only requirement on Cost_Scan: positive, monotone.
        model = CostModel()
        if a <= b:
            assert model.cost_scan(a) <= model.cost_scan(b)

    def test_random_much_pricier_than_sequential_byte(self):
        model = DEFAULT_COST_MODEL
        assert model.cost_random() > 100 * model.cost_scan(1)

    def test_break_even_bytes(self):
        model = CostModel(cost_random_ns=100.0, scan_ns_per_byte=0.1)
        assert model.break_even_bytes() == 1000

    def test_break_even_bounds_node_size(self):
        # Key property for Section V-B's k-bound: break-even is small —
        # a handful of ads, not thousands (contrast with disk).
        assert DEFAULT_COST_MODEL.break_even_bytes() < 10_000

    def test_hash_probe_cost(self):
        model = CostModel(cost_random_ns=100.0, scan_ns_per_byte=0.1, mem_hash_bytes=16)
        assert model.hash_probe_cost() == pytest.approx(101.6)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            CostModel(cost_random_ns=0)
        with pytest.raises(ValueError):
            CostModel(scan_ns_per_byte=-1)
        with pytest.raises(ValueError):
            CostModel(mem_hash_bytes=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().cost_random_ns = 5
