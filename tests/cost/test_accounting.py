"""Tests for access tracking and modeled-cost conversion."""

import pytest

from repro.cost.accounting import AccessStats, AccessTracker
from repro.cost.model import CostModel


class TestAccessTracker:
    def test_random_access_counts(self):
        tracker = AccessTracker()
        tracker.random_access(64)
        tracker.random_access()
        assert tracker.stats.random_accesses == 2
        assert tracker.stats.bytes_scanned == 64

    def test_sequential_counts_bytes_only(self):
        tracker = AccessTracker()
        tracker.sequential(128)
        assert tracker.stats.random_accesses == 0
        assert tracker.stats.bytes_scanned == 128

    def test_hash_probe_is_random(self):
        tracker = AccessTracker()
        tracker.hash_probe(16)
        assert tracker.stats.hash_probes == 1
        assert tracker.stats.random_accesses == 1
        assert tracker.stats.bytes_scanned == 16

    def test_candidates_and_postings(self):
        tracker = AccessTracker()
        tracker.candidate(3)
        tracker.posting(7)
        assert tracker.stats.candidates_examined == 3
        assert tracker.stats.postings_traversed == 7

    def test_reset_returns_and_clears(self):
        tracker = AccessTracker()
        tracker.random_access(10)
        old = tracker.reset()
        assert old.random_accesses == 1
        assert tracker.stats.random_accesses == 0

    def test_query_done(self):
        tracker = AccessTracker()
        tracker.query_done()
        tracker.query_done()
        assert tracker.stats.queries == 2


class TestAccessStats:
    def test_modeled_ns(self):
        stats = AccessStats(random_accesses=2, bytes_scanned=500)
        model = CostModel(cost_random_ns=100.0, scan_ns_per_byte=0.1)
        assert stats.modeled_ns(model) == pytest.approx(2 * 100 + 50)

    def test_addition(self):
        a = AccessStats(random_accesses=1, bytes_scanned=10, hash_probes=2)
        b = AccessStats(random_accesses=3, bytes_scanned=5, queries=1)
        total = a + b
        assert total.random_accesses == 4
        assert total.bytes_scanned == 15
        assert total.hash_probes == 2
        assert total.queries == 1

    def test_zero_stats_zero_cost(self):
        assert AccessStats().modeled_ns(CostModel()) == 0.0
