"""Tests for the analytic Cost(WL, M) of Section V-A.

The central check: the analytic cost of an index equals the modeled cost of
actually executing the workload against that index with an AccessTracker.
If those two ever diverge, the optimizer is minimizing the wrong function.
"""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query, Workload
from repro.core.wordset_index import HASH_BUCKET_BYTES, WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.cost.model import CostModel
from repro.cost.workload_cost import (
    cost_hash,
    cost_node,
    cost_node_single,
    query_lookup_count,
    total_cost,
)


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def model():
    # mem_hash matched to the index's bucket size so analytic == executed.
    return CostModel(cost_random_ns=100.0, scan_ns_per_byte=0.1,
                     mem_hash_bytes=HASH_BUCKET_BYTES)


@pytest.fixture()
def small_setup():
    ads = [
        ad("books", 1),
        ad("used books", 2),
        ad("cheap used books", 3),
        ad("cheap flights", 4),
    ]
    corpus = AdCorpus(ads)
    workload = Workload(
        [
            (Query.from_text("used books"), 10),
            (Query.from_text("cheap used books"), 5),
            (Query.from_text("flights"), 2),
        ]
    )
    return corpus, workload


class TestQueryLookupCount:
    def test_unbounded(self):
        assert query_lookup_count(3, None) == 7

    def test_bounded(self):
        assert query_lookup_count(5, 2) == 15

    def test_bounded_no_worse(self):
        for q in range(1, 12):
            assert query_lookup_count(q, 3) <= query_lookup_count(q, None)


class TestCostHash:
    def test_linear_in_frequency(self, model):
        q = Query.from_text("a b")
        wl1 = Workload([(q, 1)])
        wl5 = Workload([(q, 5)])
        assert cost_hash(wl5, model, None) == pytest.approx(
            5 * cost_hash(wl1, model, None)
        )

    def test_independent_of_mapping(self, model, small_setup):
        # Only max_words matters, not where ads live.
        _, workload = small_setup
        assert cost_hash(workload, model, 3) == cost_hash(workload, model, 3)

    def test_bounded_cheaper_for_long_queries(self, model):
        q = Query.from_text(" ".join(f"w{i}" for i in range(12)))
        wl = Workload([(q, 1)])
        assert cost_hash(wl, model, 3) < cost_hash(wl, model, None)


class TestAnalyticMatchesExecution:
    def test_identity_mapping(self, model, small_setup):
        corpus, workload = small_setup
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(corpus, tracker=tracker)
        index._word_freq_fn = None  # execution must not truncate here
        for query, frequency in workload:
            for _ in range(frequency):
                index.query(query)
        executed = tracker.stats.modeled_ns(model)
        analytic = total_cost(index, workload, model)
        assert executed == pytest.approx(analytic)

    def test_remapped_index(self, model, small_setup):
        corpus, workload = small_setup
        mapping = {
            frozenset({"cheap", "used", "books"}): frozenset({"used", "books"}),
        }
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(corpus, mapping=mapping, tracker=tracker)
        index._word_freq_fn = None
        for query, frequency in workload:
            for _ in range(frequency):
                index.query(query)
        assert tracker.stats.modeled_ns(model) == pytest.approx(
            total_cost(index, workload, model)
        )

    def test_max_words_index(self, model):
        ads = [ad("a", 1), ad("a b", 2), ad("a b c", 3)]
        corpus = AdCorpus(ads)
        mapping = {frozenset({"a", "b", "c"}): frozenset({"a", "b"})}
        workload = Workload(
            [
                (Query.from_text("a b c d"), 3),
                (Query.from_text("a"), 7),
            ]
        )
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(
            corpus, mapping=mapping, max_words=2, tracker=tracker
        )
        index._word_freq_fn = None
        for query, frequency in workload:
            for _ in range(frequency):
                index.query(query)
        assert tracker.stats.modeled_ns(model) == pytest.approx(
            total_cost(index, workload, model)
        )


class TestCostNodeProperties:
    def test_remapping_reduces_random_accesses(self, model, small_setup):
        corpus, workload = small_setup
        identity = WordSetIndex.from_corpus(corpus)
        mapping = {
            frozenset({"cheap", "used", "books"}): frozenset({"used", "books"}),
        }
        remapped = WordSetIndex.from_corpus(corpus, mapping=mapping)
        # The query "cheap used books" visits 3 nodes before, 2 after
        # (books; used books+cheap used books merged).  Node cost must drop.
        assert cost_node(remapped, workload, model) < cost_node(
            identity, workload, model
        )

    def test_cost_node_is_sum_of_single_nodes(self, model, small_setup):
        corpus, workload = small_setup
        index = WordSetIndex.from_corpus(corpus)
        per_node = sum(
            cost_node_single(node, workload, model)
            for node in index.nodes.values()
        )
        assert per_node == pytest.approx(cost_node(index, workload, model))

    def test_unvisited_node_costs_nothing(self, model):
        index = WordSetIndex.from_corpus(AdCorpus([ad("zzz", 1)]))
        workload = Workload([(Query.from_text("aaa"), 100)])
        assert cost_node(index, workload, model) == 0.0

    def test_weight_superset_monotone(self, model):
        # weight(S') < weight(S'') when S' ⊂ S'' (used in the proof of
        # condition II).  Build two nodes where one has a strict superset
        # of the other's content.
        from repro.core.data_node import DataNode

        small = DataNode(frozenset({"a"}))
        small.add(ad("a b", 1))
        big = DataNode(frozenset({"a"}))
        big.add(ad("a b", 1))
        big.add(ad("a c", 2))
        workload = Workload([(Query.from_text("a b c"), 1)])
        assert cost_node_single(small, workload, model) < cost_node_single(
            big, workload, model
        )
