"""Tests for the inverted-index layout and its traced execution."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.memsim.cache import Cache
from repro.memsim.counters import run_traced_workload
from repro.memsim.inverted_layout import (
    InvertedLayout,
    run_traced_inverted_workload,
)
from repro.memsim.layout import IndexLayout
from repro.memsim.tlb import Tlb
from repro.optimize.remap import build_index


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestInvertedLayout:
    @pytest.fixture()
    def layout(self):
        corpus = AdCorpus([ad(f"w{i} shared", i) for i in range(15)])
        return InvertedLayout(NonRedundantInvertedIndex.from_corpus(corpus))

    def test_every_list_placed(self, layout):
        assert set(layout.list_address) == set(layout.index.lists)

    def test_probe_finds_existing_word(self, layout):
        word = next(iter(layout.index.lists))
        probes = layout.probe_sequence(word)
        assert probes[-1][1] is True

    def test_probe_absent_word(self, layout):
        probes = layout.probe_sequence("definitely_absent")
        assert probes[-1][1] is False

    def test_records_have_unique_addresses(self, layout):
        addresses = list(layout.record_address.values())
        assert len(addresses) == len(set(addresses))

    def test_counters_positive(self, layout):
        queries = [Query.from_text("w3 shared extra")]
        counters = run_traced_inverted_workload(layout, queries)
        assert counters.memory_accesses > 0
        assert counters.branch_predictions > 0


class TestHardwareLevelComparison:
    def test_inverted_touches_more_memory_than_wordset(self):
        """Section VII-A at the machine level: on a corpus with frequent
        keywords, the inverted baseline's candidate fetches touch far more
        memory (pages, cache lines) than the word-set index's probes."""
        generated = generate_corpus(CorpusConfig(num_ads=1_500, seed=8))
        workload = generate_workload(
            generated,
            QueryConfig(num_distinct=200, total_frequency=2_000, seed=2),
        )
        queries = workload.sample_stream(500, seed=4)
        corpus = generated.corpus

        def machine():
            return (
                Tlb(entries=8, page_table_reach=2),
                Cache(size_bytes=16 * 1024, associativity=4),
            )

        tlb_a, cache_a = machine()
        wordset_counters = run_traced_workload(
            IndexLayout(build_index(corpus, None)), queries,
            tlb=tlb_a, cache=cache_a,
        )
        tlb_b, cache_b = machine()
        inverted_counters = run_traced_inverted_workload(
            InvertedLayout(NonRedundantInvertedIndex.from_corpus(corpus)),
            queries,
            tlb=tlb_b,
            cache=cache_b,
        )
        assert (
            inverted_counters.dtlb_misses > wordset_counters.dtlb_misses
        )
        assert (
            inverted_counters.page_walk_cycles
            > wordset_counters.page_walk_cycles
        )
