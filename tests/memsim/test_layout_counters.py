"""Tests for the index layout and traced-workload hardware counters."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.wordhash import wordhash
from repro.core.wordset_index import WordSetIndex
from repro.cost.model import CostModel
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.memsim.counters import run_traced_workload
from repro.memsim.layout import IndexLayout
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestLayout:
    def test_slots_power_of_two_and_sufficient(self):
        corpus = AdCorpus([ad(f"w{i}", i) for i in range(10)])
        layout = IndexLayout(WordSetIndex.from_corpus(corpus))
        assert layout.num_slots & (layout.num_slots - 1) == 0
        assert layout.num_slots >= 10

    def test_every_node_placed(self):
        corpus = AdCorpus([ad(f"w{i} x{i}", i) for i in range(8)])
        index = WordSetIndex.from_corpus(corpus)
        layout = IndexLayout(index)
        assert set(layout.placements) == set(index.nodes)

    def test_nodes_contiguous(self):
        corpus = AdCorpus([ad(f"w{i}", i) for i in range(5)])
        index = WordSetIndex.from_corpus(corpus)
        layout = IndexLayout(index)
        placements = sorted(layout.placements.values(), key=lambda p: p.address)
        for a, b in zip(placements, placements[1:]):
            assert a.address + a.size == b.address

    def test_probe_sequence_finds_key(self):
        corpus = AdCorpus([ad(f"w{i}", i) for i in range(20)])
        index = WordSetIndex.from_corpus(corpus)
        layout = IndexLayout(index)
        for key in index.nodes:
            probes = layout.probe_sequence(key)
            assert probes[-1][1] is True

    def test_probe_sequence_absent_key_ends_empty(self):
        corpus = AdCorpus([ad("solo", 1)])
        layout = IndexLayout(WordSetIndex.from_corpus(corpus))
        probes = layout.probe_sequence(wordhash(frozenset({"absent"})))
        assert probes[-1][1] is False

    def test_entry_addresses_within_node(self):
        corpus = AdCorpus([ad("a b", 1), ad("a b", 2)])
        index = WordSetIndex.from_corpus(corpus)
        layout = IndexLayout(index)
        placement = next(iter(layout.placements.values()))
        for address in placement.entry_addresses:
            assert placement.address < address < placement.address + placement.size

    def test_heap_page_aligned(self):
        corpus = AdCorpus([ad("x", 1)])
        layout = IndexLayout(WordSetIndex.from_corpus(corpus))
        assert layout.heap_base % 4096 == 0


@pytest.fixture(scope="module")
def traced_setup():
    generated = generate_corpus(CorpusConfig(num_ads=1_500, seed=21))
    workload = generate_workload(
        generated, QueryConfig(num_distinct=150, total_frequency=1_000, seed=3)
    )
    queries = workload.sample_stream(600, seed=9)
    corpus = generated.corpus
    identity = build_index(corpus, None)
    mapping = optimize_mapping(
        corpus,
        workload,
        CostModel(),
        OptimizerConfig(max_words=10),
    )
    remapped = build_index(corpus, mapping)
    return corpus, queries, identity, remapped


class TestTracedWorkload:
    def test_counters_positive(self, traced_setup):
        _, queries, identity, _ = traced_setup
        counters = run_traced_workload(IndexLayout(identity), queries[:100])
        assert counters.memory_accesses > 0
        assert counters.branch_predictions > 0

    def test_remapping_reduces_page_walks(self, traced_setup):
        """Section VII-C: page-walk cycles were >40% higher without
        re-mapping; DTLB misses only ~12% higher.  Directionally: the
        re-mapped structure must spend fewer page-walk cycles."""
        _, queries, identity, remapped = traced_setup
        c_identity = run_traced_workload(IndexLayout(identity), queries)
        c_remapped = run_traced_workload(IndexLayout(remapped), queries)
        assert c_identity.page_walk_cycles >= c_remapped.page_walk_cycles

    def test_remapping_reduces_l2_misses(self, traced_setup):
        _, queries, identity, remapped = traced_setup
        c_identity = run_traced_workload(IndexLayout(identity), queries)
        c_remapped = run_traced_workload(IndexLayout(remapped), queries)
        assert c_identity.l2_misses >= c_remapped.l2_misses

    def test_ratio_report(self, traced_setup):
        _, queries, identity, remapped = traced_setup
        c_identity = run_traced_workload(IndexLayout(identity), queries[:200])
        c_remapped = run_traced_workload(IndexLayout(remapped), queries[:200])
        ratios = c_identity.ratio_to(c_remapped)
        assert set(ratios) == {
            "memory_accesses",
            "dtlb_misses",
            "page_walk_cycles",
            "l2_misses",
            "branch_mispredictions",
        }
        assert all(v > 0 for v in ratios.values())
