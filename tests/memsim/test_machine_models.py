"""Tests for the TLB, cache, and branch-predictor models."""

import pytest

from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import Cache
from repro.memsim.tlb import Tlb


class TestTlb:
    def test_first_access_misses(self):
        tlb = Tlb()
        tlb.access(0x1000)
        assert tlb.misses == 1
        assert tlb.hits == 0

    def test_repeat_access_hits(self):
        tlb = Tlb()
        tlb.access(0x1000)
        tlb.access(0x1008)
        assert tlb.hits == 1

    def test_span_touches_both_pages(self):
        tlb = Tlb(page_size=4096)
        tlb.access(4090, size=20)  # crosses a page boundary
        assert tlb.misses == 2

    def test_lru_eviction(self):
        tlb = Tlb(entries=2, page_size=4096)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(2 * 4096)  # evicts page 0
        tlb.access(0 * 4096)
        assert tlb.misses == 4

    def test_lru_refresh(self):
        tlb = Tlb(entries=2, page_size=4096)
        tlb.access(0 * 4096)
        tlb.access(1 * 4096)
        tlb.access(0 * 4096)  # refresh page 0
        tlb.access(2 * 4096)  # evicts page 1, not 0
        tlb.access(0 * 4096)
        assert tlb.hits == 2

    def test_cold_walks_cost_more(self):
        tlb = Tlb(entries=4, page_size=4096, page_table_reach=16)
        # Two misses to far-apart regions: both cold.
        tlb.access(0)
        tlb.access(10_000 * 4096)
        cold_cycles = tlb.walk_cycles
        # A nearby page in the first region: warm walk.
        tlb.access(1 * 4096)
        warm_delta = tlb.walk_cycles - cold_cycles
        assert warm_delta == tlb.walk_cycles_warm
        assert cold_cycles == 2 * tlb.walk_cycles_cold

    def test_miss_rate(self):
        tlb = Tlb()
        assert tlb.miss_rate() == 0.0
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate() == 0.5

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)


class TestCache:
    def test_first_access_misses(self):
        cache = Cache()
        cache.access(0)
        assert cache.misses == 1

    def test_same_line_hits(self):
        cache = Cache(line_bytes=64)
        cache.access(0)
        cache.access(63)
        assert cache.hits == 1

    def test_adjacent_line_misses(self):
        cache = Cache(line_bytes=64)
        cache.access(0)
        cache.access(64)
        assert cache.misses == 2

    def test_span_touches_lines(self):
        cache = Cache(line_bytes=64)
        cache.access(0, size=200)  # lines 0..3
        assert cache.misses == 4

    def test_associativity_conflict(self):
        cache = Cache(size_bytes=2 * 64 * 4, associativity=2, line_bytes=64)
        # 4 sets, 2 ways.  Three lines mapping to set 0:
        stride = 4 * 64
        cache.access(0 * stride)
        cache.access(1 * stride)
        cache.access(2 * stride)  # evicts line 0
        cache.access(0 * stride)
        assert cache.misses == 4

    def test_working_set_within_capacity_all_hits_on_second_pass(self):
        cache = Cache(size_bytes=64 * 1024, associativity=8, line_bytes=64)
        for address in range(0, 32 * 1024, 64):
            cache.access(address)
        misses_first = cache.misses
        for address in range(0, 32 * 1024, 64):
            cache.access(address)
        assert cache.misses == misses_first

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, associativity=8, line_bytes=64)


class TestBranchPredictor:
    def test_biased_branch_rarely_mispredicts(self):
        predictor = BranchPredictor()
        for _ in range(100):
            predictor.branch("site", True)
        assert predictor.mispredictions <= 2

    def test_alternating_branch_mispredicts_heavily(self):
        predictor = BranchPredictor()
        for i in range(100):
            predictor.branch("site", i % 2 == 0)
        assert predictor.misprediction_rate() > 0.4

    def test_sites_independent(self):
        predictor = BranchPredictor()
        for _ in range(50):
            predictor.branch("a", True)
            predictor.branch("b", False)
        assert predictor.mispredictions <= 4

    def test_counts(self):
        predictor = BranchPredictor()
        predictor.branch("x", True)
        assert predictor.predictions == 1

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            BranchPredictor(initial=7)
