"""Tests for the two-level cache hierarchy."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.counters import run_traced_workload
from repro.memsim.layout import IndexLayout


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestHierarchy:
    def test_l1_hit_never_reaches_l2(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.access(0)  # L1 hit
        assert hierarchy.l1.hits == 1
        assert hierarchy.l2.accesses == 1  # only the first (miss) went down

    def test_l1_miss_goes_to_l2(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.access(1 << 20)
        assert hierarchy.l2.accesses == 2

    def test_l2_can_absorb_l1_capacity_misses(self):
        # Working set fits L2 but not L1: second pass misses L1, hits L2.
        hierarchy = CacheHierarchy(
            l1=Cache(size_bytes=4 * 64 * 2, associativity=2),
            l2=Cache(size_bytes=64 * 1024, associativity=8),
        )
        addresses = list(range(0, 64 * 64, 64))
        for address in addresses:
            hierarchy.access(address)
        l2_misses_first = hierarchy.l2.misses
        for address in addresses:
            hierarchy.access(address)
        assert hierarchy.l1.misses > len(addresses)  # L1 thrashes
        assert hierarchy.l2.misses == l2_misses_first  # L2 holds it all

    def test_misses_property_is_l2(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        assert hierarchy.misses == hierarchy.l2.misses == 1
        assert hierarchy.l1_misses == 1

    def test_span_accesses(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0, size=200)  # 4 lines
        assert hierarchy.l1.accesses == 4

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1=Cache(size_bytes=4096, associativity=4, line_bytes=32),
                l2=Cache(size_bytes=8192, associativity=4, line_bytes=64),
            )


class TestTracedWorkloadWithHierarchy:
    def test_counters_include_l1(self):
        corpus = AdCorpus([ad(f"w{i} x{i}", i) for i in range(30)])
        layout = IndexLayout(WordSetIndex.from_corpus(corpus))
        queries = [Query.from_text(f"w{i} x{i} extra") for i in range(30)]
        counters = run_traced_workload(
            layout, queries, cache=CacheHierarchy()
        )
        assert counters.l1_misses >= counters.l2_misses > 0

    def test_single_level_reports_zero_l1(self):
        corpus = AdCorpus([ad("a b", 1)])
        layout = IndexLayout(WordSetIndex.from_corpus(corpus))
        counters = run_traced_workload(
            layout, [Query.from_text("a b")], cache=Cache()
        )
        assert counters.l1_misses == 0
