"""Incremental-build coverage for the inverted baselines."""

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex, build_from_ads
from repro.invindex.redundant import RedundantInvertedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestIncrementalInserts:
    def test_counting_insert_then_query(self):
        index = CountingInvertedIndex()
        index.insert(ad("used books", 1))
        index.insert(ad("books", 2))
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}
        assert len(index) == 2

    def test_redundant_insert_then_query(self):
        index = RedundantInvertedIndex()
        index.insert(ad("used books", 1))
        result = index.query(Query.from_text("used books today"))
        assert [a.info.listing_id for a in result] == [1]

    def test_nonredundant_incremental_key_choice(self):
        # Incremental insertion requires the caller to pick the key word;
        # the rarest-word policy needs corpus statistics.
        index = NonRedundantInvertedIndex()
        index.insert(ad("used books", 1), key_word="used")
        result = index.query(Query.from_text("used books"))
        assert [a.info.listing_id for a in result] == [1]

    def test_build_from_ads_helper(self):
        index = build_from_ads([ad("used books", 1), ad("books", 2)])
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}

    def test_index_bytes_grow_with_inserts(self):
        index = CountingInvertedIndex()
        index.insert(ad("one two", 1))
        first = index.index_bytes()
        index.insert(ad("three four", 2))
        assert index.index_bytes() > first


class TestIterableConstruction:
    def test_wordset_index_from_plain_iterable(self):
        ads = [ad("used books", 1), ad("books", 2)]
        index = WordSetIndex.from_corpus(iter(ads))
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}

    def test_truncation_without_corpus_statistics(self):
        # Built from an iterable, the index has no word frequencies; long
        # queries truncate deterministically instead of by selectivity.
        ads = [ad("aa bb", 1)]
        index = WordSetIndex.from_corpus(iter(ads), max_query_words=3)
        q = Query.from_text("aa bb cc dd ee ff")
        result = index.query(q)
        # "aa" and "bb" sort into the first 3 of the 6 words, so the match
        # survives the cutoff.
        assert [a.info.listing_id for a in result] == [1]

    def test_counting_from_adcorpus_and_iterable_agree(self):
        ads = [ad(f"w{i} common", i) for i in range(10)]
        a = CountingInvertedIndex.from_corpus(AdCorpus(ads))
        b = CountingInvertedIndex()
        for x in ads:
            b.insert(x)
        q = Query.from_text("w3 common")
        assert sorted(x.info.listing_id for x in a.query(q)) == sorted(
            x.info.listing_id for x in b.query(q)
        )
