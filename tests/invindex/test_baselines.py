"""Correctness tests for the three inverted-index baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.invindex import (
    CountingInvertedIndex,
    NonRedundantInvertedIndex,
    RedundantInvertedIndex,
)


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


BASELINES = [
    NonRedundantInvertedIndex,
    CountingInvertedIndex,
    RedundantInvertedIndex,
]


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1),
            ad("comic books", 2),
            ad("books", 3),
            ad("cheap used books", 4),
            ad("cheap flights", 5),
        ]
    )


@pytest.mark.parametrize("cls", BASELINES)
class TestBroadMatchCorrectness:
    def test_paper_example(self, cls, corpus):
        index = cls.from_corpus(corpus)
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 3, 4}

    def test_no_match(self, cls, corpus):
        index = cls.from_corpus(corpus)
        assert index.query(Query.from_text("red shoes")) == []

    def test_single_word_query(self, cls, corpus):
        index = cls.from_corpus(corpus)
        result = index.query(Query.from_text("books"))
        assert {a.info.listing_id for a in result} == {3}

    def test_no_duplicates_in_results(self, cls, corpus):
        index = cls.from_corpus(corpus)
        result = index.query(Query.from_text("cheap used comic books"))
        ids = [a.info.listing_id for a in result]
        assert len(ids) == len(set(ids))

    def test_len(self, cls, corpus):
        assert len(cls.from_corpus(corpus)) == 5


class TestNonRedundantStructure:
    def test_each_ad_in_exactly_one_list(self, corpus):
        index = NonRedundantInvertedIndex.from_corpus(corpus)
        total = sum(len(p) for p in index.lists.values())
        assert total == len(corpus)

    def test_indexed_under_rarest_word(self, corpus):
        index = NonRedundantInvertedIndex.from_corpus(corpus)
        # "cheap used books": cheap has corpus freq 2 < used 2? used=2,
        # cheap=2, books=4 -> tie broken lexically: cheap.
        assert any(p.ad.info.listing_id == 4 for p in index.lists["cheap"])

    def test_insert_rejects_foreign_word(self):
        index = NonRedundantInvertedIndex()
        with pytest.raises(ValueError):
            index.insert(ad("used books"), "flights")

    def test_index_bytes(self, corpus):
        index = NonRedundantInvertedIndex.from_corpus(corpus)
        assert index.index_bytes() == 8 * len(corpus)

    def test_list_lengths_ranked(self, corpus):
        index = NonRedundantInvertedIndex.from_corpus(corpus)
        ranked = index.list_lengths_ranked()
        assert ranked == sorted(ranked, reverse=True)


class TestCountingStructure:
    def test_fully_redundant(self, corpus):
        index = CountingInvertedIndex.from_corpus(corpus)
        total = sum(len(p) for p in index.lists.values())
        assert total == sum(len(a.words) for a in corpus)

    def test_posting_bytes_include_count(self, corpus):
        index = CountingInvertedIndex.from_corpus(corpus)
        plist = index.lists["books"]
        assert plist.posting_bytes() == 9

    def test_no_merge_traverses_same_postings(self, corpus):
        from repro.cost.accounting import AccessTracker

        t1, t2 = AccessTracker(), AccessTracker()
        i1 = CountingInvertedIndex.from_corpus(corpus, tracker=t1)
        i2 = CountingInvertedIndex.from_corpus(corpus, tracker=t2)
        q = Query.from_text("cheap used books")
        i1.query(q)
        i2.query_broad_no_merge(q)
        assert (
            t1.stats.postings_traversed == t2.stats.postings_traversed
        )
        assert t1.stats.bytes_scanned == t2.stats.bytes_scanned


class TestAccounting:
    def test_counting_reads_more_bytes_than_nonredundant_on_frequent_words(self):
        """The crux of Section VII-A: frequent query words explode the
        counting index's traversal volume."""
        from repro.cost.accounting import AccessTracker

        ads = [ad(f"books w{i}", i) for i in range(200)]
        ads.append(ad("books", 999))
        corpus = AdCorpus(ads)
        t_nr, t_cnt = AccessTracker(), AccessTracker()
        nr = NonRedundantInvertedIndex.from_corpus(corpus, tracker=t_nr)
        cnt = CountingInvertedIndex.from_corpus(corpus, tracker=t_cnt)
        q = Query.from_text("books w5")
        assert {a.info.listing_id for a in nr.query(q)} == {5, 999}
        assert {a.info.listing_id for a in cnt.query(q)} == {5, 999}
        # The counting index must traverse the 201-long "books" list; the
        # non-redundant index indexed those ads under their rare w_i word.
        assert t_cnt.stats.postings_traversed > t_nr.stats.postings_traversed

    def test_tracker_queries_counted(self, corpus):
        from repro.cost.accounting import AccessTracker

        tracker = AccessTracker()
        index = RedundantInvertedIndex.from_corpus(corpus, tracker=tracker)
        index.query(Query.from_text("books"))
        index.query(Query.from_text("flights"))
        assert tracker.stats.queries == 2


# ---------------------------------------------------------------------- #
# Property-based equivalence across all four structures.

words_alphabet = [f"w{i}" for i in range(10)]


def phrase_strategy(max_len=4):
    return st.lists(
        st.sampled_from(words_alphabet), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def corpus_and_queries(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=20))
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(st.lists(phrase_strategy(max_len=6), min_size=1, max_size=6))
    return ads, [Query.from_text(q) for q in queries]


class TestCrossStructureEquivalence:
    @given(corpus_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_all_structures_agree_with_oracle(self, data):
        from repro.core.wordset_index import WordSetIndex

        ads, queries = data
        corpus = AdCorpus(ads)
        structures = [cls.from_corpus(corpus) for cls in BASELINES]
        structures.append(WordSetIndex.from_corpus(corpus))
        for query in queries:
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            for structure in structures:
                got = sorted(
                    a.info.listing_id for a in structure.query(query)
                )
                assert got == expected, type(structure).__name__
