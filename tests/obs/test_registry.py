"""Unit tests for the metrics registry primitives and exposition."""

import json

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_or_none,
    uniform_histogram,
)
from repro.obs.export import prometheus_name, to_json, to_prometheus, write_metrics


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("index.probes")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_name_collision_across_kinds_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogramPercentiles:
    def test_empty_histogram_reports_zero(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.p50 == 0.0
        assert hist.p95 == 0.0
        assert hist.p99 == 0.0
        assert hist.mean() == 0.0

    def test_single_sample_reports_exactly_that_sample(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        hist.observe(1.7)
        assert hist.count == 1
        assert hist.p50 == pytest.approx(1.7)
        assert hist.p99 == pytest.approx(1.7)
        assert hist.mean() == pytest.approx(1.7)

    def test_percentiles_are_monotone_and_clamped(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0, 8.0))
        for sample in (0.5, 1.5, 3.0, 3.5, 7.0):
            hist.observe(sample)
        values = [hist.percentile(p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)
        assert values[0] >= 0.5
        assert values[-1] <= 7.0

    def test_overflow_samples_land_in_the_inf_bucket(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(100.0)
        assert hist.count == 1
        # Clamped to the observed max, not to the finite bucket bound.
        assert hist.p99 == pytest.approx(100.0)

    def test_bounds_must_be_ascending(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_uniform_histogram_matches_floor_bucketing(self):
        hist = uniform_histogram([1.0, 2.0, 6.0, 7.0, 12.0], bucket_width=5.0)
        assert hist.bucket_fractions() == {0.0: 0.4, 5.0: 0.4, 10.0: 0.2}


class TestRegistryLifecycle:
    def test_snapshot_contains_all_sections(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert registry.counter("c") is counter
        assert counter.value == 0

    def test_span_records_elapsed_milliseconds(self):
        registry = MetricsRegistry()
        with registry.span("probe"):
            pass
        hist = registry.get("span.probe")
        assert hist.count == 1
        assert hist.mean() >= 0.0


class TestNullRegistry:
    def test_disabled_and_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("c").inc(5)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.collect() == []
        assert NullRegistry().snapshot()["counters"] == {}

    def test_active_or_none_normalisation(self):
        live = MetricsRegistry()
        assert active_or_none(live) is live
        assert active_or_none(None) is None
        assert active_or_none(NULL_REGISTRY) is None


class TestExposition:
    def test_prometheus_name_sanitisation(self):
        assert prometheus_name("index.probes") == "repro_index_probes"
        assert prometheus_name("serve.filtered.budget") == (
            "repro_serve_filtered_budget"
        )

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("index.probes", help="Probes issued").inc(7)
        registry.histogram("span.probe", bounds=(1.0, 2.0)).observe(1.5)
        text = to_prometheus(registry)
        assert "# TYPE repro_index_probes counter" in text
        assert "repro_index_probes_total 7" in text
        assert '# HELP repro_index_probes Probes issued' in text
        assert 'repro_span_probe_bucket{le="+Inf"} 1' in text
        assert "repro_span_probe_count 1" in text

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        decoded = json.loads(to_json(registry))
        assert decoded["counters"] == {"c": 2}

    def test_write_metrics_picks_format_by_extension(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        write_metrics(registry, json_path)
        write_metrics(registry, prom_path)
        assert json.loads(json_path.read_text())["counters"] == {"c": 1}
        assert "repro_c_total 1" in prom_path.read_text()
