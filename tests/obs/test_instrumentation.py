"""Acceptance tests: one served query yields one correlated snapshot.

The ISSUE's acceptance criterion: a single query through
``AdServer.serve`` with metrics enabled must produce a snapshot containing
the probe count, node-scan count, cache hit/miss, filter drops, auction
outcome, and per-stage span timings — and the measured probe count must
equal the closed-form ``WordSetIndex.probe_count(query)`` on both the
pruned fast path and the exhaustive path.
"""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.obs import SPAN_PREFIX, MetricsRegistry
from repro.perf.batch import BatchQueryEngine
from repro.serving.result_cache import CachedIndex
from repro.serving.server import AdServer


def ad(text, listing_id=0, bid=1000, campaign=0, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            campaign_id=campaign,
            bid_price_micros=bid,
            exclusion_phrases=tuple(exclusions),
        ),
    )


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("cheap used books", 1, bid=2000),
            ad("used books", 2, bid=1500),
            ad("books", 3, bid=1200, exclusions=("cheap",)),
            ad("used books", 4, bid=900, campaign=7),
            ad("rare maps", 5, bid=800),
        ]
    )


class TestServePipelineSnapshot:
    @pytest.mark.parametrize("fast_path", [True, False])
    def test_one_query_yields_a_full_snapshot(self, corpus, fast_path):
        obs = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, fast_path=fast_path, obs=obs)
        cached = CachedIndex(index, obs=obs)
        server = AdServer(
            cached,
            slots=2,
            campaign_budgets_micros={7: 0},  # campaign 7 is exhausted
            obs=obs,
        )
        query = Query.from_text("cheap used books")

        result = server.serve(query)
        snap = obs.snapshot()
        counters = snap["counters"]

        # Probe accounting: measured == closed-form, on both paths.
        assert counters["index.probes"] == index.probe_count(query)
        assert counters["index.node_scans"] >= 1
        assert counters["index.queries"] == 1

        # Cache: first sight of the query is a miss, nothing hit yet.
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 0

        # Filters: the exclusion-phrase ad and the exhausted-budget ad.
        assert counters["serve.candidates"] == 4
        assert counters["serve.filtered.exclusion"] == 1
        assert counters["serve.filtered.budget"] == 1
        assert counters["serve.filtered.frequency_cap"] == 0

        # Auction outcome: two eligible ads, two slots awarded.
        assert counters["serve.impressions"] == 2
        assert counters["serve.auctions_unfilled"] == 0
        assert len(result.outcome.awards) == 2

        # Per-stage span timings, one sample each.
        for stage in ("probe", "scan", "cache", "retrieve", "filter", "auction"):
            hist = snap["histograms"][f"{SPAN_PREFIX}{stage}"]
            assert hist["count"] >= 1, stage

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_probe_counter_tracks_closed_form_across_queries(
        self, corpus, fast_path
    ):
        obs = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, fast_path=fast_path, obs=obs)
        queries = [
            Query.from_text("cheap used books"),
            Query.from_text("used books today"),
            Query.from_text("rare maps of iceland"),
            Query.from_text("nothing matches here"),
        ]
        expected = sum(index.probe_count(q) for q in queries)
        for query in queries:
            index.query(query)
        assert obs.snapshot()["counters"]["index.probes"] == expected

    def test_repeat_query_is_a_cache_hit_and_skips_the_index(self, corpus):
        obs = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, obs=obs)
        cached = CachedIndex(index, obs=obs)
        query = Query.from_text("used books")
        cached.query(query)
        cached.query(query)
        counters = obs.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["index.queries"] == 1  # second lookup never probed

    def test_click_moves_revenue_counters(self, corpus):
        obs = MetricsRegistry()
        server = AdServer(WordSetIndex.from_corpus(corpus, obs=obs), obs=obs)
        result = server.serve(Query.from_text("cheap used books"))
        assert obs.value("serve.revenue_micros") == 0  # impressions are free
        price = server.record_click(result, slot=0)
        counters = obs.snapshot()["counters"]
        assert counters["serve.clicks"] == 1
        assert counters["serve.revenue_micros"] == price
        assert server.stats.snapshot()["clicks"] == 1

    def test_batch_engine_records_batch_metrics(self, corpus):
        obs = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, obs=obs)
        engine = BatchQueryEngine(index, obs=obs)
        queries = [
            Query.from_text("used books"),
            Query.from_text("books used"),  # same word-set -> deduped
            Query.from_text("rare maps"),
        ]
        engine.query_broad_batch(queries)
        counters = obs.snapshot()["counters"]
        assert counters["batch.batches"] == 1
        assert counters["batch.queries"] == 3
        assert counters["batch.distinct_wordsets"] == 2
        assert obs.snapshot()["histograms"][f"{SPAN_PREFIX}batch"]["count"] == 1


class TestOffByDefault:
    def test_no_registry_means_no_observation_state(self, corpus):
        index = WordSetIndex.from_corpus(corpus)
        assert index._obs is None
        cached = CachedIndex(index)
        server = AdServer(cached)
        result = server.serve(Query.from_text("cheap used books"))
        assert result.outcome.awards
        assert server.stats.queries == 1  # bespoke stats still work

    def test_results_identical_with_and_without_metrics(self, corpus):
        plain = WordSetIndex.from_corpus(corpus)
        observed = WordSetIndex.from_corpus(corpus, obs=MetricsRegistry())
        for text in ("cheap used books", "used books", "rare maps", "x"):
            query = Query.from_text(text)
            assert [a.info.listing_id for a in plain.query(query)] == [
                a.info.listing_id for a in observed.query(query)
            ]

    def test_bind_obs_can_detach(self, corpus):
        obs = MetricsRegistry()
        index = WordSetIndex.from_corpus(corpus, obs=obs)
        index.bind_obs(None)
        index.query(Query.from_text("used books"))
        assert obs.snapshot()["counters"]["index.queries"] == 0


class TestDistsimBridge:
    def test_run_metrics_histogram_delegates_to_shared_histogram(self):
        from repro.distsim.metrics import RunMetrics

        metrics = RunMetrics(
            latencies_ms=(1.0, 2.0, 6.0, 7.0, 12.0),
            duration_ms=100.0,
            cpu_utilization=0.5,
            offered_rps=50.0,
        )
        hist = metrics.to_histogram(bucket_ms=5.0)
        assert hist.count == 5
        assert metrics.latency_histogram(bucket_ms=5.0) == {
            0.0: 0.4,
            5.0: 0.4,
            10.0: 0.2,
        }
