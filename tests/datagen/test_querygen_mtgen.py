"""Tests for query workload and MT-length generation."""

import pytest

from repro.core.matching import naive_broad_match
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.mtgen import (
    MT_LENGTH_PROBS,
    drop_off_ratio,
    mt_length_histogram,
)
from repro.datagen.querygen import QueryConfig, generate_workload, sample_trace
from repro.datagen.zipf import fit_power_law_slope


@pytest.fixture(scope="module")
def generated():
    return generate_corpus(CorpusConfig(num_ads=2_000, seed=11))


@pytest.fixture(scope="module")
def workload(generated):
    return generate_workload(
        generated, QueryConfig(num_distinct=400, total_frequency=20_000, seed=5)
    )


class TestWorkloadGeneration:
    def test_distinct_count(self, workload):
        assert len(workload) == 400

    def test_total_frequency_near_target(self, workload):
        assert workload.total_frequency >= 20_000 * 0.9

    def test_power_law_frequencies(self, workload):
        freqs = sorted((f for _, f in workload), reverse=True)
        slope = fit_power_law_slope(freqs[:200])
        assert -1.6 < slope < -0.5

    def test_anchored_queries_produce_matches(self, generated, workload):
        corpus = generated.corpus
        with_hits = sum(
            1
            for query, _ in workload
            if naive_broad_match(corpus, query)
        )
        # ~70% anchored; nearly all anchored queries must hit.
        assert with_hits >= len(workload) * 0.4

    def test_some_queries_miss(self, generated, workload):
        corpus = generated.corpus
        misses = sum(
            1 for query, _ in workload if not naive_broad_match(corpus, query)
        )
        assert misses > 0

    def test_deterministic(self, generated):
        config = QueryConfig(num_distinct=50, total_frequency=500, seed=9)
        a = generate_workload(generated, config)
        b = generate_workload(generated, config)
        assert sorted(
            (q.tokens, f) for q, f in a
        ) == sorted((q.tokens, f) for q, f in b)

    def test_sample_trace(self, workload):
        trace = sample_trace(workload, 300, seed=1)
        assert len(trace) == 300
        distinct = {q for q in trace}
        assert distinct <= set(workload.distinct_queries())


class TestMtLengths:
    def test_probs_sum_to_one(self):
        assert sum(MT_LENGTH_PROBS) == pytest.approx(1.0)

    def test_histogram_mode_at_three(self):
        histogram = mt_length_histogram(20_000, seed=3)
        assert max(histogram, key=histogram.get) == 3

    def test_gradual_tail_vs_bids(self):
        """Fig 3's point: MT drops off much more slowly than bids."""
        from repro.datagen.corpus import generate_corpus as gen

        mt = mt_length_histogram(20_000, seed=3)
        bids = gen(CorpusConfig(num_ads=20_000, seed=3)).corpus.length_histogram()
        assert drop_off_ratio(mt) < drop_off_ratio(bids)

    def test_lengths_in_range(self):
        histogram = mt_length_histogram(1_000, seed=1)
        assert set(histogram) <= set(range(1, 8))

    def test_deterministic(self):
        assert mt_length_histogram(500, seed=2) == mt_length_histogram(500, seed=2)
