"""Tests that the synthetic corpus reproduces the paper's distributions."""

import pytest

from repro.datagen.corpus import (
    BID_LENGTH_PROBS,
    CorpusConfig,
    generate_corpus,
    length_cumulative_fractions,
)
from repro.datagen.zipf import fit_power_law_slope


@pytest.fixture(scope="module")
def generated():
    return generate_corpus(CorpusConfig(num_ads=8_000, seed=42))


class TestCalibration:
    def test_length_probs_sum_to_one(self):
        assert sum(BID_LENGTH_PROBS) == pytest.approx(1.0)

    def test_fig1_cumulative_fractions(self, generated):
        """Paper: 62% of bids <= 3 words, 96% <= 5, 99.8% <= 8."""
        cumulative = length_cumulative_fractions(generated.corpus)
        assert cumulative[3] == pytest.approx(0.62, abs=0.03)
        assert cumulative[5] == pytest.approx(0.96, abs=0.02)
        assert cumulative[8] >= 0.99

    def test_fig1_mode_at_three(self, generated):
        histogram = generated.corpus.length_histogram()
        assert max(histogram, key=histogram.get) == 3

    def test_fig2_wordset_frequencies_zipf(self, generated):
        """Word-set frequencies follow a Zipf (straight log-log) law."""
        ranked = generated.corpus.wordset_frequencies_ranked()[:500]
        slope = fit_power_law_slope(ranked)
        assert -1.6 < slope < -0.4

    def test_fig7_keywords_more_skewed_than_wordsets(self, generated):
        """The crux of the paper's Fig 7: keyword frequencies are far more
        skewed than word-set frequencies."""
        corpus = generated.corpus
        top_word = corpus.word_frequencies_ranked()[0]
        top_set = corpus.wordset_frequencies_ranked()[0]
        assert top_word > top_set

    def test_most_wordsets_have_few_ads(self, generated):
        """Fig 2's long tail: the median word-set has very few ads."""
        ranked = generated.corpus.wordset_frequencies_ranked()
        median = ranked[len(ranked) // 2]
        assert median <= 3


class TestDeterminismAndShape:
    def test_deterministic(self):
        a = generate_corpus(CorpusConfig(num_ads=500, seed=7))
        b = generate_corpus(CorpusConfig(num_ads=500, seed=7))
        assert [ad.phrase for ad in a.corpus] == [ad.phrase for ad in b.corpus]

    def test_seed_changes_corpus(self):
        a = generate_corpus(CorpusConfig(num_ads=500, seed=7))
        b = generate_corpus(CorpusConfig(num_ads=500, seed=8))
        assert [ad.phrase for ad in a.corpus] != [ad.phrase for ad in b.corpus]

    def test_num_ads(self, generated):
        assert len(generated.corpus) == 8_000

    def test_listing_ids_unique(self, generated):
        ids = [ad.info.listing_id for ad in generated.corpus]
        assert len(set(ids)) == len(ids)

    def test_templates_cover_corpus(self, generated):
        template_set = set(generated.templates)
        assert all(ad.words in template_set for ad in generated.corpus)

    def test_some_exclusions_present(self, generated):
        assert any(
            ad.info.exclusion_phrases for ad in generated.corpus
        )

    def test_explicit_template_count(self):
        config = CorpusConfig(num_ads=1000, num_templates=50, seed=1)
        generated = generate_corpus(config)
        assert len(generated.templates) == 50
        assert len(generated.corpus.distinct_wordsets()) <= 50
