"""Tests for Zipf samplers and power-law helpers."""

import pytest

from repro.datagen.zipf import ZipfSampler, fit_power_law_slope, zipf_frequencies


class TestZipfSampler:
    def test_rank_range(self):
        sampler = ZipfSampler(10, seed=1)
        samples = sampler.sample_many(500)
        assert all(1 <= r <= 10 for r in samples)

    def test_head_heavier_than_tail(self):
        sampler = ZipfSampler(100, exponent=1.2, seed=2)
        samples = sampler.sample_many(5000)
        assert samples.count(1) > samples.count(50) + samples.count(51)

    def test_deterministic(self):
        a = ZipfSampler(50, seed=3).sample_many(100)
        b = ZipfSampler(50, seed=3).sample_many(100)
        assert a == b

    def test_seed_changes_stream(self):
        a = ZipfSampler(50, seed=3).sample_many(100)
        b = ZipfSampler(50, seed=4).sample_many(100)
        assert a != b

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(20, exponent=1.0)
        assert sum(sampler.probability(r) for r in range(1, 21)) == pytest.approx(1.0)

    def test_probability_decreasing(self):
        sampler = ZipfSampler(20, exponent=1.0)
        probs = [sampler.probability(r) for r in range(1, 21)]
        assert probs == sorted(probs, reverse=True)

    def test_exponent_zero_uniform(self):
        sampler = ZipfSampler(4, exponent=0.0)
        for r in range(1, 5):
            assert sampler.probability(r) == pytest.approx(0.25)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, exponent=-1)
        with pytest.raises(ValueError):
            ZipfSampler(5).probability(6)


class TestZipfFrequencies:
    def test_all_positive(self):
        freqs = zipf_frequencies(100, 10_000)
        assert all(f >= 1 for f in freqs)

    def test_head_dominates(self):
        freqs = zipf_frequencies(100, 10_000)
        assert freqs[0] > 10 * freqs[-1]

    def test_descending(self):
        freqs = zipf_frequencies(50, 5_000)
        assert freqs == sorted(freqs, reverse=True)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_frequencies(10, 5)


class TestFitSlope:
    def test_recovers_exponent(self):
        # Perfect Zipf data with exponent 1.0.
        freqs = [int(10_000 / r) for r in range(1, 200)]
        slope = fit_power_law_slope(freqs)
        assert slope == pytest.approx(-1.0, abs=0.05)

    def test_steeper_distribution_steeper_slope(self):
        shallow = [int(10_000 / r) for r in range(1, 100)]
        steep = [int(10_000 / r**2) + 1 for r in range(1, 100)]
        assert fit_power_law_slope(steep) < fit_power_law_slope(shallow)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            fit_power_law_slope([5])
