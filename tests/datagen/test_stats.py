"""Tests for corpus/workload profiling."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query, Workload
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.datagen.stats import profile_corpus, profile_workload


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestCorpusProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        generated = generate_corpus(CorpusConfig(num_ads=3_000, seed=6))
        return profile_corpus(generated.corpus)

    def test_counts(self, profile):
        assert profile.num_ads == 3_000
        assert 0 < profile.num_distinct_wordsets <= 3_000

    def test_fig1_anchors(self, profile):
        assert profile.cumulative_len_3 == pytest.approx(0.62, abs=0.05)
        assert profile.cumulative_len_5 == pytest.approx(0.96, abs=0.03)
        assert profile.cumulative_len_8 >= 0.99

    def test_fig7_skew(self, profile):
        assert profile.top_keyword_frequency > profile.top_wordset_frequency

    def test_superset_sharing_present(self, profile):
        # The generator's hierarchical templates guarantee headroom.
        assert profile.superset_fraction > 0.1

    def test_zipf_slope(self, profile):
        assert profile.wordset_zipf_slope is not None
        assert -2.0 < profile.wordset_zipf_slope < -0.3

    def test_summary_text(self, profile):
        text = profile.summary()
        assert "bid lengths" in text and "Fig 7" in text

    def test_small_handmade_corpus(self):
        corpus = AdCorpus([ad("a b", 1), ad("a b c", 2), ad("x", 3)])
        profile = profile_corpus(corpus)
        # {a,b} ⊂ {a,b,c}: one of three sets contains another.
        assert profile.superset_fraction == pytest.approx(1 / 3)
        assert profile.mean_bid_words == pytest.approx((2 + 3 + 1) / 3)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            profile_corpus(AdCorpus())


class TestWorkloadProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        generated = generate_corpus(CorpusConfig(num_ads=1_000, seed=2))
        workload = generate_workload(
            generated,
            QueryConfig(num_distinct=500, total_frequency=20_000, seed=9),
        )
        return profile_workload(workload)

    def test_counts(self, profile):
        assert profile.num_distinct == 500
        assert profile.total_frequency >= 18_000

    def test_head_concentration(self, profile):
        # Zipf head: 1% of queries carry far more than 1% of traffic.
        assert profile.head_mass_top_1pct > 0.05

    def test_query_lengths(self, profile):
        assert 1.0 < profile.mean_query_words < 8.0
        assert profile.max_query_words >= profile.mean_query_words

    def test_summary_text(self, profile):
        assert "traffic" in profile.summary()

    def test_handmade(self):
        wl = Workload([(Query.from_text("a b"), 99), (Query.from_text("c"), 1)])
        profile = profile_workload(wl)
        assert profile.head_mass_top_1pct == pytest.approx(0.99)
        assert profile.frequency_zipf_slope is None  # < 10 queries

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_workload(Workload())
