"""Tests for the CSV/TSV importers."""

import pytest

from repro.core.queries import Query
from repro.datagen.importers import (
    ImportFormatError,
    load_corpus_csv,
    load_workload_tsv,
)


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return path


class TestCorpusCsv:
    def test_full_columns(self, tmp_path):
        path = write(
            tmp_path,
            "ads.csv",
            "bid_phrase,listing_id,campaign_id,bid_price_micros,exclusions\n"
            "used books,1,7,120000,free|gratis\n"
            "cheap flights,2,8,90000,\n",
        )
        corpus = load_corpus_csv(path)
        assert len(corpus) == 2
        first = corpus[0]
        assert first.phrase == ("used", "books")
        assert first.info.campaign_id == 7
        assert first.info.exclusion_phrases == ("free", "gratis")
        assert corpus[1].info.exclusion_phrases == ()

    def test_minimal_columns(self, tmp_path):
        path = write(
            tmp_path, "ads.csv", "bid_phrase,listing_id\nred shoes,5\n"
        )
        corpus = load_corpus_csv(path)
        assert corpus[0].info.bid_price_micros == 0

    def test_tsv_delimiter(self, tmp_path):
        path = write(
            tmp_path, "ads.tsv", "bid_phrase\tlisting_id\nused books\t1\n"
        )
        corpus = load_corpus_csv(path, delimiter="\t")
        assert len(corpus) == 1

    def test_missing_required_column(self, tmp_path):
        path = write(tmp_path, "bad.csv", "bid_phrase\nused books\n")
        with pytest.raises(ImportFormatError, match="listing_id"):
            load_corpus_csv(path)

    def test_unknown_column(self, tmp_path):
        path = write(
            tmp_path, "bad.csv", "bid_phrase,listing_id,surprise\na,1,x\n"
        )
        with pytest.raises(ImportFormatError, match="surprise"):
            load_corpus_csv(path)

    def test_bad_listing_id_reports_line(self, tmp_path):
        path = write(
            tmp_path,
            "bad.csv",
            "bid_phrase,listing_id\nok phrase,1\nbroken,notanint\n",
        )
        with pytest.raises(ImportFormatError, match=":3"):
            load_corpus_csv(path)

    def test_empty_phrase_rejected(self, tmp_path):
        path = write(tmp_path, "bad.csv", "bid_phrase,listing_id\n ,1\n")
        with pytest.raises(ImportFormatError, match="empty bid_phrase"):
            load_corpus_csv(path)

    def test_punctuation_only_phrase_rejected(self, tmp_path):
        path = write(tmp_path, "bad.csv", "bid_phrase,listing_id\n!!!,1\n")
        with pytest.raises(ImportFormatError, match="no indexable words"):
            load_corpus_csv(path)

    def test_empty_file(self, tmp_path):
        path = write(tmp_path, "empty.csv", "")
        with pytest.raises(ImportFormatError, match="empty file"):
            load_corpus_csv(path)

    def test_imported_corpus_is_indexable(self, tmp_path):
        from repro.core.wordset_index import WordSetIndex

        path = write(
            tmp_path,
            "ads.csv",
            "bid_phrase,listing_id\nused books,1\nbooks,2\n",
        )
        index = WordSetIndex.from_corpus(load_corpus_csv(path))
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}


class TestWorkloadTsv:
    def test_with_frequencies(self, tmp_path):
        path = write(
            tmp_path, "trace.tsv", "used books\t10\ncheap flights\t3\n"
        )
        workload = load_workload_tsv(path)
        assert workload.frq(Query.from_text("used books")) == 10
        assert workload.total_frequency == 13

    def test_without_frequencies(self, tmp_path):
        path = write(tmp_path, "trace.tsv", "used books\nused books\n")
        workload = load_workload_tsv(path)
        assert workload.frq(Query.from_text("used books")) == 2

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = write(tmp_path, "trace.tsv", "# header\n\nused books\t2\n")
        workload = load_workload_tsv(path)
        assert len(workload) == 1

    def test_bad_frequency(self, tmp_path):
        path = write(tmp_path, "trace.tsv", "used books\tmany\n")
        with pytest.raises(ImportFormatError, match="frequency"):
            load_workload_tsv(path)

    def test_nonpositive_frequency(self, tmp_path):
        path = write(tmp_path, "trace.tsv", "used books\t0\n")
        with pytest.raises(ImportFormatError, match="positive"):
            load_workload_tsv(path)

    def test_empty_query_rejected(self, tmp_path):
        path = write(tmp_path, "trace.tsv", "...\t3\n")
        with pytest.raises(ImportFormatError, match="no indexable words"):
            load_workload_tsv(path)
