"""Tests for bounded subset enumeration and lookup-count formulas."""

from math import comb

from hypothesis import given
from hypothesis import strategies as st

from repro.core.subset_enum import (
    bounded_subsets,
    lookup_count,
    lookup_count_bounded,
    truncate_query,
)


class TestLookupCounts:
    def test_unbounded_formula(self):
        assert lookup_count(0) == 0
        assert lookup_count(3) == 7
        assert lookup_count(10) == 1023

    def test_bounded_equals_unbounded_when_max_large(self):
        for q in range(0, 12):
            assert lookup_count_bounded(q, q) == lookup_count(q)
            assert lookup_count_bounded(q, q + 5) == lookup_count(q)

    def test_bounded_formula(self):
        # Σ_{i=1..2} C(5, i) = 5 + 10
        assert lookup_count_bounded(5, 2) == 15

    def test_bound_is_big_improvement_for_long_queries(self):
        # The paper's point: Σ C(q,i) << 2^q - 1 for long q.
        q, max_words = 20, 4
        assert lookup_count_bounded(q, max_words) < lookup_count(q) / 100

    @given(st.integers(1, 16), st.integers(1, 16))
    def test_bounded_never_exceeds_unbounded(self, q, m):
        assert lookup_count_bounded(q, m) <= lookup_count(q)

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_matches_binomial_sum(self, q, m):
        expected = sum(comb(q, i) for i in range(1, min(q, m) + 1))
        assert lookup_count_bounded(q, m) == expected


class TestBoundedSubsets:
    def test_counts_match_formula(self):
        words = frozenset({"a", "b", "c", "d", "e"})
        for max_size in range(1, 6):
            subsets = list(bounded_subsets(words, max_size))
            assert len(subsets) == lookup_count_bounded(5, max_size)

    def test_all_nonempty_and_within_bound(self):
        words = frozenset({"a", "b", "c"})
        for s in bounded_subsets(words, 2):
            assert 0 < len(s) <= 2
            assert s <= words

    def test_no_duplicates(self):
        words = frozenset({"a", "b", "c", "d"})
        subsets = list(bounded_subsets(words, 4))
        assert len(subsets) == len(set(subsets))

    def test_smallest_first(self):
        sizes = [len(s) for s in bounded_subsets(frozenset("abcd"), 4)]
        assert sizes == sorted(sizes)

    def test_deterministic_order(self):
        words = frozenset({"b", "a", "c"})
        assert list(bounded_subsets(words, 3)) == list(bounded_subsets(words, 3))

    def test_bound_larger_than_set(self):
        words = frozenset({"a"})
        assert list(bounded_subsets(words, 10)) == [frozenset({"a"})]

    def test_empty_set(self):
        assert list(bounded_subsets(frozenset(), 3)) == []


class TestTruncateQuery:
    def test_short_query_untouched(self):
        words = frozenset({"a", "b"})
        assert truncate_query(words, 5) is words

    def test_truncates_to_limit(self):
        words = frozenset(f"w{i}" for i in range(10))
        assert len(truncate_query(words, 4)) == 4

    def test_keeps_rarest_words(self):
        freq = {"common": 1000, "rare": 1, "mid": 50}
        words = frozenset(freq)
        kept = truncate_query(words, 2, selectivity=freq.__getitem__)
        assert kept == frozenset({"rare", "mid"})

    def test_result_is_subset(self):
        words = frozenset(f"w{i}" for i in range(8))
        assert truncate_query(words, 3) <= words

    def test_deterministic_without_selectivity(self):
        words = frozenset(f"w{i}" for i in range(8))
        assert truncate_query(words, 3) == truncate_query(words, 3)

    def test_no_selectivity_keeps_lexicographically_first(self):
        # The documented fallback: no frequency data means the sorted-word
        # prefix, independent of set iteration order.
        words = frozenset({"delta", "alpha", "echo", "bravo", "charlie"})
        assert truncate_query(words, 2) == frozenset({"alpha", "bravo"})

    def test_equal_frequencies_tie_break_on_word(self):
        # All words equally selective: the (frequency, word) sort key must
        # fall back to lexicographic order, not hash order.
        words = frozenset({"zebra", "apple", "mango", "kiwi"})
        kept = truncate_query(words, 2, selectivity=lambda w: 7)
        assert kept == frozenset({"apple", "kiwi"})

    def test_partial_tie_mixes_frequency_then_word(self):
        freq = {"rare": 1, "tie1": 5, "tie2": 5, "common": 100}
        kept = truncate_query(
            frozenset(freq), 3, selectivity=freq.__getitem__
        )
        assert kept == frozenset({"rare", "tie1", "tie2"})

    def test_tie_breaking_is_stable_across_calls(self):
        words = frozenset(f"word{i}" for i in range(20))
        results = {
            truncate_query(words, 5, selectivity=lambda w: 3)
            for _ in range(10)
        }
        assert len(results) == 1
