"""Tests for snapshot + op-log durability (crash recovery, compaction)."""

import json

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.oplog import DurableIndex
from repro.optimize.mapping import Mapping
from repro.persist import PersistenceError


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def paths(tmp_path):
    return tmp_path / "snapshot.jsonl", tmp_path / "ops.log"


@pytest.fixture()
def durable(paths):
    snapshot, log = paths
    corpus = AdCorpus([ad("used books", 1), ad("books", 2)])
    index = DurableIndex(snapshot, log, corpus=corpus)
    yield index
    index.close()


class TestBasicDurability:
    def test_fresh_start_queryable(self, durable):
        result = durable.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}

    def test_insert_logged_and_recovered(self, durable, paths):
        snapshot, log = paths
        durable.insert(ad("rare maps", 3))
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.replayed_ops == 1
        result = recovered.query(Query.from_text("rare maps shop"))
        assert 3 in {a.info.listing_id for a in result}
        recovered.close()

    def test_delete_logged_and_recovered(self, durable, paths):
        snapshot, log = paths
        assert durable.delete(ad("books", 2))
        durable.close()
        recovered = DurableIndex(snapshot, log)
        result = recovered.query(Query.from_text("books"))
        assert result == []
        recovered.close()

    def test_failed_delete_not_logged(self, durable):
        before = durable.log_ops
        assert not durable.delete(ad("absent", 99))
        assert durable.log_ops == before

    def test_mixed_churn_recovery_matches_oracle(self, paths):
        snapshot, log = paths
        corpus = AdCorpus([ad(f"base w{i}", i) for i in range(8)])
        durable = DurableIndex(snapshot, log, corpus=corpus)
        live = list(corpus)
        for i in range(12):
            new_ad = ad(f"churn{i} base", 100 + i)
            durable.insert(new_ad)
            live.append(new_ad)
            if i % 3 == 0:
                victim = live.pop(0)
                assert durable.delete(victim)
        durable.close()

        recovered = DurableIndex(snapshot, log)
        for qtext in ("base w3 churn1", "base churn2 churn5", "nope"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in recovered.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(live, q))
            assert got == want
        recovered.close()


class TestCrashSemantics:
    def test_torn_tail_write_tolerated(self, durable, paths):
        snapshot, log = paths
        durable.insert(ad("complete op", 10))
        durable.close()
        with log.open("a") as handle:
            handle.write('{"seq": 1, "op": {"kind": "ins')  # torn write
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.truncated_tail
        assert recovered.recovery.replayed_ops == 1
        recovered.close()

    def test_mid_log_corruption_is_an_error(self, durable, paths):
        snapshot, log = paths
        durable.insert(ad("first op", 10))
        durable.insert(ad("second op", 11))
        durable.close()
        lines = log.read_text().splitlines()
        lines[0] = lines[0].replace("first", "fxrst")  # breaks the crc
        log.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistenceError, match="valid records after"):
            DurableIndex(snapshot, log)

    def test_sequence_gap_at_tail_tolerated(self, durable, paths):
        snapshot, log = paths
        durable.insert(ad("op a", 10))
        durable.close()
        # Append a record with a wrong sequence number at the tail.
        payload = {"kind": "insert", "ad": {"phrase": ["x"], "listing_id": 9,
                   "campaign_id": 0, "bid_price_micros": 0, "exclusions": []}}
        import hashlib

        crc = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:16]
        with log.open("a") as handle:
            handle.write(json.dumps({"seq": 7, "op": payload, "crc": crc}) + "\n")
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.truncated_tail
        recovered.close()

    def test_missing_log_is_clean_recovery(self, durable, paths):
        snapshot, log = paths
        durable.close()
        log.unlink()
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.replayed_ops == 0
        assert len(recovered) == 2
        recovered.close()


class TestCompaction:
    def test_compaction_truncates_log(self, durable, paths):
        snapshot, log = paths
        for i in range(5):
            durable.insert(ad(f"new{i}", 10 + i))
        assert durable.log_ops == 5
        durable.compact()
        assert durable.log_ops == 0
        assert log.read_text() == ""
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert len(recovered) == 7
        recovered.close()

    def test_compaction_folds_in_new_mapping(self, durable, paths):
        snapshot, log = paths
        durable.insert(ad("cheap used books", 5))
        mapping = Mapping(
            {
                frozenset({"cheap", "used", "books"}): frozenset(
                    {"used", "books"}
                )
            }
        )
        durable.compact(mapping=mapping)
        result = durable.query(Query.from_text("cheap used books"))
        assert 5 in {a.info.listing_id for a in result}
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.replayed_ops == 0
        assert 5 in {
            a.info.listing_id
            for a in recovered.query(Query.from_text("cheap used books"))
        }
        recovered.close()

    def test_long_phrase_insert_with_max_words_mapping(self, paths):
        snapshot, log = paths
        corpus = AdCorpus([ad("a b", 1)])
        durable = DurableIndex(
            snapshot, log, corpus=corpus, mapping=Mapping({}, max_words=3)
        )
        long_ad = ad("p q r s t u", 2)
        durable.insert(long_ad)
        q = Query.from_text("p q r s t u v")
        assert 2 in {a.info.listing_id for a in durable.query(q)}
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert 2 in {a.info.listing_id for a in recovered.query(q)}
        recovered.close()
