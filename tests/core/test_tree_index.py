"""Tests for the tree-structured (trie) lookup variant of Section III-B."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType, naive_broad_match, naive_match
from repro.core.queries import Query
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


def build(ads, **kwargs):
    return TrieWordSetIndex.from_corpus(AdCorpus(ads), **kwargs)


class TestBasic:
    def test_paper_example(self):
        index = build([ad("used books", 1), ad("comic books", 2)])
        result = index.query(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result] == [1]

    def test_no_match(self):
        index = build([ad("used books", 1)])
        assert index.query(Query.from_text("red shoes")) == []

    def test_multiple_ads_same_wordset(self):
        index = build([ad("used books", 1), ad("books used", 2)])
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}

    def test_empty_index(self):
        assert TrieWordSetIndex().query(Query.from_text("x")) == []

    def test_duplicate_word_semantics(self):
        index = build([ad("talk talk", 1), ad("talk", 2)])
        assert {
            a.info.listing_id
            for a in index.query(Query.from_text("talk talk"))
        } == {1, 2}
        assert {
            a.info.listing_id for a in index.query(Query.from_text("talk"))
        } == {2}

    def test_match_types(self):
        index = build([ad("used books", 1), ad("books used", 2)])
        exact = index.query(Query.from_text("used books"), MatchType.EXACT)
        assert [a.info.listing_id for a in exact] == [1]
        phrase = index.query(
            Query.from_text("cheap used books"), MatchType.PHRASE
        )
        assert [a.info.listing_id for a in phrase] == [1]


class TestRemapping:
    def test_remapped_placement_preserves_results(self):
        ads = [ad("cheap books", 1), ad("cheap used books", 2)]
        mapping = {
            frozenset({"cheap", "used", "books"}): frozenset({"cheap", "books"})
        }
        index = TrieWordSetIndex.from_corpus(AdCorpus(ads), mapping=mapping)
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}
        assert index.num_data_nodes == 1

    def test_rejects_bad_locator(self):
        index = TrieWordSetIndex()
        with pytest.raises(ValueError):
            index.insert(ad("used books"), locator=frozenset({"cheap"}))
        with pytest.raises(ValueError):
            index.insert(ad("used books"), locator=frozenset())

    def test_max_words_enforced(self):
        index = TrieWordSetIndex(max_words=2)
        with pytest.raises(ValueError):
            index.insert(ad("a b c"))

    def test_condition_iv(self):
        index = TrieWordSetIndex()
        index.insert(ad("a b", 1), locator=frozenset({"a"}))
        index.insert(ad("a b", 2), locator=frozenset({"b"}))  # follows group
        assert index.num_data_nodes == 1


class TestDeletion:
    def test_delete_and_prune(self):
        a = ad("solo phrase", 1)
        index = build([a])
        size_before = index.trie_size()
        assert index.delete(a)
        assert index.query(Query.from_text("solo phrase")) == []
        assert index.trie_size() < size_before
        assert index.num_data_nodes == 0

    def test_delete_keeps_shared_prefix(self):
        a1, a2 = ad("a b", 1), ad("a c", 2)
        index = build([a1, a2])
        index.delete(a1)
        assert [x.info.listing_id
                for x in index.query(Query.from_text("a c"))] == [2]

    def test_delete_absent(self):
        index = build([ad("x", 1)])
        assert not index.delete(ad("y", 2))


class TestTraversalEfficiency:
    def test_no_exponential_blowup_on_long_queries(self):
        """The trie's key property: DFS visits only existing locators, so a
        24-word query over a tiny corpus costs edges, not 2^24 probes."""
        tracker = AccessTracker()
        index = TrieWordSetIndex.from_corpus(
            AdCorpus([ad("a b", 1)]), tracker=tracker
        )
        long_query = Query.from_text(" ".join(f"w{i}" for i in range(22)) + " a b")
        result = index.query(long_query)
        assert [a.info.listing_id for a in result] == [1]
        # Root tries every query word once, plus the a->b path: far below
        # the hash table's bounded-subset probe count.
        assert tracker.stats.random_accesses < 200

    def test_trie_size_bounded_by_locator_words(self):
        index = build([ad("a b c", 1), ad("a b d", 2), ad("a", 3)])
        # root + a + b + c + d
        assert index.trie_size() == 5


words_alphabet = [f"w{i}" for i in range(10)]


def phrase_strategy(max_len=4):
    return st.lists(
        st.sampled_from(words_alphabet), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def corpus_and_queries(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=20))
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(st.lists(phrase_strategy(max_len=6), min_size=1, max_size=6))
    return ads, [Query.from_text(q) for q in queries]


class TestOracleEquivalence:
    @given(corpus_and_queries())
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_and_hash_index(self, data):
        ads, queries = data
        corpus = AdCorpus(ads)
        trie = TrieWordSetIndex.from_corpus(corpus)
        hashed = WordSetIndex.from_corpus(corpus)
        for query in queries:
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert sorted(
                a.info.listing_id for a in trie.query(query)
            ) == expected
            assert sorted(
                a.info.listing_id for a in hashed.query(query)
            ) == expected

    @given(corpus_and_queries())
    @settings(max_examples=40, deadline=None)
    def test_match_types_equal_naive(self, data):
        ads, queries = data
        corpus = AdCorpus(ads)
        trie = TrieWordSetIndex.from_corpus(corpus)
        for query in queries:
            for mt in (MatchType.EXACT, MatchType.PHRASE):
                got = sorted(a.info.listing_id for a in trie.query(query, mt))
                expected = sorted(
                    a.info.listing_id for a in naive_match(corpus, query, mt)
                )
                assert got == expected

    @given(corpus_and_queries(), st.lists(st.integers(0, 19), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_deletion_equivalence(self, data, deletions):
        ads, queries = data
        corpus = AdCorpus(ads)
        trie = TrieWordSetIndex.from_corpus(corpus)
        remaining = list(ads)
        for pos in deletions:
            if pos < len(remaining):
                victim = remaining.pop(pos)
                assert trie.delete(victim)
        for query in queries:
            got = sorted(a.info.listing_id for a in trie.query(query))
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(remaining, query)
            )
            assert got == expected
