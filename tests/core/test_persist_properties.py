"""Property-based round-trip and crash-recovery tests for persistence."""

import string

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.faults import FaultInjector, InjectedCrash
from repro.oplog import DurableIndex
from repro.optimize.mapping import Mapping, corpus_groups
from repro.persist import load_index, save_index

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def random_corpus(draw):
    num_ads = draw(st.integers(1, 15))
    ads = []
    for i in range(num_ads):
        phrase_words = draw(
            st.lists(words, min_size=1, max_size=5)
        )
        info = AdInfo(
            listing_id=i,
            campaign_id=draw(st.integers(0, 5)),
            bid_price_micros=draw(st.integers(0, 10**9)),
            exclusion_phrases=tuple(
                draw(st.lists(words, max_size=2))
            ),
        )
        ads.append(Advertisement.from_text(" ".join(phrase_words), info))
    return AdCorpus(ads)


class TestPersistProperties:
    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_every_ad(self, corpus):
        path = Path(tempfile.mkdtemp()) / "index.jsonl"
        save_index(path, corpus)
        loaded = load_index(path)
        original = sorted(
            (a.phrase, a.info.listing_id, a.info.bid_price_micros)
            for a in corpus
        )
        restored = sorted(
            (a.phrase, a.info.listing_id, a.info.bid_price_micros)
            for a in loaded.corpus
        )
        assert original == restored

    @given(random_corpus(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_query_results(self, corpus, data):
        # Build a random-but-valid mapping: map each multi-word group to a
        # random non-empty subset of its words.
        assignment = {}
        for group in corpus_groups(corpus):
            subset = data.draw(
                st.sets(
                    st.sampled_from(sorted(group.words)),
                    min_size=1,
                    max_size=len(group.words),
                )
            )
            assignment[group.words] = frozenset(subset)
        mapping = Mapping(assignment)

        path = Path(tempfile.mkdtemp()) / "index.jsonl"
        save_index(path, corpus, mapping)
        loaded = load_index(path)

        probe = data.draw(st.integers(0, len(corpus) - 1))
        query = Query(tokens=corpus[probe].phrase)
        got = sorted(
            a.info.listing_id for a in loaded.index.query(query)
        )
        want = sorted(
            a.info.listing_id for a in naive_broad_match(corpus, query)
        )
        assert got == want


#: Crashpoints a mutation (insert/delete) can die at, and whether the op
#: is durable when it does: an op whose complete log record reached the
#: file survives the crash; one that crashed before (or mid-) write does
#: not.  (``*.logged`` fires after the append returns, so per-kind.)
MUTATION_POINTS = {
    "oplog.append.start": False,
    "oplog.append.torn": False,
    "oplog.append.synced": True,
}
INSERT_POINTS = dict(MUTATION_POINTS, **{"oplog.insert.logged": True})
DELETE_POINTS = dict(MUTATION_POINTS, **{"oplog.delete.logged": True})
#: Compaction never changes the live ad set, whichever step dies.
COMPACT_POINTS = (
    "compact.start",
    "save.tmp_written",
    "save.tmp_synced",
    "save.renamed",
    "compact.snapshot_written",
    "compact.log_truncated",
)


class TestCrashRecoveryProperties:
    """Random op sequence, crash at a random injected crashpoint,
    recover, and assert broad-match query-equivalence against an
    in-memory :class:`WordSetIndex` oracle."""

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_recovery_matches_oracle_after_random_crash(self, data):
        tmp = Path(tempfile.mkdtemp())
        snapshot, log = tmp / "snapshot.jsonl", tmp / "ops.log"
        injector = FaultInjector()

        next_id = iter(range(10_000))
        def make_ad():
            phrase = data.draw(st.lists(words, min_size=1, max_size=4))
            return Advertisement.from_text(
                " ".join(phrase), AdInfo(listing_id=next(next_id))
            )

        seed = [make_ad() for _ in range(data.draw(st.integers(1, 4)))]
        durable = DurableIndex(
            snapshot, log, corpus=AdCorpus(seed), faults=injector
        )
        live = list(seed)

        num_ops = data.draw(st.integers(1, 8))
        crash_at = data.draw(st.integers(0, num_ops - 1))
        expected = None
        for k in range(num_ops):
            kind = data.draw(
                st.sampled_from(["insert", "insert", "delete", "compact"])
            )
            if kind == "delete" and not live:
                kind = "insert"
            if k < crash_at:
                if kind == "insert":
                    new_ad = make_ad()
                    durable.insert(new_ad)
                    live.append(new_ad)
                elif kind == "delete":
                    victim = live.pop(
                        data.draw(st.integers(0, len(live) - 1))
                    )
                    assert durable.delete(victim)
                else:
                    durable.compact()
                continue
            # The crashing op.
            if kind == "insert":
                new_ad = make_ad()
                point = data.draw(
                    st.sampled_from(sorted(INSERT_POINTS))
                )
                with injector.arm(point):
                    with pytest.raises(InjectedCrash):
                        durable.insert(new_ad)
                expected = live + ([new_ad] if INSERT_POINTS[point] else [])
            elif kind == "delete":
                victim_index = data.draw(st.integers(0, len(live) - 1))
                victim = live[victim_index]
                point = data.draw(
                    st.sampled_from(sorted(DELETE_POINTS))
                )
                with injector.arm(point):
                    with pytest.raises(InjectedCrash):
                        durable.delete(victim)
                expected = list(live)
                if DELETE_POINTS[point]:
                    del expected[victim_index]
            else:
                point = data.draw(st.sampled_from(COMPACT_POINTS))
                with injector.arm(point):
                    with pytest.raises(InjectedCrash):
                        durable.compact()
                expected = list(live)
            break
        durable.close()
        assert expected is not None

        recovered = DurableIndex(snapshot, log)
        oracle = WordSetIndex.from_corpus(AdCorpus(expected))
        assert sorted(a.info.listing_id for a in recovered.corpus) == sorted(
            a.info.listing_id for a in expected
        )
        probes = [Query(tokens=a.phrase) for a in expected[:6]]
        probes.append(
            Query(
                tokens=tuple(
                    data.draw(st.lists(words, min_size=1, max_size=3))
                )
            )
        )
        for query in probes:
            got = sorted(a.info.listing_id for a in recovered.query(query))
            want = sorted(a.info.listing_id for a in oracle.query(query))
            assert got == want, f"query {query.tokens!r} diverged"
        recovered.close()

        # Recovery left a clean log: a second restart must also succeed
        # and agree (the torn-tail poison-pill regression, generalised).
        again = DurableIndex(snapshot, log)
        assert sorted(a.info.listing_id for a in again.corpus) == sorted(
            a.info.listing_id for a in expected
        )
        again.close()
