"""Property-based round-trip tests for persistence."""

import string

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.optimize.mapping import Mapping, corpus_groups
from repro.persist import load_index, save_index

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def random_corpus(draw):
    num_ads = draw(st.integers(1, 15))
    ads = []
    for i in range(num_ads):
        phrase_words = draw(
            st.lists(words, min_size=1, max_size=5)
        )
        info = AdInfo(
            listing_id=i,
            campaign_id=draw(st.integers(0, 5)),
            bid_price_micros=draw(st.integers(0, 10**9)),
            exclusion_phrases=tuple(
                draw(st.lists(words, max_size=2))
            ),
        )
        ads.append(Advertisement.from_text(" ".join(phrase_words), info))
    return AdCorpus(ads)


class TestPersistProperties:
    @given(random_corpus())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_every_ad(self, corpus):
        path = Path(tempfile.mkdtemp()) / "index.jsonl"
        save_index(path, corpus)
        loaded = load_index(path)
        original = sorted(
            (a.phrase, a.info.listing_id, a.info.bid_price_micros)
            for a in corpus
        )
        restored = sorted(
            (a.phrase, a.info.listing_id, a.info.bid_price_micros)
            for a in loaded.corpus
        )
        assert original == restored

    @given(random_corpus(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_query_results(self, corpus, data):
        # Build a random-but-valid mapping: map each multi-word group to a
        # random non-empty subset of its words.
        assignment = {}
        for group in corpus_groups(corpus):
            subset = data.draw(
                st.sets(
                    st.sampled_from(sorted(group.words)),
                    min_size=1,
                    max_size=len(group.words),
                )
            )
            assignment[group.words] = frozenset(subset)
        mapping = Mapping(assignment)

        path = Path(tempfile.mkdtemp()) / "index.jsonl"
        save_index(path, corpus, mapping)
        loaded = load_index(path)

        probe = data.draw(st.integers(0, len(corpus) - 1))
        query = Query(tokens=corpus[probe].phrase)
        got = sorted(
            a.info.listing_id for a in loaded.index.query(query)
        )
        want = sorted(
            a.info.listing_id for a in naive_broad_match(corpus, query)
        )
        assert got == want
