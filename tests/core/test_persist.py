"""Tests for index persistence, including corruption/failure injection."""

import json

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query
from repro.optimize.mapping import Mapping
from repro.persist import PersistenceError, load_index, save_index


def ad(text, listing_id=0, price=0, exclusions=()):
    return Advertisement.from_text(
        text,
        AdInfo(
            listing_id=listing_id,
            bid_price_micros=price,
            exclusion_phrases=tuple(exclusions),
        ),
    )


@pytest.fixture()
def corpus():
    return AdCorpus(
        [
            ad("used books", 1, price=120),
            ad("cheap used books", 2, price=90, exclusions=("free",)),
            ad("talk talk", 3),
        ]
    )


@pytest.fixture()
def mapping():
    return Mapping(
        {
            frozenset({"cheap", "used", "books"}): frozenset({"used", "books"}),
        },
        max_words=10,
    )


class TestRoundtrip:
    def test_corpus_and_results_survive(self, tmp_path, corpus, mapping):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus, mapping)
        loaded = load_index(path)
        assert len(loaded.corpus) == 3
        q = Query.from_text("cheap used books online")
        got = sorted(a.info.listing_id for a in loaded.index.query(q))
        assert got == [1, 2]
        loaded.index.check_invariants()

    def test_metadata_preserved(self, tmp_path, corpus, mapping):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus, mapping)
        loaded = load_index(path)
        by_id = {a.info.listing_id: a for a in loaded.corpus}
        assert by_id[1].info.bid_price_micros == 120
        assert by_id[2].info.exclusion_phrases == ("free",)
        assert by_id[3].phrase == ("talk", "talk__2")

    def test_mapping_preserved(self, tmp_path, corpus, mapping):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus, mapping)
        loaded = load_index(path)
        long_set = frozenset({"cheap", "used", "books"})
        assert loaded.mapping.locator_for(long_set) == frozenset(
            {"used", "books"}
        )
        assert loaded.mapping.max_words == 10

    def test_identity_mapping_default(self, tmp_path, corpus):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus)
        loaded = load_index(path)
        assert loaded.mapping.remapped_count() == 0

    def test_save_is_atomic(self, tmp_path, corpus):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus)
        assert not path.with_suffix(".jsonl.tmp").exists()

    def test_double_roundtrip_identical(self, tmp_path, corpus, mapping):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_index(p1, corpus, mapping)
        loaded = load_index(p1)
        save_index(p2, loaded.corpus, loaded.mapping)
        assert p1.read_text() == p2.read_text()


class TestCorruption:
    def save(self, tmp_path, corpus, mapping=None):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus, mapping)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_index(tmp_path / "absent.jsonl")

    def test_truncated_file(self, tmp_path, corpus):
        path = self.save(tmp_path, corpus)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_flipped_byte_detected(self, tmp_path, corpus):
        path = self.save(tmp_path, corpus)
        content = path.read_text()
        corrupted = content.replace("books", "bocks", 1)
        path.write_text(corrupted)
        with pytest.raises(PersistenceError, match="checksum"):
            load_index(path)

    def test_bad_version(self, tmp_path, corpus):
        path = self.save(tmp_path, corpus)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 999
        # Re-checksum so only the version check fires.
        import hashlib

        new_lines = [json.dumps(header, sort_keys=True)] + lines[1:-1]
        digest = hashlib.sha256()
        for line in new_lines:
            digest.update(line.encode())
        new_lines.append(
            json.dumps({"sha256": digest.hexdigest()}, sort_keys=True)
        )
        path.write_text("\n".join(new_lines) + "\n")
        with pytest.raises(PersistenceError, match="version"):
            load_index(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"something": "else"}\n{"sha256": "xx"}\n')
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError, match="truncated"):
            load_index(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\nmore garbage\n")
        with pytest.raises(PersistenceError):
            load_index(path)


class TestAtomicSave:
    """Crash-safety of save_index: unique temps, fsync-before-rename."""

    def test_save_fsyncs_file_before_rename(
        self, tmp_path, corpus, monkeypatch
    ):
        import os as _os

        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            "repro.persist.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        renamed = []
        from pathlib import Path as _Path

        real_replace = _Path.replace
        monkeypatch.setattr(
            _Path,
            "replace",
            lambda self, target: (
                renamed.append(len(synced)),
                real_replace(self, target),
            )[1],
        )
        save_index(tmp_path / "index.jsonl", corpus)
        # At least one fsync happened strictly before the rename.
        assert renamed and renamed[0] >= 1

    def test_concurrent_saves_use_distinct_temps(self, tmp_path, corpus):
        """Two interleaved savers must never write the same temp file
        (the pre-fix code used a fixed `<path>.tmp` for every saver)."""
        from repro.faults import FaultInjector, InjectedCrash

        path = tmp_path / "index.jsonl"
        injector = FaultInjector()
        with injector.arm("save.tmp_written"):
            with pytest.raises(InjectedCrash):
                save_index(path, corpus, faults=injector)
        first_temp = list(tmp_path.glob(".index.jsonl.*.tmp"))
        assert len(first_temp) == 1
        # A second saver runs to completion despite the leftover temp.
        save_index(path, corpus)
        loaded = load_index(path)
        assert len(loaded.corpus) == len(corpus)
        # The crashed saver's temp is untouched, not renamed into place.
        assert first_temp[0].exists()

    def test_ordinary_errors_clean_up_their_temp(self, tmp_path):
        class Explosive:
            def __iter__(self):
                raise RuntimeError("boom")

            def __len__(self):
                return 0

        path = tmp_path / "index.jsonl"
        with pytest.raises(RuntimeError):
            save_index(path, Explosive())
        assert list(tmp_path.glob(".index.jsonl.*.tmp")) == []

    def test_generation_roundtrips_through_header(self, tmp_path, corpus):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus, generation=7)
        assert load_index(path).generation == 7

    def test_generation_defaults_to_zero_for_old_files(
        self, tmp_path, corpus
    ):
        path = tmp_path / "index.jsonl"
        save_index(path, corpus)
        assert load_index(path).generation == 0
