"""Tests for impact-ordered (top-k by bid) broad-match retrieval."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.impact_index import ImpactOrderedIndex
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.cost.accounting import AccessTracker


def ad(text, listing_id=0, bid=100):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, bid_price_micros=bid)
    )


@pytest.fixture()
def index():
    return ImpactOrderedIndex.from_corpus(
        AdCorpus(
            [
                ad("books", 1, bid=100),
                ad("used books", 2, bid=500),
                ad("cheap used books", 3, bid=300),
                ad("books online", 4, bid=900),
            ]
        )
    )


class TestTopK:
    def test_top_k_by_bid(self, index):
        q = Query.from_text("cheap used books online")
        top2 = index.query_top_k(q, 2)
        assert [a.info.listing_id for a in top2] == [4, 2]

    def test_k_larger_than_matches(self, index):
        q = Query.from_text("used books")
        top = index.query_top_k(q, 10)
        assert {a.info.listing_id for a in top} == {1, 2}

    def test_no_matches(self, index):
        assert index.query_top_k(Query.from_text("zz"), 3) == []

    def test_rejects_bad_k(self, index):
        with pytest.raises(ValueError):
            index.query_top_k(Query.from_text("books"), 0)

    def test_plain_broad_unpruned(self, index):
        q = Query.from_text("cheap used books online")
        assert len(index.query(q)) == 4

    def test_pruning_skips_low_ceiling_nodes(self):
        # One high-bid node and many low-bid nodes sharing a query.
        ads = [ad("top word", 1, bid=10_000)]
        ads += [ad(f"low{i} word", 10 + i, bid=i + 1) for i in range(20)]
        tracker = AccessTracker()
        index = ImpactOrderedIndex.from_corpus(AdCorpus(ads), tracker=tracker)
        q = Query.from_text("top word " + " ".join(f"low{i}" for i in range(8)))
        top1 = index.query_top_k(q, 1)
        assert top1[0].info.listing_id == 1
        # The 8 low nodes eligible here must not all be scanned: probes are
        # unavoidable, node scans are pruned after the ceiling check.
        assert tracker.stats.candidates_examined < 9

    def test_delete_refreshes_ceiling(self, index):
        assert index.delete(ad("books online", 4, bid=900))
        q = Query.from_text("cheap used books online")
        top1 = index.query_top_k(q, 1)
        assert top1[0].info.listing_id == 2


words_alphabet = [f"w{i}" for i in range(8)]


@st.composite
def corpus_queries(draw):
    n = draw(st.integers(1, 20))
    ads = []
    for i in range(n):
        phrase = " ".join(
            draw(
                st.lists(
                    st.sampled_from(words_alphabet), min_size=1, max_size=4
                )
            )
        ) or "w0"
        ads.append(ad(phrase, i, bid=draw(st.integers(1, 1000))))
    queries = draw(
        st.lists(
            st.lists(st.sampled_from(words_alphabet), min_size=1, max_size=5)
            .map(" ".join),
            min_size=1,
            max_size=5,
        )
    )
    k = draw(st.integers(1, 6))
    return ads, [Query.from_text(q) for q in queries], k


class TestTopKProperties:
    @given(corpus_queries())
    @settings(max_examples=60, deadline=None)
    def test_top_k_equals_rank_of_oracle(self, data):
        ads, queries, k = data
        corpus = AdCorpus(ads)
        index = ImpactOrderedIndex.from_corpus(corpus)
        for q in queries:
            oracle = sorted(
                (a.info.bid_price_micros for a in naive_broad_match(corpus, q)),
                reverse=True,
            )[:k]
            got = [a.info.bid_price_micros for a in index.query_top_k(q, k)]
            assert got == oracle
