"""Tests for queries and workloads."""

import pytest

from repro.core.queries import Query, Workload


class TestQuery:
    def test_from_text(self):
        q = Query.from_text("Cheap Used Books")
        assert q.tokens == ("cheap", "used", "books")
        assert q.words == frozenset({"cheap", "used", "books"})

    def test_duplicate_folding(self):
        q = Query.from_text("talk talk lyrics")
        assert "talk__2" in q.words

    def test_len_counts_distinct_words(self):
        assert len(Query.from_text("a b a")) == 3  # folded a__2 is distinct

    def test_hashable(self):
        assert Query.from_text("x y") == Query.from_text("x  y")


class TestWorkload:
    def test_add_and_frq(self):
        wl = Workload()
        q = Query.from_text("used books")
        wl.add(q, 5)
        wl.add(q, 2)
        assert wl.frq(q) == 7

    def test_frq_unseen_is_zero(self):
        assert Workload().frq(Query.from_text("x")) == 0

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            Workload().add(Query.from_text("x"), 0)

    def test_from_trace_aggregates(self):
        q1, q2 = Query.from_text("a"), Query.from_text("b")
        wl = Workload.from_trace([q1, q2, q1, q1])
        assert wl.frq(q1) == 3
        assert wl.frq(q2) == 1
        assert len(wl) == 2
        assert wl.total_frequency == 4

    def test_top(self):
        q1, q2 = Query.from_text("a"), Query.from_text("b")
        wl = Workload([(q1, 10), (q2, 3)])
        assert wl.top(1) == [(q1, 10)]

    def test_sample_stream_length_and_membership(self):
        q1, q2 = Query.from_text("a"), Query.from_text("b")
        wl = Workload([(q1, 99), (q2, 1)])
        stream = wl.sample_stream(200, seed=42)
        assert len(stream) == 200
        assert set(stream) <= {q1, q2}
        assert stream.count(q1) > stream.count(q2)

    def test_sample_stream_deterministic(self):
        wl = Workload([(Query.from_text(f"w{i}"), i + 1) for i in range(10)])
        assert wl.sample_stream(50, seed=7) == wl.sample_stream(50, seed=7)

    def test_subsample_reduces_mass(self):
        wl = Workload([(Query.from_text(f"w{i}"), 100) for i in range(20)])
        sub = wl.subsample(0.1, seed=3)
        assert 0 < sub.total_frequency < wl.total_frequency

    def test_subsample_keeps_head(self):
        head = Query.from_text("head")
        wl = Workload([(head, 10000), (Query.from_text("tail"), 1)])
        sub = wl.subsample(0.05, seed=1)
        # The power-law head survives small samples (paper, Sec. V).
        assert sub.frq(head) > 0

    def test_subsample_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Workload().subsample(0.0)
        with pytest.raises(ValueError):
            Workload().subsample(1.5)

    def test_iteration_yields_pairs(self):
        q = Query.from_text("a")
        wl = Workload([(q, 2)])
        assert list(wl) == [(q, 2)]
