"""Tests for tokenization, normalization, and duplicate-word folding."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.core.tokens import (
    DUPLICATE_SEP,
    fold_duplicates,
    phrase_tokens,
    tokenize,
    unfold_token,
    word_set,
)


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Cheap USED Books") == ["cheap", "used", "books"]

    def test_strips_punctuation(self):
        assert tokenize("books, cheap!") == ["books", "cheap"]

    def test_keeps_digits(self):
        assert tokenize("iphone 15 case") == ["iphone", "15", "case"]

    def test_keeps_internal_apostrophe(self):
        assert tokenize("rock'n'roll") == ["rock'n'roll"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []

    def test_hyphen_splits(self):
        assert tokenize("e-book") == ["e", "book"]


class TestFoldDuplicates:
    def test_no_duplicates_unchanged(self):
        assert fold_duplicates(["a", "b", "c"]) == ["a", "b", "c"]

    def test_paper_talk_talk_example(self):
        assert fold_duplicates(["talk", "talk"]) == ["talk", f"talk{DUPLICATE_SEP}2"]

    def test_triple_occurrence(self):
        folded = fold_duplicates(["x", "x", "x"])
        assert folded == ["x", f"x{DUPLICATE_SEP}2", f"x{DUPLICATE_SEP}3"]

    def test_interleaved_duplicates(self):
        folded = fold_duplicates(["a", "b", "a"])
        assert folded == ["a", "b", f"a{DUPLICATE_SEP}2"]

    def test_preserves_order(self):
        assert fold_duplicates(["z", "a", "z"])[0] == "z"

    def test_empty(self):
        assert fold_duplicates([]) == []

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)))
    def test_folding_makes_tokens_unique(self, words):
        folded = fold_duplicates(words)
        assert len(folded) == len(set(folded)) == len(words)

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)))
    def test_unfold_inverts_fold(self, words):
        assert [unfold_token(t) for t in fold_duplicates(words)] == list(words)


class TestUnfoldToken:
    def test_plain_token(self):
        assert unfold_token("books") == "books"

    def test_folded_token(self):
        assert unfold_token(f"talk{DUPLICATE_SEP}2") == "talk"

    def test_non_numeric_suffix_untouched(self):
        assert unfold_token(f"a{DUPLICATE_SEP}bc") == f"a{DUPLICATE_SEP}bc"


class TestPhraseAndWordSet:
    def test_phrase_tokens_orders_and_folds(self):
        assert phrase_tokens("Talk Talk band") == ("talk", "talk__2", "band")

    def test_word_set_from_text(self):
        assert word_set("used books") == frozenset({"used", "books"})

    def test_word_set_duplicate_semantics(self):
        # "talk talk" must NOT be a subset of {"talk"} after folding.
        band = word_set("talk talk")
        single = word_set("talk")
        assert not band <= single
        assert single <= band

    def test_word_set_from_tokens(self):
        assert word_set(["a", "b", "a"]) == frozenset({"a", "b", "a__2"})
