"""Cross-structure property tests: every retrieval structure, one oracle.

The library's central guarantee is that all retrieval structures are
interchangeable.  This suite drives randomly generated corpora, mappings,
and queries through the full zoo simultaneously — the hash index (plain
and re-mapped), the trie, the sharded scatter-gather, the compressed
lookup (random suffix size and encoding), and the impact index — and
requires byte-identical result sets from all of them.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.impact_index import ImpactOrderedIndex
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.optimize.mapping import corpus_groups

words_alphabet = [f"w{i}" for i in range(9)]


def phrase_strategy(max_len=4):
    return st.lists(
        st.sampled_from(words_alphabet), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def full_setup(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=18))
    ads = [
        Advertisement.from_text(
            p, AdInfo(listing_id=i, bid_price_micros=draw(st.integers(1, 999)))
        )
        for i, p in enumerate(phrases)
    ]
    corpus = AdCorpus(ads)
    # A random valid mapping over the corpus's groups.
    assignment = {}
    for group in corpus_groups(corpus):
        if draw(st.booleans()):
            subset = draw(
                st.sets(
                    st.sampled_from(sorted(group.words)),
                    min_size=1,
                    max_size=len(group.words),
                )
            )
            assignment[group.words] = frozenset(subset)
    queries = [
        Query.from_text(q)
        for q in draw(
            st.lists(phrase_strategy(max_len=6), min_size=1, max_size=6)
        )
    ]
    suffix_bits = draw(st.integers(2, 20))
    encoding = draw(st.sampled_from(["plain", "rrr", "eliasfano"]))
    shards = draw(st.integers(1, 4))
    return corpus, assignment, queries, suffix_bits, encoding, shards


class TestEveryStructureAgrees:
    @given(full_setup())
    @settings(max_examples=60, deadline=None)
    def test_broad_match_identical_everywhere(self, setup):
        corpus, assignment, queries, suffix_bits, encoding, shards = setup
        remapped_hash = WordSetIndex.from_corpus(corpus, mapping=assignment)
        structures = [
            WordSetIndex.from_corpus(corpus),
            remapped_hash,
            TrieWordSetIndex.from_corpus(corpus, mapping=assignment),
            ShardedWordSetIndex.from_corpus(
                corpus, num_shards=shards, mapping=assignment
            ),
            CompressedWordSetIndex.from_index(
                remapped_hash,
                suffix_bits=suffix_bits,
                sig_encoding=encoding,
                offsets_encoding="eliasfano" if encoding != "plain" else "plain",
            ),
            ImpactOrderedIndex.from_corpus(corpus, mapping=assignment),
        ]
        for query in queries:
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            for structure in structures:
                got = sorted(
                    a.info.listing_id for a in structure.query(query)
                )
                assert got == expected, type(structure).__name__

    @given(full_setup())
    @settings(max_examples=30, deadline=None)
    def test_top_k_consistent_with_oracle_under_mapping(self, setup):
        corpus, assignment, queries, *_ = setup
        impact = ImpactOrderedIndex.from_corpus(corpus, mapping=assignment)
        for query in queries:
            oracle_bids = sorted(
                (a.info.bid_price_micros for a in naive_broad_match(corpus, query)),
                reverse=True,
            )[:3]
            got = [a.info.bid_price_micros for a in impact.query_top_k(query, 3)]
            assert got == oracle_bids
