"""Tests for the query-profiling (explain) API."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.explain import explain_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.cost.model import CostModel


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def index():
    return WordSetIndex.from_corpus(
        AdCorpus(
            [
                ad("books", 1),
                ad("used books", 2),
                ad("cheap used books", 3),
                ad("flights", 4),
            ]
        )
    )


class TestExplain:
    def test_matches_equal_query_broad(self, index):
        query = Query.from_text("cheap used books")
        explanation = explain_broad_match(index, query)
        assert sorted(explanation.matches) == sorted(
            a.info.listing_id for a in index.query(query)
        )

    def test_cost_equals_tracked_execution(self, index):
        model = CostModel(mem_hash_bytes=16)
        query = Query.from_text("cheap used books")
        tracker = AccessTracker()
        index.tracker = tracker
        index.query(query)
        executed = tracker.reset().modeled_ns(model)
        index.tracker = None
        explanation = explain_broad_match(index, query, model)
        assert explanation.total_cost_ns() == pytest.approx(executed)

    def test_probe_counts(self, index):
        explanation = explain_broad_match(index, Query.from_text("used books"))
        assert explanation.hash_probes == 3  # 2^2 - 1 subsets
        assert explanation.empty_probes == 1  # {used} has no node

    def test_early_termination_reported(self, index):
        # Re-map the 3-word ad under "used books"; a 2-word query must
        # early-terminate before reaching it.
        corpus = AdCorpus(
            [ad("used books", 2), ad("cheap used books", 3)]
        )
        mapping = {
            frozenset({"cheap", "used", "books"}): frozenset({"used", "books"})
        }
        remapped = WordSetIndex.from_corpus(corpus, mapping=mapping)
        explanation = explain_broad_match(
            remapped, Query.from_text("used books")
        )
        (visit,) = explanation.node_visits
        assert visit.early_terminated
        assert visit.entries_scanned == 1
        assert visit.entries_total == 2

    def test_no_match_query(self, index):
        explanation = explain_broad_match(index, Query.from_text("zz yy"))
        assert explanation.matches == []
        assert explanation.node_visits == ()
        assert explanation.empty_probes == explanation.hash_probes

    def test_truncation_flag(self):
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("a b", 1)]), max_query_words=3
        )
        long_query = Query.from_text("a b c d e f g")
        explanation = explain_broad_match(index, long_query)
        assert explanation.truncated

    def test_summary_text(self, index):
        text = explain_broad_match(
            index, Query.from_text("cheap used books")
        ).summary()
        assert "hash probes" in text
        assert "matches" in text

    def test_candidates_examined(self, index):
        explanation = explain_broad_match(
            index, Query.from_text("cheap used books")
        )
        assert explanation.candidates_examined >= 3
