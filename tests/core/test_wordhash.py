"""Tests for the stable order-independent word-set hash."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.core.wordhash import fnv1a, hash_suffix, wordhash

words_strategy = st.sets(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    min_size=1,
    max_size=8,
)


class TestFnv1a:
    def test_known_value_stability(self):
        # Pin the value: the index layout must be reproducible across runs.
        assert fnv1a("books") == fnv1a("books")
        assert fnv1a("") == 0xCBF29CE484222325

    def test_distinct_words_distinct_hashes(self):
        vocab = [f"word{i}" for i in range(2000)]
        assert len({fnv1a(w) for w in vocab}) == len(vocab)


class TestWordhash:
    def test_order_independent(self):
        assert wordhash(["used", "books"]) == wordhash(["books", "used"])

    def test_set_and_list_agree(self):
        assert wordhash({"a", "b"}) == wordhash(["a", "b"])

    def test_duplicates_in_iterable_ignored(self):
        # wordhash hashes the *set*; duplicate folding happens upstream.
        assert wordhash(["a", "a", "b"]) == wordhash(["a", "b"])

    def test_empty_set_nonzero(self):
        assert wordhash([]) != 0

    def test_subset_hashes_differ(self):
        assert wordhash({"a"}) != wordhash({"a", "b"})

    def test_no_collisions_among_small_random_sets(self):
        sets = []
        for i in range(1000):
            sets.append(frozenset({f"w{i}", f"w{i + 1}", f"w{2 * i + 7}"}))
        hashes = {wordhash(s) for s in set(sets)}
        assert len(hashes) == len(set(sets))

    @given(words_strategy)
    def test_deterministic(self, words):
        assert wordhash(words) == wordhash(sorted(words))

    @given(words_strategy, words_strategy)
    def test_different_sets_rarely_collide(self, a, b):
        if a != b:
            # 64-bit space: a hypothesis-sized sample must never collide.
            assert wordhash(a) != wordhash(b)

    def test_fits_in_64_bits(self):
        assert 0 <= wordhash({"x", "y", "z"}) < (1 << 64)


class TestHashSuffix:
    def test_masks_low_bits(self):
        assert hash_suffix(0b101101, 3) == 0b101

    def test_full_width(self):
        value = wordhash({"a"})
        assert hash_suffix(value, 64) == value

    def test_suffix_bounded(self):
        for bits in (1, 8, 28):
            assert 0 <= hash_suffix(wordhash({"q"}), bits) < (1 << bits)

    def test_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            hash_suffix(1, 0)
