"""Tests for the WordSetIndex, including property tests against the oracle."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType, naive_broad_match, naive_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


def build(ads, **kwargs):
    return WordSetIndex.from_corpus(AdCorpus(ads), **kwargs)


class TestBasicBroadMatch:
    def test_paper_example(self):
        index = build([ad("used books", 1), ad("comic books", 2)])
        result = index.query(Query.from_text("cheap used books"))
        assert [a.info.listing_id for a in result] == [1]

    def test_subset_bid_not_matched_by_shorter_query(self):
        index = build([ad("used books", 1)])
        assert index.query(Query.from_text("books")) == []

    def test_exact_wordset_match(self):
        index = build([ad("used books", 1)])
        result = index.query(Query.from_text("books used"))
        assert [a.info.listing_id for a in result] == [1]

    def test_multiple_ads_same_wordset(self):
        index = build([ad("used books", 1), ad("books used", 2)])
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}

    def test_no_match(self):
        index = build([ad("used books", 1)])
        assert index.query(Query.from_text("cheap flights")) == []

    def test_empty_index(self):
        index = WordSetIndex()
        assert index.query(Query.from_text("anything")) == []

    def test_duplicate_word_semantics(self):
        index = build([ad("talk talk", 1), ad("talk", 2)])
        only_band = index.query(Query.from_text("talk talk"))
        assert {a.info.listing_id for a in only_band} == {1, 2}
        just_talk = index.query(Query.from_text("talk"))
        assert {a.info.listing_id for a in just_talk} == {2}


class TestOtherMatchTypes:
    def test_exact(self):
        index = build([ad("used books", 1), ad("books used", 2)])
        result = index.query(Query.from_text("used books"), MatchType.EXACT)
        assert [a.info.listing_id for a in result] == [1]

    def test_phrase(self):
        index = build([ad("used books", 1), ad("books used", 2)])
        result = index.query(Query.from_text("cheap used books"), MatchType.PHRASE)
        assert [a.info.listing_id for a in result] == [1]

    def test_broad_via_query(self):
        index = build([ad("used books", 1)])
        result = index.query(Query.from_text("cheap used books"), MatchType.BROAD)
        assert len(result) == 1


class TestMappingPlacement:
    def test_explicit_remap_preserves_results(self):
        # Fig 4 -> Fig 5 of the paper: move "cheap used books" under
        # "cheap books".
        ads = [ad("cheap books", 1), ad("cheap used books", 2)]
        mapping = {
            frozenset({"cheap", "used", "books"}): frozenset({"cheap", "books"})
        }
        index = WordSetIndex.from_corpus(AdCorpus(ads), mapping=mapping)
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 2}
        assert index.stats().num_nodes == 1

    def test_remap_rejects_non_subset_locator(self):
        index = WordSetIndex()
        with pytest.raises(ValueError):
            index.insert(ad("used books"), locator=frozenset({"cheap"}))

    def test_remap_rejects_empty_locator(self):
        index = WordSetIndex()
        with pytest.raises(ValueError):
            index.insert(ad("used books"), locator=frozenset())

    def test_max_words_rejects_long_locator(self):
        index = WordSetIndex(max_words=2)
        with pytest.raises(ValueError):
            index.insert(ad("one two three"))

    def test_condition_iv_same_wordset_same_node(self):
        index = WordSetIndex()
        index.insert(ad("a b", 1), locator=frozenset({"a"}))
        # Second ad of the same word-set follows its group even if the
        # caller passes a different locator.
        index.insert(ad("a b", 2), locator=frozenset({"b"}))
        index.check_invariants()
        assert index.stats().num_nodes == 1

    def test_invariants_pass_for_identity_index(self):
        index = build([ad(f"w{i} common", i) for i in range(20)])
        index.check_invariants()


class TestDeletion:
    def test_delete_identity_placed(self):
        a = ad("used books", 1)
        index = build([a])
        assert index.delete(a)
        assert index.query(Query.from_text("used books")) == []
        assert len(index) == 0
        index.check_invariants()

    def test_delete_remapped_ad(self):
        a1, a2 = ad("cheap books", 1), ad("cheap used books", 2)
        mapping = {a2.words: a1.words}
        index = WordSetIndex.from_corpus(AdCorpus([a1, a2]), mapping=mapping)
        assert index.delete(a2)
        result = index.query(Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1}
        index.check_invariants()

    def test_delete_absent(self):
        index = build([ad("used books", 1)])
        assert not index.delete(ad("other phrase", 9))

    def test_delete_drops_empty_node(self):
        a = ad("solo", 1)
        index = build([a])
        index.delete(a)
        assert index.stats().num_nodes == 0

    def test_reinsert_after_delete(self):
        a = ad("used books", 1)
        index = build([a])
        index.delete(a)
        index.insert(a)
        assert len(index.query(Query.from_text("used books"))) == 1


class TestLongQueries:
    def test_long_query_truncation_keeps_working(self):
        index = build([ad("red shoes", 1)], max_query_words=4)
        long_query = Query.from_text("red shoes " + " ".join(f"f{i}" for i in range(10)))
        # Truncation may or may not retain the matching words without
        # selectivity data; with corpus frequencies the rare words win.
        result = index.query(long_query)
        assert all(a.words <= long_query.words for a in result)

    def test_max_words_bounds_probes(self):
        tracker = AccessTracker()
        ads = [ad("a b", 1)]
        # Without max_words, a 10-word query does 2^10-1 probes; with
        # max_words=2 only C(10,1)+C(10,2) = 55.  fast_path=False is the
        # paper's reference enumeration the formula describes.
        index = WordSetIndex.from_corpus(
            AdCorpus(ads),
            max_words=2,
            tracker=tracker,
            max_query_words=10,
            fast_path=False,
        )
        q = Query.from_text("a b " + " ".join(f"x{i}" for i in range(8)))
        index.query(q)
        assert tracker.stats.hash_probes == 55

    def test_fast_path_prunes_probes_identically(self):
        # Same setup on the fast path: only {a, b} are indexed words and
        # the single locator has size 2, so one probe suffices — with the
        # same results.
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("a b", 1)]),
            max_words=2,
            tracker=tracker,
            max_query_words=10,
        )
        q = Query.from_text("a b " + " ".join(f"x{i}" for i in range(8)))
        assert [a.info.listing_id for a in index.query(q)] == [1]
        assert tracker.stats.hash_probes == 1
        assert index.probe_count(q) == 1


class TestStatsAndAccounting:
    def test_stats_counts(self):
        index = build([ad("a b", 1), ad("a b", 2), ad("c", 3)])
        stats = index.stats()
        assert stats.num_ads == 3
        assert stats.num_nodes == 2
        assert stats.num_distinct_wordsets == 2
        assert stats.max_node_entries == 2
        assert stats.total_bytes == stats.hash_table_bytes + stats.node_bytes

    def test_tracker_counts_probes_and_scans(self):
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1)]),
            tracker=tracker,
            fast_path=False,
        )
        index.query(Query.from_text("used books"))
        # 3 subsets probed for a 2-word query; 1 node scanned.
        assert tracker.stats.hash_probes == 3
        assert tracker.stats.random_accesses == 4  # 3 probes + 1 node
        assert tracker.stats.queries == 1
        assert tracker.stats.bytes_scanned > 0

    def test_tracker_counts_pruned_probes(self):
        # The fast path skips the size-1 probes (the only locator has two
        # words): a single probe, still one node scanned.
        tracker = AccessTracker()
        index = WordSetIndex.from_corpus(
            AdCorpus([ad("used books", 1)]), tracker=tracker
        )
        index.query(Query.from_text("used books"))
        assert tracker.stats.hash_probes == 1
        assert tracker.stats.random_accesses == 2  # 1 probe + 1 node
        assert tracker.stats.queries == 1
        assert tracker.stats.bytes_scanned > 0


# ---------------------------------------------------------------------- #
# Property-based equivalence with the naive oracle.

words_alphabet = [f"w{i}" for i in range(12)]


def phrase_strategy(max_len=5):
    return st.lists(
        st.sampled_from(words_alphabet), min_size=1, max_size=max_len
    ).map(" ".join)


@st.composite
def corpus_and_queries(draw):
    phrases = draw(st.lists(phrase_strategy(), min_size=1, max_size=25))
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(st.lists(phrase_strategy(max_len=6), min_size=1, max_size=8))
    return ads, [Query.from_text(q) for q in queries]


class TestOracleEquivalence:
    @given(corpus_and_queries())
    @settings(max_examples=120, deadline=None)
    def test_broad_match_equals_naive(self, data):
        ads, queries = data
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        for query in queries:
            got = sorted(a.info.listing_id for a in index.query(query))
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == expected

    @given(corpus_and_queries())
    @settings(max_examples=60, deadline=None)
    def test_exact_and_phrase_equal_naive(self, data):
        ads, queries = data
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        for query in queries:
            for mt in (MatchType.EXACT, MatchType.PHRASE):
                got = sorted(a.info.listing_id for a in index.query(query, mt))
                expected = sorted(
                    a.info.listing_id for a in naive_match(corpus, query, mt)
                )
                assert got == expected

    @given(corpus_and_queries())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_after_build(self, data):
        ads, _ = data
        index = WordSetIndex.from_corpus(AdCorpus(ads))
        index.check_invariants()

    @given(
        corpus_and_queries(),
        st.lists(st.integers(0, 24), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_deletion_preserves_equivalence(self, data, delete_positions):
        ads, queries = data
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        remaining = list(ads)
        for pos in delete_positions:
            if pos < len(remaining):
                victim = remaining.pop(pos)
                assert index.delete(victim)
        index.check_invariants()
        for query in queries:
            got = sorted(a.info.listing_id for a in index.query(query))
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(remaining, query)
            )
            assert got == expected
