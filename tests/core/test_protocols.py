"""Conformance tests for the :class:`repro.core.RetrievalIndex` protocol.

Every pluggable retrieval structure must expose ``query(query, match_type)``,
``stats()``, and ``__len__``, and agree with the naive broad-match oracle.
The PR 2 migration is finished: the primary structures no longer carry the
``query_broad`` deprecation alias at all (only the inverted-index baselines
keep ``query_broad``, as their documented native surface).
"""

import warnings

import pytest

from repro.core import RetrievalIndex
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.impact_index import ImpactOrderedIndex
from repro.core.matching import MatchType, naive_broad_match
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.serving.result_cache import CachedIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture(scope="module")
def corpus():
    return AdCorpus(
        [
            ad("cheap used books", 1),
            ad("used books", 2),
            ad("books", 3),
            ad("rare maps", 4),
            ad("cheap flights paris", 5),
            ad("books used cheap", 6),  # same word-set as ad 1
        ]
    )


QUERIES = [
    "cheap used books",
    "books used cheap extra",
    "rare maps of paris",
    "cheap flights paris today",
    "no match at all",
    "books",
]


def build_wordset(corpus):
    return WordSetIndex.from_corpus(corpus)


def build_trie(corpus):
    return TrieWordSetIndex.from_corpus(corpus)


def build_sharded(corpus):
    return ShardedWordSetIndex.from_corpus(corpus, num_shards=3)


def build_impact(corpus):
    return ImpactOrderedIndex.from_corpus(corpus)


def build_cached(corpus):
    return CachedIndex(WordSetIndex.from_corpus(corpus), capacity=8)


def _packed_segment(corpus, directory):
    from repro.segment import PackedSegmentIndex, SegmentBuilder

    path = directory / "conformance.seg"
    SegmentBuilder(WordSetIndex.from_corpus(corpus)).write(path)
    return PackedSegmentIndex(path)


def build_packed_segment(corpus, tmp_path_factory):
    return _packed_segment(corpus, tmp_path_factory.mktemp("packed"))


def build_segmented(corpus, tmp_path_factory):
    from repro.segment import SegmentedIndex

    return SegmentedIndex(
        _packed_segment(corpus, tmp_path_factory.mktemp("segmented"))
    )


BUILDERS = {
    "WordSetIndex": build_wordset,
    "TrieWordSetIndex": build_trie,
    "ShardedWordSetIndex": build_sharded,
    "ImpactOrderedIndex": build_impact,
    "CachedIndex": build_cached,
}

# Segment-backed structures need a scratch file; their builders take the
# tmp_path_factory alongside the corpus.
FILE_BUILDERS = {
    "PackedSegmentIndex": build_packed_segment,
    "SegmentedIndex": build_segmented,
}


@pytest.fixture(
    params=sorted(BUILDERS) + sorted(FILE_BUILDERS), scope="module"
)
def structure(request, corpus, tmp_path_factory):
    if request.param in BUILDERS:
        yield BUILDERS[request.param](corpus)
        return
    built = FILE_BUILDERS[request.param](corpus, tmp_path_factory)
    yield built
    built.close()


class TestProtocolConformance:
    def test_satisfies_runtime_checkable_protocol(self, structure):
        assert isinstance(structure, RetrievalIndex)

    def test_len_counts_ads(self, structure, corpus):
        assert len(structure) == len(corpus)

    def test_stats_is_available(self, structure):
        assert structure.stats() is not None

    def test_broad_results_match_the_oracle(self, structure, corpus):
        for text in QUERIES:
            query = Query.from_text(text)
            expected = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            got = sorted(a.info.listing_id for a in structure.query(query))
            assert got == expected, text

    def test_explicit_broad_match_type_is_the_default(self, structure):
        query = Query.from_text("cheap used books")
        assert sorted(
            a.info.listing_id for a in structure.query(query)
        ) == sorted(
            a.info.listing_id
            for a in structure.query(query, MatchType.BROAD)
        )

    def test_phrase_match_filters_broad_candidates(self, structure):
        query = Query.from_text("cheap used books")
        phrase_ids = {
            a.info.listing_id
            for a in structure.query(query, MatchType.PHRASE)
        }
        broad_ids = {
            a.info.listing_id for a in structure.query(query)
        }
        assert phrase_ids <= broad_ids
        # Ad 6 has the same word-set but a different word order: broad
        # matches it, the phrase filter drops it.
        assert 1 in phrase_ids
        assert 6 in broad_ids and 6 not in phrase_ids

    def test_exact_match_requires_equal_phrase(self, structure):
        exact = structure.query(
            Query.from_text("cheap used books"), MatchType.EXACT
        )
        assert [a.info.listing_id for a in exact] == [1]


class TestRemovedAlias:
    def test_query_broad_alias_is_gone(self, structure):
        """The deprecation cycle is over: primary structures expose only
        ``query``; calling the old alias is an AttributeError."""
        assert not hasattr(structure, "query_broad")
        with pytest.raises(AttributeError):
            structure.query_broad(Query.from_text("cheap used books"))

    def test_query_does_not_warn(self, structure):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            structure.query(Query.from_text("cheap used books"))


class TestNonWarningSurfaces:
    """Baselines and wrappers share the surface without the deprecation."""

    def test_inverted_baselines_conform_without_warning(self, corpus):
        from repro.invindex import (
            CountingInvertedIndex,
            NonRedundantInvertedIndex,
            RedundantInvertedIndex,
        )

        query = Query.from_text("cheap used books")
        expected = sorted(
            a.info.listing_id for a in naive_broad_match(corpus, query)
        )
        for cls in (
            CountingInvertedIndex,
            NonRedundantInvertedIndex,
            RedundantInvertedIndex,
        ):
            index = cls.from_corpus(corpus)
            assert isinstance(index, RetrievalIndex)
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                got = sorted(
                    a.info.listing_id for a in index.query(query)
                )
                index.query_broad(query)  # baseline primary: no warning
            assert got == expected

    def test_compressed_index_conforms(self, corpus):
        from repro.compress.compressed_hash import CompressedWordSetIndex

        index = CompressedWordSetIndex.from_index(
            WordSetIndex.from_corpus(corpus), suffix_bits=12
        )
        assert isinstance(index, RetrievalIndex)
        assert len(index) == len(corpus)
        assert index.stats()["num_nodes"] >= 1
