"""Tests for advertisements, metadata, and the ad corpus."""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement


def ad(text, listing_id=0, **info_kwargs):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id, **info_kwargs))


class TestAdInfo:
    def test_size_without_exclusions(self):
        assert AdInfo(listing_id=1).size_bytes() == 16

    def test_size_with_exclusions(self):
        info = AdInfo(listing_id=1, exclusion_phrases=("free", "used"))
        assert info.size_bytes() == 16 + 5 + 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            AdInfo(listing_id=1).listing_id = 2


class TestAdvertisement:
    def test_from_text_tokenizes(self):
        a = ad("Cheap Used Books")
        assert a.phrase == ("cheap", "used", "books")
        assert a.words == frozenset({"cheap", "used", "books"})

    def test_duplicate_folding_in_bid(self):
        a = ad("talk talk")
        assert a.words == frozenset({"talk", "talk__2"})

    def test_phrase_size_bytes(self):
        a = ad("ab cd")
        assert a.phrase_size_bytes() == 3 + 3

    def test_size_includes_info(self):
        a = ad("ab")
        assert a.size_bytes() == a.phrase_size_bytes() + a.info.size_bytes()

    def test_equality_by_value(self):
        assert ad("used books", 5) == ad("used books", 5)
        assert ad("used books", 5) != ad("used books", 6)


class TestAdCorpus:
    @pytest.fixture()
    def corpus(self):
        return AdCorpus(
            [
                ad("used books", 1),
                ad("cheap used books", 2),
                ad("used books", 3),
                ad("cheap flights", 4),
            ]
        )

    def test_len_and_iteration(self, corpus):
        assert len(corpus) == 4
        assert len(list(corpus)) == 4

    def test_word_frequency(self, corpus):
        assert corpus.word_frequency("used") == 3
        assert corpus.word_frequency("cheap") == 2
        assert corpus.word_frequency("flights") == 1
        assert corpus.word_frequency("absent") == 0

    def test_wordset_frequency(self, corpus):
        assert corpus.wordset_frequency(frozenset({"used", "books"})) == 2
        assert corpus.wordset_frequency(frozenset({"nope"})) == 0

    def test_rarest_word(self, corpus):
        a = ad("cheap used books")
        assert corpus.rarest_word(a) == "cheap"

    def test_rarest_word_tie_break_lexical(self):
        corpus = AdCorpus([ad("alpha beta", 1)])
        assert corpus.rarest_word(corpus[0]) == "alpha"

    def test_distinct_wordsets(self, corpus):
        assert len(corpus.distinct_wordsets()) == 3

    def test_vocabulary(self, corpus):
        assert corpus.vocabulary() == {"used", "books", "cheap", "flights"}

    def test_length_histogram(self, corpus):
        assert corpus.length_histogram() == {2: 3, 3: 1}

    def test_ranked_frequencies_descending(self, corpus):
        ranked = corpus.wordset_frequencies_ranked()
        assert ranked == sorted(ranked, reverse=True)
        assert ranked[0] == 2

    def test_word_frequencies_ranked(self, corpus):
        assert corpus.word_frequencies_ranked()[0] == 3

    def test_total_size_bytes(self, corpus):
        assert corpus.total_size_bytes() == sum(a.size_bytes() for a in corpus)

    def test_incremental_add_updates_stats(self):
        corpus = AdCorpus()
        corpus.add(ad("new phrase", 9))
        assert corpus.word_frequency("new") == 1
        assert len(corpus) == 1

    def test_getitem(self, corpus):
        assert corpus[0].info.listing_id == 1
