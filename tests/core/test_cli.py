"""Tests for the operational CLI (build / query / explain / stats)."""

import pytest

from repro.cli import main


@pytest.fixture()
def ads_csv(tmp_path):
    path = tmp_path / "ads.csv"
    path.write_text(
        "bid_phrase,listing_id,bid_price_micros\n"
        "used books,1,300\n"
        "books,2,200\n"
        "cheap used books,3,500\n"
    )
    return path


@pytest.fixture()
def trace_tsv(tmp_path):
    path = tmp_path / "trace.tsv"
    path.write_text("cheap used books\t50\nused books\t20\n")
    return path


@pytest.fixture()
def snapshot(tmp_path, ads_csv):
    out = tmp_path / "index.jsonl"
    assert main(["build", "--ads", str(ads_csv), "--out", str(out)]) == 0
    return out


class TestBuild:
    def test_plain_build(self, tmp_path, ads_csv, capsys):
        out_path = tmp_path / "plain.jsonl"
        assert main(["build", "--ads", str(ads_csv), "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert "imported 3 ads" in capsys.readouterr().out

    def test_build_with_optimize(self, tmp_path, ads_csv, trace_tsv, capsys):
        out_path = tmp_path / "opt.jsonl"
        code = main(
            [
                "build",
                "--ads", str(ads_csv),
                "--out", str(out_path),
                "--workload", str(trace_tsv),
                "--optimize",
                "--max-words", "10",
            ]
        )
        assert code == 0
        assert "optimizing against 2 distinct queries" in capsys.readouterr().out
        assert out_path.exists()

    def test_optimize_without_workload_errors(self, tmp_path, ads_csv):
        code = main(
            [
                "build",
                "--ads", str(ads_csv),
                "--out", str(tmp_path / "x.jsonl"),
                "--optimize",
            ]
        )
        assert code == 2

    def test_build_with_max_words_only(self, tmp_path, ads_csv):
        out_path = tmp_path / "mw.jsonl"
        code = main(
            ["build", "--ads", str(ads_csv), "--out", str(out_path),
             "--max-words", "2"]
        )
        assert code == 0


class TestQuery:
    def test_broad_query(self, snapshot, capsys):
        assert main(["query", str(snapshot), "cheap used books online"]) == 0
        out = capsys.readouterr().out
        assert "listing 3" in out and "listing 1" in out and "listing 2" in out
        assert "3 broad-match result(s)" in out

    def test_exact_query(self, snapshot, capsys):
        assert main(
            ["query", str(snapshot), "used books", "--match", "exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "listing 1" in out
        assert "1 exact-match result(s)" in out

    def test_top_limits_output(self, snapshot, capsys):
        assert main(
            ["query", str(snapshot), "cheap used books", "--top", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("listing ") == 1

    def test_no_results(self, snapshot, capsys):
        assert main(["query", str(snapshot), "zz qq"]) == 0
        assert "0 broad-match result(s)" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture()
    def queries_file(self, tmp_path):
        path = tmp_path / "queries.txt"
        path.write_text(
            "cheap used books\n"
            "used books cheap\n"  # same word-set -> deduped
            "\n"
            "books\n"
            "zz qq\n"
        )
        return path

    def test_batch_summary(self, snapshot, queries_file, capsys):
        assert main(["batch", str(snapshot), str(queries_file)]) == 0
        out = capsys.readouterr().out
        assert "4 queries (3 distinct, 25% deduped)" in out
        assert "qps" in out

    def test_batch_show_per_query(self, snapshot, queries_file, capsys):
        assert main(
            ["batch", str(snapshot), str(queries_file), "--show"]
        ) == 0
        out = capsys.readouterr().out
        assert "'cheap used books': 3 result(s)" in out
        assert "'zz qq': 0 result(s)" in out

    def test_batch_sharded_with_workers(self, snapshot, queries_file, capsys):
        assert main(
            [
                "batch", str(snapshot), str(queries_file),
                "--shards", "2", "--workers", "2", "--show",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "'cheap used books': 3 result(s)" in out

    def test_batch_exact_match(self, snapshot, queries_file, capsys):
        assert main(
            ["batch", str(snapshot), str(queries_file), "--match", "exact"]
        ) == 0
        assert "-> 2 results" in capsys.readouterr().out

    def test_batch_stdin(self, snapshot, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("books\n"))
        assert main(["batch", str(snapshot), "-"]) == 0
        assert "1 queries" in capsys.readouterr().out

    def test_batch_empty_input_errors(self, snapshot, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("\n")
        assert main(["batch", str(snapshot), str(empty)]) == 2


class TestExplainAndStats:
    def test_explain(self, snapshot, capsys):
        assert main(["explain", str(snapshot), "cheap used books"]) == 0
        out = capsys.readouterr().out
        assert "hash probes" in out and "matches: 3" in out

    def test_stats(self, snapshot, capsys):
        assert main(["stats", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "ads:                 3" in out
        assert "data nodes:" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestProfile:
    def test_profile_corpus_only(self, ads_csv, capsys):
        assert main(["profile", "--ads", str(ads_csv)]) == 0
        out = capsys.readouterr().out
        assert "== corpus ==" in out and "bid lengths" in out

    def test_profile_with_workload(self, ads_csv, trace_tsv, capsys):
        assert main(
            ["profile", "--ads", str(ads_csv), "--workload", str(trace_tsv)]
        ) == 0
        out = capsys.readouterr().out
        assert "== workload ==" in out and "traffic" in out


class TestRecover:
    @pytest.fixture()
    def durable_paths(self, tmp_path):
        from repro.core.ads import AdCorpus, AdInfo, Advertisement
        from repro.oplog import DurableIndex

        snapshot = tmp_path / "snapshot.jsonl"
        log = tmp_path / "ops.log"
        seed = AdCorpus(
            [
                Advertisement.from_text(
                    "used books", AdInfo(listing_id=1)
                )
            ]
        )
        durable = DurableIndex(snapshot, log, corpus=seed)
        durable.insert(
            Advertisement.from_text(
                "cheap maps", AdInfo(listing_id=2)
            )
        )
        durable.close()
        return snapshot, log

    def test_plain_recover_reports(self, durable_paths, capsys):
        snapshot, log = durable_paths
        assert main(["recover", str(snapshot), str(log)]) == 0
        out = capsys.readouterr().out
        assert "replayed ops:         1" in out
        assert "live ads:             2" in out
        assert "snapshot generation:  0" in out

    def test_recover_verify_ok(self, durable_paths, capsys):
        snapshot, log = durable_paths
        assert main(["recover", str(snapshot), str(log), "--verify"]) == 0
        assert "verify OK: 2 ads retrievable" in capsys.readouterr().out

    def test_recover_compact_bumps_generation(self, durable_paths, capsys):
        snapshot, log = durable_paths
        assert main(["recover", str(snapshot), str(log), "--compact"]) == 0
        out = capsys.readouterr().out
        assert "compacted into generation 1" in out
        assert log.read_text() == ""
        # Second invocation sees the new generation and an empty log.
        assert main(["recover", str(snapshot), str(log)]) == 0
        out = capsys.readouterr().out
        assert "snapshot generation:  1" in out
        assert "replayed ops:         0" in out

    def test_recover_truncates_torn_tail(self, durable_paths, capsys):
        from repro.faults import tear_tail

        snapshot, log = durable_paths
        tear_tail(log, keep_fraction=0.5)
        assert main(["recover", str(snapshot), str(log)]) == 0
        out = capsys.readouterr().out
        assert "torn tail truncated:  True" in out
        assert "replayed ops:         0" in out

    def test_recover_unreadable_snapshot_fails(self, tmp_path, capsys):
        snapshot = tmp_path / "snapshot.jsonl"
        snapshot.write_text("not json\n")
        log = tmp_path / "ops.log"
        log.write_text("")
        assert main(["recover", str(snapshot), str(log)]) == 1
        assert "recovery FAILED" in capsys.readouterr().err


class TestPackAndSegmentServing:
    @pytest.fixture()
    def segment(self, tmp_path, snapshot):
        out = tmp_path / "index.seg"
        assert main(["pack", str(snapshot), str(out)]) == 0
        return out

    def test_pack_reports_summary(self, tmp_path, snapshot, capsys):
        out = tmp_path / "packed.seg"
        assert main(["pack", str(snapshot), str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "packed 3 ads" in stdout
        assert out.exists()

    def test_pack_with_suffix_bits(self, tmp_path, snapshot, capsys):
        out = tmp_path / "narrow.seg"
        assert main(
            ["pack", str(snapshot), str(out), "--suffix-bits", "4"]
        ) == 0
        assert "suffix bits 4" in capsys.readouterr().out

    def test_query_segment_matches_snapshot(self, snapshot, segment, capsys):
        assert main(["query", str(snapshot), "cheap used books online"]) == 0
        from_snapshot = capsys.readouterr().out
        assert main(
            ["query", "--segment", str(segment), "cheap used books online"]
        ) == 0
        assert capsys.readouterr().out == from_snapshot

    def test_query_segment_exact_match(self, segment, capsys):
        assert main(
            ["query", "--segment", str(segment), "used books",
             "--match", "exact"]
        ) == 0
        out = capsys.readouterr().out
        assert "listing 1" in out
        assert "1 exact-match result(s)" in out

    def test_stats_segment(self, segment, capsys):
        assert main(["stats", "--segment", str(segment)]) == 0
        out = capsys.readouterr().out
        assert "ads:                 3" in out
        assert "segment bytes:" in out
        assert "suffix bits:" in out

    def test_stats_segment_replay_emits_metrics(
        self, segment, trace_tsv, capsys
    ):
        assert main(
            ["stats", "--segment", str(segment), "--replay", str(trace_tsv),
             "--metrics-format", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "repro_segment_queries_total 2" in out

    def test_recover_pack_emits_servable_segment(self, tmp_path, capsys):
        from repro.core.ads import AdCorpus, AdInfo, Advertisement
        from repro.oplog import DurableIndex

        snapshot = tmp_path / "snapshot.jsonl"
        log = tmp_path / "ops.log"
        seed = AdCorpus(
            [Advertisement.from_text("used books", AdInfo(listing_id=1))]
        )
        durable = DurableIndex(snapshot, log, corpus=seed)
        durable.insert(
            Advertisement.from_text("cheap maps", AdInfo(listing_id=2))
        )
        durable.close()

        segment = tmp_path / "recovered.seg"
        assert main(
            ["recover", str(snapshot), str(log), "--pack", str(segment)]
        ) == 0
        assert "packed recovered index" in capsys.readouterr().out

        # The packed artifact serves the recovered corpus, log included.
        assert main(
            ["query", "--segment", str(segment), "cheap maps here"]
        ) == 0
        assert "listing 2" in capsys.readouterr().out
