"""Tests for data nodes: ordering, early termination, scan accounting."""

import random

from repro.core.ads import AdInfo, Advertisement
from repro.core.data_node import ENTRY_HEADER_BYTES, NODE_HEADER_BYTES, DataNode


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


class TestOrdering:
    def test_entries_sorted_by_word_count(self):
        node = DataNode(frozenset({"books"}))
        node.add(ad("cheap used books"))
        node.add(ad("books"))
        node.add(ad("used books"))
        assert [e.word_count for e in node.entries] == [1, 2, 3]
        assert node.is_ordered()

    def test_random_insertion_order_stays_sorted(self):
        node = DataNode(frozenset({"w0"}))
        ads = [ad(" ".join(f"w{j}" for j in range(n + 1)), n) for n in range(8)]
        rng = random.Random(0)
        rng.shuffle(ads)
        for a in ads:
            node.add(a)
        assert node.is_ordered()

    def test_same_wordset_contiguous(self):
        node = DataNode(frozenset({"a"}))
        node.add(ad("a b", 1))
        node.add(ad("a c", 2))
        node.add(ad("a b", 3))  # same word-set as listing 1
        sets = [e.ad.words for e in node.entries]
        # listing 3 must sit adjacent to listing 1.
        first = sets.index(frozenset({"a", "b"}))
        assert sets[first + 1] == frozenset({"a", "b"})


class TestScan:
    def make_node(self):
        node = DataNode(frozenset({"books"}))
        node.add(ad("books", 1))
        node.add(ad("used books", 2))
        node.add(ad("cheap used books", 3))
        return node

    def test_broad_match_results(self):
        node = self.make_node()
        matched, _ = node.scan(frozenset({"cheap", "used", "books"}))
        assert {a.info.listing_id for a in matched} == {1, 2, 3}

    def test_early_termination_skips_long_entries(self):
        node = self.make_node()
        matched, scanned = node.scan(frozenset({"used", "books"}))
        assert {a.info.listing_id for a in matched} == {1, 2}
        # The 3-word entry must not be scanned for a 2-word query.
        full = node.size_bytes()
        assert scanned < full

    def test_scan_bytes_cover_nonmatching_entries(self):
        node = DataNode(frozenset({"books"}))
        node.add(ad("books comic", 1))
        node.add(ad("books used", 2))
        matched, scanned = node.scan(frozenset({"books", "used"}))
        assert [a.info.listing_id for a in matched] == [2]
        # Both 2-word entries were touched even though only one matched.
        expected = NODE_HEADER_BYTES + sum(e.size_bytes for e in node.entries)
        assert scanned == expected

    def test_scan_bytes_for_query_len_matches_scan(self):
        node = self.make_node()
        for qlen in range(1, 5):
            q = frozenset(f"x{i}" for i in range(qlen))
            _, scanned = node.scan(q)
            assert scanned == node.scan_bytes_for_query_len(qlen)

    def test_empty_node_scan(self):
        node = DataNode(frozenset({"x"}))
        matched, scanned = node.scan(frozenset({"x"}))
        assert matched == []
        assert scanned == NODE_HEADER_BYTES


class TestRemoveAndSize:
    def test_remove_existing(self):
        node = DataNode(frozenset({"a"}))
        target = ad("a b", 1)
        node.add(target)
        assert node.remove(target)
        assert len(node) == 0

    def test_remove_absent(self):
        node = DataNode(frozenset({"a"}))
        node.add(ad("a b", 1))
        assert not node.remove(ad("a c", 2))
        assert len(node) == 1

    def test_size_bytes(self):
        node = DataNode(frozenset({"a"}))
        a = ad("a b")
        node.add(a)
        assert node.size_bytes() == (
            NODE_HEADER_BYTES + ENTRY_HEADER_BYTES + a.size_bytes()
        )

    def test_distinct_wordsets(self):
        node = DataNode(frozenset({"a"}))
        node.add(ad("a b", 1))
        node.add(ad("a b", 2))
        node.add(ad("a c", 3))
        assert len(node.distinct_wordsets()) == 2
