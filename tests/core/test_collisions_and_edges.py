"""Forced hash collisions and edge-case inputs.

Real 64-bit ``wordhash`` collisions are unreachable in tests, but the
paper's correctness argument explicitly tolerates them ("it is necessary
to represent the phrases themselves due to the possibility of hash
collisions").  We force collisions by monkeypatching the index module's
hash with a deliberately weak one and check results stay exact.
"""

import pytest

import repro.core.wordset_index as wsi
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def weak_hash(monkeypatch):
    """Collide everything into 4 buckets."""
    from repro.core.wordhash import wordhash as real

    monkeypatch.setattr(wsi, "wordhash", lambda words: real(words) % 4)


class TestForcedCollisions:
    def test_results_exact_under_heavy_collisions(self, weak_hash):
        ads = [ad(f"w{i} shared", i) for i in range(20)] + [
            ad("shared", 100),
            ad("other topic", 101),
        ]
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        # With 4 buckets for ~22 word-sets, nearly every node is shared.
        assert index.stats().num_nodes <= 4
        for qtext in ("w3 shared", "shared", "other topic now", "no hit"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in index.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(corpus, q))
            assert got == want

    def test_no_duplicate_results_when_subsets_collide(self, weak_hash):
        # Two probed subsets of one query share a bucket: the visited-set
        # guard must keep each ad reported once.
        corpus = AdCorpus([ad(f"x{i} y{i}", i) for i in range(12)])
        index = WordSetIndex.from_corpus(corpus)
        q = Query.from_text("x1 y1 x2 y2")
        ids = [a.info.listing_id for a in index.query(q)]
        assert len(ids) == len(set(ids))

    def test_deletion_under_collisions(self, weak_hash):
        ads = [ad(f"c{i} common", i) for i in range(10)]
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        assert index.delete(ads[3])
        q = Query.from_text("c3 common")
        assert 3 not in {a.info.listing_id for a in index.query(q)}
        assert len(index) == 9

    def test_delete_under_remapping_with_colliding_wordsets(self, monkeypatch):
        """Regression: two word-sets sharing one node through a hash
        collision, one of them re-mapped.  Deleting either group must
        unregister *its own* placement locator (not the node's), keep the
        other group queryable, and only drop the node when empty."""
        from repro.core.wordhash import wordhash as real

        remap_locator = frozenset({"used", "books"})
        colliding = frozenset({"maps"})

        def fake(words):
            if words == colliding:
                return real(remap_locator)
            return real(words)

        monkeypatch.setattr(wsi, "wordhash", fake)

        remapped = ad("cheap used books", 1)
        other = ad("maps", 2)
        index = WordSetIndex.from_corpus(
            AdCorpus([remapped, other]),
            mapping={remapped.words: remap_locator},
        )
        # One shared node; both groups found through their own locators.
        assert index.stats().num_nodes == 1
        index.check_invariants()
        assert [a.info.listing_id for a in index.query(
            Query.from_text("cheap used books today")
        )] == [1]

        assert index.delete(remapped)
        index.check_invariants()
        assert len(index) == 1
        # The survivor's size-1 locator must still be probed (the old
        # node-locator bookkeeping dropped the wrong refcounts here).
        assert [a.info.listing_id for a in index.query(
            Query.from_text("old maps")
        )] == [2]
        assert index.query(Query.from_text("cheap used books")) == []

        assert index.delete(other)
        index.check_invariants()
        assert len(index) == 0
        assert index.stats().num_nodes == 0
        assert index.indexed_vocabulary() == frozenset()
        assert index.locator_size_histogram() == {}


class TestUnicodeAndEdgeInputs:
    def test_unicode_bid_phrases(self):
        corpus = AdCorpus(
            [
                Advertisement.from_text("günstige bücher", AdInfo(listing_id=1)),
                Advertisement.from_text("本 安い", AdInfo(listing_id=2)),
            ]
        )
        index = WordSetIndex.from_corpus(corpus)
        for text, expected in (
            ("günstige bücher online", [1]),
            ("本 安い 即日", [2]),
            ("unrelated query", []),
        ):
            q = Query.from_text(text)
            got = sorted(a.info.listing_id for a in index.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(corpus, q))
            assert got == want == expected

    def test_very_long_word(self):
        long_word = "x" * 500
        a = Advertisement.from_text(f"{long_word} books", AdInfo(listing_id=1))
        index = WordSetIndex.from_corpus(AdCorpus([a]))
        q = Query.from_text(f"{long_word} books cheap")
        assert [x.info.listing_id for x in index.query(q)] == [1]

    def test_numeric_only_bid(self):
        a = Advertisement.from_text("2024 calendar", AdInfo(listing_id=1))
        index = WordSetIndex.from_corpus(AdCorpus([a]))
        q = Query.from_text("2024 calendar cheap")
        assert len(index.query(q)) == 1

    def test_many_duplicate_words(self):
        a = Advertisement.from_text("la la la la la", AdInfo(listing_id=1))
        index = WordSetIndex.from_corpus(AdCorpus([a]))
        assert index.query(Query.from_text("la la la la")) == []
        assert len(index.query(Query.from_text("la la la la la"))) == 1

    def test_single_word_corpus_large(self):
        ads = [ad(f"kw{i:04d}", i) for i in range(500)]
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        assert index.stats().num_nodes == 500
        q = Query.from_text("kw0042 kw0123")
        assert {a.info.listing_id for a in index.query(q)} == {42, 123}
