"""Crashpoint-catalog tests: every named crashpoint in the durability
path is crashed, recovered from, and checked against a no-crash oracle.

The oracle is the in-memory truth: the set of ads whose mutations are
*durable* at the instant of the crash under the WAL discipline — an op
whose log record reached the file survives the crash; an op that crashed
before (or during) its log write is lost.  After recovery the corpus and
the broad-match query results must match that oracle exactly.

Includes the two named pre-PR regressions:

* **torn-tail restart-twice** — crash mid-append, restart (recovery
  tolerates the torn tail), mutate, restart again.  Pre-PR the second
  restart raised ``PersistenceError`` because the torn line was left in
  the log and new records landed after it.
* **compact-crash stale-replay** — crash between compaction's snapshot
  rename and log truncation.  Pre-PR recovery replayed the (already
  compacted) log onto the fresh snapshot, duplicating every logged ad.
"""

import pytest

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.faults import FaultInjector, InjectedCrash, bit_flip, tear_tail
from repro.obs import MetricsRegistry
from repro.oplog import DurableIndex
from repro.persist import PersistenceError


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


def ids(ads):
    return sorted(a.info.listing_id for a in ads)


PROBES = ("base seed books", "crash op books", "books gone", "nothing here")


def assert_matches_oracle(durable, oracle_ads):
    """Corpus and broad-match results must equal the oracle exactly."""
    assert ids(durable.corpus) == ids(oracle_ads)
    assert len(durable) == len(oracle_ads)
    for text in PROBES:
        query = Query.from_text(text)
        got = ids(durable.query(query))
        want = ids(naive_broad_match(oracle_ads, query))
        assert got == want, f"query {text!r} diverged from oracle"


@pytest.fixture()
def paths(tmp_path):
    return tmp_path / "snapshot.jsonl", tmp_path / "ops.log"


@pytest.fixture()
def injector():
    return FaultInjector()


def fresh(paths, injector, listing_ids=(1, 2)):
    snapshot, log = paths
    corpus = AdCorpus([ad(f"base seed w{i}", i) for i in listing_ids])
    return DurableIndex(snapshot, log, corpus=corpus, faults=injector)


class TestAppendCrashpoints:
    """Crashes inside one mutation, at each point of the WAL sequence."""

    @pytest.mark.parametrize(
        ("point", "op_survives"),
        [
            ("oplog.append.start", False),   # nothing reached the log
            ("oplog.append.torn", False),    # half a record reached it
            ("oplog.append.synced", True),   # full record on disk
            ("oplog.insert.logged", True),   # logged, not yet applied
        ],
    )
    def test_insert_crash(self, paths, injector, point, op_survives):
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        new_ad = ad("crash op", 11)
        with injector.arm(point):
            with pytest.raises(InjectedCrash):
                durable.insert(new_ad)
        durable.close()

        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("complete op", 10)]
        if op_survives:
            oracle.append(new_ad)
        recovered = DurableIndex(snapshot, log)
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    @pytest.mark.parametrize(
        ("point", "op_survives"),
        [
            ("oplog.append.start", False),
            ("oplog.append.torn", False),
            ("oplog.append.synced", True),
            ("oplog.delete.logged", True),
        ],
    )
    def test_delete_crash(self, paths, injector, point, op_survives):
        snapshot, log = paths
        durable = fresh(paths, injector)
        victim = ad("base seed w2", 2)
        with injector.arm(point):
            with pytest.raises(InjectedCrash):
                durable.delete(victim)
        durable.close()

        oracle = [ad("base seed w1", 1)]
        if not op_survives:
            oracle.append(victim)
        recovered = DurableIndex(snapshot, log)
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    def test_crashed_op_never_half_applied(self, paths, injector):
        """A crash after logging but before applying must not leave the
        *running* process half-mutated either: corpus and index agree."""
        durable = fresh(paths, injector)
        with injector.arm("oplog.insert.logged"):
            with pytest.raises(InjectedCrash):
                durable.insert(ad("crash op", 11))
        # Memory was never mutated (log-then-apply): index and corpus
        # both still hold exactly the seed ads.
        assert ids(durable.corpus) == [1, 2]
        assert len(durable) == 2
        durable.close()


class TestSaveCrashpoints:
    """Crashes inside atomic snapshot writes."""

    @pytest.mark.parametrize(
        "point", ["save.tmp_written", "save.tmp_synced"]
    )
    def test_crash_before_rename_preserves_old_snapshot(
        self, paths, injector, point
    ):
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        with injector.arm(point):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        # The old snapshot + full log are intact: nothing is lost.
        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("complete op", 10)]
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.generation == 0
        assert recovered.recovery.replayed_ops == 1
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    def test_crash_leaves_unique_temp_that_never_blocks(self, paths, injector):
        """A crashed save leaves its temp file behind (as power loss
        would) — but unique temp names mean the next save never collides
        with or renames the stale garbage."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        with injector.arm("save.tmp_written"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        leftovers = list(snapshot.parent.glob(f".{snapshot.name}.*.tmp"))
        assert leftovers, "crashed save should leave its temp file"
        durable.compact()  # must succeed despite the leftover
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.generation == durable.generation
        assert ids(recovered.corpus) == [1, 2]
        recovered.close()

    def test_crash_after_rename_is_fully_durable(self, paths, injector):
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        with injector.arm("save.renamed"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        # Snapshot renamed => compaction is effective; the stale log is
        # skipped by the generation check.
        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("complete op", 10)]
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.generation == 1
        assert recovered.recovery.stale_ops_skipped == 1
        assert recovered.recovery.replayed_ops == 0
        assert_matches_oracle(recovered, oracle)
        recovered.close()


class TestCompactionCrashpoints:
    def test_regression_compact_crash_stale_replay(self, paths, injector):
        """THE pre-PR compaction bug: crash between snapshot rename and
        log truncation used to replay the already-compacted ops onto the
        fresh snapshot, duplicating every logged ad."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        for i in range(5):
            durable.insert(ad(f"crash op round{i}", 10 + i))
        with injector.arm("compact.snapshot_written"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        oracle = [ad("base seed w1", 1), ad("base seed w2", 2)] + [
            ad(f"crash op round{i}", 10 + i) for i in range(5)
        ]
        recovered = DurableIndex(snapshot, log)
        # Pre-PR: len == 12 (the five inserts applied twice).
        assert_matches_oracle(recovered, oracle)
        assert recovered.recovery.stale_ops_skipped == 5
        assert recovered.recovery.replayed_ops == 0
        assert recovered.recovery.generation == 1
        recovered.close()

    def test_compact_crash_then_mutate_then_recover(self, paths, injector):
        """After recovering from a compaction crash, new mutations land
        in the new generation and replay cleanly."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("crash op", 10))
        with injector.arm("compact.snapshot_written"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        middle = DurableIndex(snapshot, log)
        middle.insert(ad("books after recovery", 20))
        middle.close()

        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("crash op", 10), ad("books after recovery", 20)]
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.replayed_ops == 1
        assert recovered.recovery.stale_ops_skipped == 0
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    def test_crash_after_truncation_loses_nothing(self, paths, injector):
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("crash op", 10))
        with injector.arm("compact.log_truncated"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("crash op", 10)]
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.replayed_ops == 0
        assert recovered.recovery.stale_ops_skipped == 0
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    def test_completed_compaction_bumps_generation(self, paths, injector):
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("crash op", 10))
        durable.compact()
        assert durable.generation == 1
        durable.compact()
        assert durable.generation == 2
        durable.close()
        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.generation == 2
        assert ids(recovered.corpus) == [1, 2, 10]
        recovered.close()


class TestTornTailRecovery:
    def test_regression_torn_tail_restart_twice(self, paths, injector):
        """THE pre-PR torn-tail bug: recovery tolerated the torn line but
        left it in the log; new records then landed after it and the
        *second* restart refused to start."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        with injector.arm("oplog.append.torn"):
            with pytest.raises(InjectedCrash):
                durable.insert(ad("crash op", 11))
        durable.close()

        first = DurableIndex(snapshot, log)
        assert first.recovery.truncated_tail
        first.insert(ad("books after crash", 12))  # lands after the tear
        first.close()

        # Pre-PR this raised PersistenceError("... valid records after it").
        second = DurableIndex(snapshot, log)
        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("complete op", 10), ad("books after crash", 12)]
        assert not second.recovery.truncated_tail
        assert second.recovery.replayed_ops == 2
        assert_matches_oracle(second, oracle)
        second.close()

    def test_mutator_torn_tail_truncated_on_disk(self, paths, injector):
        """The tear_tail mutator (external corruption, not a crashpoint)
        exercises the same truncate-before-append path."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        durable.insert(ad("torn away", 11))
        durable.close()
        tear_tail(log, keep_fraction=0.6)

        recovered = DurableIndex(snapshot, log)
        assert recovered.recovery.truncated_tail
        assert recovered.recovery.replayed_ops == 1
        # The log on disk is clean again: exactly the replayed records.
        assert len(log.read_text().splitlines()) == 1
        oracle = [ad("base seed w1", 1), ad("base seed w2", 2),
                  ad("complete op", 10)]
        assert_matches_oracle(recovered, oracle)
        recovered.close()

    def test_mid_log_bit_flip_still_hard_fails(self, paths, injector):
        """Generation ids and tail-truncation must not weaken the
        mid-log integrity guarantee: a bit flip before the tail refuses
        to start."""
        snapshot, log = paths
        durable = fresh(paths, injector)
        for i in range(6):
            durable.insert(ad(f"crash op round{i}", 10 + i))
        durable.close()
        bit_flip(log, offset=len(log.read_text()) // 3)
        with pytest.raises(PersistenceError, match="valid records after"):
            DurableIndex(snapshot, log)


class TestObservability:
    def test_recovery_counters(self, paths):
        snapshot, log = paths
        registry = MetricsRegistry()
        injector = FaultInjector(obs=registry)
        durable = fresh(paths, injector)
        durable.insert(ad("complete op", 10))
        with injector.arm("compact.snapshot_written"):
            with pytest.raises(InjectedCrash):
                durable.compact()
        durable.close()

        recovered = DurableIndex(
            snapshot, log, obs=registry, faults=injector
        )
        assert registry.value("faults_injected") == 1
        assert registry.value("recoveries") == 1
        assert registry.value("stale_ops_skipped") == 1
        recovered.close()

    def test_torn_tail_counter(self, paths):
        snapshot, log = paths
        registry = MetricsRegistry()
        durable = fresh(paths, FaultInjector())
        durable.insert(ad("complete op", 10))
        durable.close()
        tear_tail(log)
        recovered = DurableIndex(snapshot, log, obs=registry)
        assert registry.value("durability.torn_tails_truncated") == 1
        assert registry.value("recoveries") == 1
        recovered.close()
