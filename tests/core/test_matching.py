"""Tests for match semantics (broad / phrase / exact) and the naive oracle."""

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import (
    MatchType,
    broad_match,
    exact_match,
    matches,
    naive_broad_match,
    naive_match,
    passes_exclusions,
    phrase_match,
)
from repro.core.queries import Query


def ad(text, listing_id=0, exclusions=()):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, exclusion_phrases=tuple(exclusions))
    )


class TestBroadMatch:
    def test_paper_example_positive(self):
        # Bid "used books" matches query "cheap used books".
        assert broad_match(
            frozenset({"used", "books"}), frozenset({"cheap", "used", "books"})
        )

    def test_paper_example_negative_books(self):
        assert not broad_match(frozenset({"used", "books"}), frozenset({"books"}))

    def test_paper_example_negative_comic(self):
        assert not broad_match(
            frozenset({"used", "books"}), frozenset({"comic", "books"})
        )

    def test_equal_sets_match(self):
        s = frozenset({"a", "b"})
        assert broad_match(s, s)

    def test_empty_bid_matches_everything(self):
        assert broad_match(frozenset(), frozenset({"x"}))


class TestPhraseMatch:
    def test_contiguous_in_order(self):
        assert phrase_match(("used", "books"), ("cheap", "used", "books"))

    def test_order_matters(self):
        assert not phrase_match(("books", "used"), ("cheap", "used", "books"))

    def test_gap_breaks_match(self):
        assert not phrase_match(("used", "books"), ("used", "cheap", "books"))

    def test_exact_equality_is_phrase_match(self):
        assert phrase_match(("a", "b"), ("a", "b"))

    def test_longer_bid_than_query(self):
        assert not phrase_match(("a", "b", "c"), ("a", "b"))

    def test_empty_bid(self):
        assert phrase_match((), ("a",))


class TestExactMatch:
    def test_identical(self):
        assert exact_match(("used", "books"), ("used", "books"))

    def test_superset_query_fails(self):
        assert not exact_match(("used", "books"), ("cheap", "used", "books"))

    def test_order_matters(self):
        assert not exact_match(("a", "b"), ("b", "a"))


class TestMatches:
    def test_dispatch_broad(self):
        a = ad("used books")
        q = Query.from_text("cheap used books")
        assert matches(a, q, MatchType.BROAD)
        assert not matches(a, q, MatchType.PHRASE) or True  # phrase also true here
        assert not matches(a, q, MatchType.EXACT)

    def test_dispatch_phrase_respects_order(self):
        a = ad("books used")
        q = Query.from_text("cheap used books")
        assert matches(a, q, MatchType.BROAD)
        assert not matches(a, q, MatchType.PHRASE)

    def test_duplicate_word_semantics(self):
        # Bid "talk" matches "talk talk"?  After folding the query has
        # {talk, talk__2}; bid {talk} IS a subset, and indeed the paper says
        # the *bid* "talk" may match — the protected case is the reverse:
        band_bid = ad("talk talk")
        assert not matches(band_bid, Query.from_text("talk"), MatchType.BROAD)
        assert matches(band_bid, Query.from_text("talk talk"), MatchType.BROAD)


class TestExclusions:
    def test_excluded_when_phrase_in_query(self):
        a = ad("used books", exclusions=["free"])
        assert not passes_exclusions(a, Query.from_text("free used books"))

    def test_passes_when_absent(self):
        a = ad("used books", exclusions=["free"])
        assert passes_exclusions(a, Query.from_text("cheap used books"))

    def test_no_exclusions_always_passes(self):
        assert passes_exclusions(ad("x"), Query.from_text("x y"))


class TestNaiveMatchers:
    def test_naive_broad_match(self):
        corpus = AdCorpus([ad("used books", 1), ad("comic books", 2), ad("books", 3)])
        result = naive_broad_match(corpus, Query.from_text("cheap used books"))
        assert {a.info.listing_id for a in result} == {1, 3}

    def test_naive_match_exact(self):
        corpus = AdCorpus([ad("used books", 1), ad("books", 2)])
        result = naive_match(corpus, Query.from_text("used books"), MatchType.EXACT)
        assert [a.info.listing_id for a in result] == [1]

    def test_naive_match_phrase(self):
        corpus = AdCorpus([ad("used books", 1), ad("books used", 2)])
        result = naive_match(
            corpus, Query.from_text("buy used books now"), MatchType.PHRASE
        )
        assert [a.info.listing_id for a in result] == [1]
