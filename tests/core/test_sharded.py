"""Tests for the sharded scatter-gather index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType, naive_broad_match
from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.cost.accounting import AccessTracker


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def corpus():
    return AdCorpus([ad(f"w{i % 13} common x{i}", i) for i in range(60)])


class TestSharding:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedWordSetIndex(0)

    def test_rejects_tracker_mismatch(self):
        with pytest.raises(ValueError):
            ShardedWordSetIndex(3, trackers=[AccessTracker()])

    def test_total_size(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        assert len(sharded) == len(corpus)

    def test_reasonably_balanced(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        assert sharded.balance_factor() < 2.0
        assert all(size > 0 for size in sharded.shard_sizes())

    def test_same_wordset_same_shard(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        sharded.insert(ad("w1 common x1", 999))
        sharded.check_invariants()

    def test_query_equals_oracle(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=5)
        for qtext in ("w3 common x16", "common", "nothing here"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in sharded.query(q))
            want = sorted(a.info.listing_id for a in naive_broad_match(corpus, q))
            assert got == want

    def test_no_duplicate_results(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=3)
        result = sharded.query(Query.from_text("w1 common x1 x14"))
        ids = [a.info.listing_id for a in result]
        assert len(ids) == len(set(ids))

    def test_delete_routes_to_owner(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
        victim = corpus[7]
        assert sharded.delete(victim)
        assert len(sharded) == len(corpus) - 1
        q = Query.from_text(" ".join(victim.phrase))
        assert victim.info.listing_id not in {
            a.info.listing_id for a in sharded.query(q)
        }

    def test_match_types(self, corpus):
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=2)
        exact = sharded.query(
            Query.from_text(" ".join(corpus[0].phrase)), MatchType.EXACT
        )
        assert corpus[0].info.listing_id in {a.info.listing_id for a in exact}

    def test_remapping_within_shards(self, corpus):
        # A mapping computed globally is applied per owning shard.
        long_ad = ad("w1 common extra words here", 500)
        extended = AdCorpus(list(corpus) + [long_ad])
        mapping = {long_ad.words: frozenset({"w1", "common"})}
        sharded = ShardedWordSetIndex.from_corpus(
            extended, num_shards=4, mapping=mapping
        )
        q = Query.from_text("w1 common extra words here too")
        assert 500 in {a.info.listing_id for a in sharded.query(q)}
        sharded.check_invariants()

    def test_per_shard_trackers(self, corpus):
        trackers = [AccessTracker() for _ in range(3)]
        sharded = ShardedWordSetIndex.from_corpus(
            corpus, num_shards=3, trackers=trackers, fast_path=False
        )
        sharded.query(Query.from_text("w1 common x1"))
        assert all(t.stats.hash_probes > 0 for t in trackers)

    def test_per_shard_trackers_fast_path(self, corpus):
        # On the fast path, shards whose locator vocabulary cannot cover a
        # size-3 subset (every locator here has 3 words) skip all probes;
        # every shard still records the query.
        trackers = [AccessTracker() for _ in range(3)]
        sharded = ShardedWordSetIndex.from_corpus(
            corpus, num_shards=3, trackers=trackers
        )
        results = sharded.query(Query.from_text("w1 common x1"))
        assert {a.info.listing_id for a in results} == {1}
        assert all(t.stats.queries == 1 for t in trackers)
        assert sum(t.stats.hash_probes for t in trackers) >= 1


words_alphabet = [f"w{i}" for i in range(9)]


@st.composite
def corpus_queries_shards(draw):
    phrases = draw(
        st.lists(
            st.lists(st.sampled_from(words_alphabet), min_size=1, max_size=4)
            .map(" ".join),
            min_size=1,
            max_size=25,
        )
    )
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(
        st.lists(
            st.lists(st.sampled_from(words_alphabet), min_size=1, max_size=5)
            .map(" ".join),
            min_size=1,
            max_size=5,
        )
    )
    shards = draw(st.integers(1, 6))
    return ads, [Query.from_text(q) for q in queries], shards


class TestShardedProperties:
    @given(corpus_queries_shards())
    @settings(max_examples=60, deadline=None)
    def test_sharded_equals_oracle(self, data):
        ads, queries, shards = data
        corpus = AdCorpus(ads)
        sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=shards)
        for q in queries:
            got = sorted(a.info.listing_id for a in sharded.query(q))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, q)
            )
            assert got == want
