"""Tests for the distribution figures (Figs 1, 2, 3, 7)."""

import pytest

from repro.experiments import (
    fig1_bid_lengths,
    fig2_wordset_zipf,
    fig3_mt_lengths,
    fig7_keyword_vs_combo,
)
from repro.experiments.common import SMALL


@pytest.fixture(scope="module")
def fig1_result():
    return fig1_bid_lengths.run(SMALL, seed=1)


@pytest.fixture(scope="module")
def fig2_result():
    return fig2_wordset_zipf.run(SMALL, seed=1)


@pytest.fixture(scope="module")
def fig3_result():
    return fig3_mt_lengths.run(SMALL, seed=1)


@pytest.fixture(scope="module")
def fig7_result():
    return fig7_keyword_vs_combo.run(SMALL, seed=1)


class TestFig1:
    def test_anchors_match_paper(self, fig1_result):
        assert fig1_result.anchor(3) == pytest.approx(0.62, abs=0.05)
        assert fig1_result.anchor(5) == pytest.approx(0.96, abs=0.03)
        assert fig1_result.anchor(8) >= 0.99

    def test_mode_at_three(self, fig1_result):
        histogram = fig1_result.histogram
        assert max(histogram, key=histogram.get) == 3

    def test_report_mentions_paper_values(self, fig1_result):
        report = fig1_bid_lengths.format_report(fig1_result)
        assert "62" in report and "Fig 1" in report


class TestFig2:
    def test_slope_near_zipf(self, fig2_result):
        assert -1.7 < fig2_result.slope < -0.4

    def test_frequencies_descending(self, fig2_result):
        ranked = fig2_result.ranked_frequencies
        assert ranked == sorted(ranked, reverse=True)

    def test_long_tail(self, fig2_result):
        assert fig2_result.median_frequency <= 3

    def test_report(self, fig2_result):
        report = fig2_wordset_zipf.format_report(fig2_result)
        assert "slope" in report


class TestFig3:
    def test_mt_falls_off_slower(self, fig3_result):
        assert fig3_result.mt_drop_off < fig3_result.bid_drop_off

    def test_both_peak_at_three(self, fig3_result):
        assert max(fig3_result.bid_histogram, key=fig3_result.bid_histogram.get) == 3
        assert max(fig3_result.mt_histogram, key=fig3_result.mt_histogram.get) == 3

    def test_report(self, fig3_result):
        report = fig3_mt_lengths.format_report(fig3_result)
        assert "MT" in report


class TestFig7:
    def test_keywords_more_skewed(self, fig7_result):
        assert (
            fig7_result.mean_popular_keyword_bucket
            > fig7_result.mean_popular_wordset_bucket
        )

    def test_bucket_reduction_substantial(self, fig7_result):
        # Paper: ~30x at 180M ads; at small scale still clearly > 2x.
        assert fig7_result.bucket_reduction > 2.0

    def test_series_descending(self, fig7_result):
        assert fig7_result.keyword_frequencies == sorted(
            fig7_result.keyword_frequencies, reverse=True
        )

    def test_report(self, fig7_result):
        report = fig7_keyword_vs_combo.format_report(fig7_result)
        assert "3000" in report
