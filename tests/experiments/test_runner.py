"""Tests for the experiment runner CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiment
from repro.experiments.common import SMALL


class TestRunner:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "tab-inverted",
            "tab-multiserver",
            "tab-counters",
            "tab-compression",
            "ext-structures",
            "ext-drift",
            "ext-sharding",
            "ext-matchtypes",
            "ext-hwcompare",
            "ext-impact",
        }

    def test_every_module_has_run_and_format(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.format_report)

    def test_run_experiment_returns_report(self):
        report = run_experiment("fig1", SMALL, seed=0)
        assert "Fig 1" in report

    def test_main_single_experiment(self, capsys):
        assert main(["fig3", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "MT" in out

    def test_main_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
