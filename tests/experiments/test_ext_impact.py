"""Tests for the impact-ordering extension experiment (§I-B claim)."""

import pytest

from repro.experiments import ext_impact
from repro.experiments.common import Scale

TINY = Scale(
    name="tiny-impact",
    num_ads=1_000,
    num_distinct_queries=150,
    total_query_frequency=3_000,
    trace_length=400,
)


@pytest.fixture(scope="module")
def result():
    return ext_impact.run(TINY, seed=3)


class TestExtImpact:
    def test_top_k_always_agreed(self, result):
        assert result.agreement_checked == result.queries

    def test_pruning_never_costs_more(self, result):
        assert result.total_time_savings >= -0.01

    def test_savings_marginal_confirming_paper(self, result):
        """The §I-B claim: in-index ranking machinery buys little for
        broad match — well under a 25% win."""
        assert result.total_time_savings < 0.25

    def test_registered(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "ext-impact" in EXPERIMENTS

    def test_report(self, result):
        report = ext_impact.format_report(result)
        assert "I-B" in report and "savings" in report
