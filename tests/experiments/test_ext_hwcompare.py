"""Tests for the hardware-level VII-A comparison extension."""

import pytest

from repro.experiments import ext_hwcompare
from repro.experiments.common import SMALL


@pytest.fixture(scope="module")
def result():
    return ext_hwcompare.run(SMALL, seed=0)


class TestExtHwCompare:
    def test_inverted_more_dtlb_misses(self, result):
        assert result.dtlb_ratio > 1.0

    def test_inverted_more_page_walk_cycles(self, result):
        assert result.walk_ratio > 1.0

    def test_walks_amplified_beyond_misses(self, result):
        """Scattered candidate fetches make walks colder, not just more
        frequent — the same second-order effect as Section VII-C."""
        assert result.walk_ratio >= result.dtlb_ratio

    def test_l1_counted_under_hierarchy(self, result):
        assert result.wordset.l1_misses > result.wordset.l2_misses

    def test_registered_in_runner(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "ext-hwcompare" in EXPERIMENTS

    def test_report(self, result):
        report = ext_hwcompare.format_report(result)
        assert "page walks" in report
