"""Tests for the performance experiments (Figs 8-10, VII-A/B/C tables)."""

import pytest

from repro.experiments import (
    fig8_bytes_ratio,
    fig9_latency_dist,
    fig10_remapping,
    tab_compression,
    tab_hardware_counters,
    tab_inverted_throughput,
    tab_multiserver,
)
from repro.experiments.common import SMALL, Scale

#: A reduced scale keeping experiment tests fast.
TINY = Scale(
    name="tiny",
    num_ads=1_200,
    num_distinct_queries=200,
    total_query_frequency=3_000,
    trace_length=600,
)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_bytes_ratio.run(TINY, seed=2, corpus_sizes=[600, 2400])

    def test_ratio_grows_with_corpus(self, result):
        """The paper's core trend: the inverted index's relative data
        volume rises with corpus size."""
        first, last = result.points[0], result.points[-1]
        assert last.nonredundant_ratio > first.nonredundant_ratio
        assert last.counting_ratio > first.counting_ratio

    def test_counting_reads_most(self, result):
        for point in result.points:
            assert point.counting_bytes > point.nonredundant_bytes

    def test_report(self, result):
        assert "Fig 8" in fig8_bytes_ratio.format_report(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_latency_dist.run(TINY, seed=2)

    def test_wordset_faster_within_10ms(self, result):
        ws10, inv10 = result.within_10ms()
        assert ws10 > inv10

    def test_inverted_latencies_spread(self, result):
        """The paper's Fig 9: the inverted index's distribution has mass
        well beyond 10 ms at saturation load."""
        assert result.inverted.fraction_within(10.0) < 0.9

    def test_histograms_normalized(self, result):
        assert sum(result.wordset.latency_histogram().values()) == pytest.approx(1.0)

    def test_report(self, result):
        assert "75%" in fig9_latency_dist.format_report(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        # SMALL, not TINY: the long-tail fraction (0.4% of distinct
        # queries) needs enough queries to materialize.
        return fig10_remapping.run(SMALL, seed=2)

    def test_long_only_significantly_better(self, result):
        """Paper: re-mapping long phrases has significant impact."""
        relative = result.relative
        assert relative["long phrases only"] < 0.9

    def test_full_no_worse_than_long_only(self, result):
        assert result.full_remap_total_ns <= result.long_only_total_ns * 1.001

    def test_full_improves_node_component(self, result):
        """Paper: ~10% additional gain; measured on node-access cost."""
        assert result.full_vs_long_node_gain > 0.0

    def test_set_cover_merges_nodes(self, result):
        assert result.nodes_after < result.nodes_before

    def test_report(self, result):
        assert "max_words" in fig10_remapping.format_report(result)


class TestInvertedThroughput:
    @pytest.fixture(scope="class")
    def result(self):
        return tab_inverted_throughput.run(SMALL, seed=2)

    def test_wordset_beats_unmodified_inverted(self, result):
        assert (
            result.wordset.throughput_qps()
            > result.nonredundant.throughput_qps()
        )

    def test_popular_buckets_smaller_for_wordsets(self, result):
        assert (
            result.mean_popular_keyword_bucket
            > result.mean_popular_wordset_bucket
        )

    def test_no_merge_control_matches_counting_volume(self, result):
        assert (
            result.counting_no_merge.stats.bytes_scanned
            == result.counting.stats.bytes_scanned
        )

    def test_report(self, result):
        report = tab_inverted_throughput.format_report(result)
        assert "VII-A" in report


class TestMultiServer:
    @pytest.fixture(scope="class")
    def result(self):
        return tab_multiserver.run(TINY, seed=2)

    def test_wordset_higher_saturation(self, result):
        assert result.wordset_saturation_rps > result.inverted_saturation_rps

    def test_wordset_lower_cpu_at_common_rate(self, result):
        assert (
            result.wordset_cpu_at_common_rate
            < result.inverted_cpu_at_common_rate
        )

    def test_inverted_near_saturation_cpu(self, result):
        """Paper: the inverted index ran at 98% CPU."""
        assert result.inverted_cpu_at_common_rate > 0.9

    def test_report(self, result):
        assert "VII-B" in tab_multiserver.format_report(result)


class TestHardwareCounters:
    @pytest.fixture(scope="class")
    def result(self):
        # SMALL, not TINY: the merged-node branch effect needs enough
        # merged nodes to rise above noise.
        return tab_hardware_counters.run(SMALL, seed=2)

    def test_no_remap_more_dtlb_misses(self, result):
        assert result.dtlb_miss_increase >= 0.0

    def test_no_remap_more_page_walk_cycles(self, result):
        assert result.page_walk_increase >= 0.0

    def test_remap_more_scan_branch_mispredicts(self, result):
        """Paper's counter-intuitive finding: re-mapping increases
        mispredictions (longer data-dependent scans).  Asserted on the
        node-scan branches, where the effect is structural."""
        assert result.scan_branch_increase_with_remap > 0.0

    def test_report(self, result):
        assert "VII-C" in tab_hardware_counters.format_report(result)


class TestCompression:
    @pytest.fixture(scope="class")
    def result(self):
        return tab_compression.run(TINY, seed=2)

    def test_worked_example_ratio(self, result):
        assert 6.0 <= result.example.ratio <= 10.0

    def test_measured_entropy_below_hash(self, result):
        for m in result.measurements:
            assert m.entropy_ratio > 1.0

    def test_frontcoding_compresses(self, result):
        assert result.frontcoding_ratio > 1.0

    def test_price_delta_compresses(self, result):
        assert result.price_ratio > 1.0

    def test_report(self, result):
        assert "9:1" in tab_compression.format_report(result)
