"""Bit-for-bit reproducibility of the experiment pipeline, and helpers."""

import pytest

from repro.experiments.common import SCALES, SMALL, Scale, format_table
from repro.experiments.runner import run_experiment


class TestDeterminism:
    @pytest.mark.parametrize("name", ["fig1", "fig2", "fig3", "fig7"])
    def test_same_seed_same_report(self, name):
        a = run_experiment(name, SMALL, seed=5)
        b = run_experiment(name, SMALL, seed=5)
        assert a == b

    def test_different_seed_different_data(self):
        a = run_experiment("fig2", SMALL, seed=1)
        b = run_experiment("fig2", SMALL, seed=2)
        assert a != b

    def test_fig10_deterministic_through_optimizer(self):
        # The greedy set cover, heaps and all, must be seed-stable.
        a = run_experiment("fig10", SMALL, seed=3)
        b = run_experiment("fig10", SMALL, seed=3)
        assert a == b

    def test_simulation_deterministic(self):
        a = run_experiment("fig9", SMALL, seed=4)
        b = run_experiment("fig9", SMALL, seed=4)
        assert a == b


class TestHelpers:
    def test_format_table_alignment(self):
        table = format_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = table.splitlines()
        assert len(lines) == 4
        # All rows padded to equal width per column.
        assert lines[0].index("bbbb") == lines[2].index("y")

    def test_format_table_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table

    def test_scales_registry(self):
        assert set(SCALES) == {"small", "bench", "medium", "large"}
        assert all(isinstance(s, Scale) for s in SCALES.values())
        assert SCALES["medium"].num_ads > SCALES["small"].num_ads
