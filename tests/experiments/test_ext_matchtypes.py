"""Tests for the match-types extension experiment."""

import pytest

from repro.experiments import ext_matchtypes
from repro.experiments.common import Scale

TINY = Scale(
    name="tiny-mt",
    num_ads=800,
    num_distinct_queries=150,
    total_query_frequency=2_000,
    trace_length=400,
)


@pytest.fixture(scope="module")
def result():
    return ext_matchtypes.run(TINY, seed=4)


class TestExtMatchTypes:
    def test_semantics_nest(self, result):
        """broad ⊇ phrase ⊇ exact in match counts."""
        broad = result.by_name("broad").total_matches
        phrase = result.by_name("phrase").total_matches
        exact = result.by_name("exact").total_matches
        assert broad >= phrase >= exact > 0

    def test_identical_traversal(self, result):
        """All three semantics share the same probe/scan pattern."""
        broad = result.by_name("broad").stats
        phrase = result.by_name("phrase").stats
        exact = result.by_name("exact").stats
        assert broad.random_accesses == phrase.random_accesses
        assert broad.bytes_scanned == exact.bytes_scanned

    def test_dedicated_table_agrees_on_exact(self, result):
        assert (
            result.by_name("exact (dedicated table)").total_matches
            == result.by_name("exact").total_matches
        )

    def test_report(self, result):
        report = ext_matchtypes.format_report(result)
        assert "exact" in report and "broad" in report


class TestExactMatchTable:
    def test_oracle_equivalence(self):
        from repro.core.ads import AdCorpus, AdInfo, Advertisement
        from repro.core.matching import MatchType, naive_match
        from repro.core.queries import Query
        from repro.experiments.ext_matchtypes import ExactMatchTable

        ads = [
            Advertisement.from_text("used books", AdInfo(listing_id=1)),
            Advertisement.from_text("books used", AdInfo(listing_id=2)),
            Advertisement.from_text("books", AdInfo(listing_id=3)),
        ]
        corpus = AdCorpus(ads)
        table = ExactMatchTable(corpus)
        for qtext in ("used books", "books used", "books", "cheap books"):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in table.query_exact(q))
            want = sorted(
                a.info.listing_id
                for a in naive_match(corpus, q, MatchType.EXACT)
            )
            assert got == want
