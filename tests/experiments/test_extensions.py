"""Tests for the extension experiments (beyond the paper's evaluation)."""

import pytest

from repro.experiments import ext_drift, ext_sharding, ext_structures
from repro.experiments.common import Scale

TINY = Scale(
    name="tiny-ext",
    num_ads=1_200,
    num_distinct_queries=200,
    total_query_frequency=4_000,
    trace_length=500,
)


class TestExtStructures:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_structures.run(TINY, seed=1)

    def test_three_structures_measured(self, result):
        names = {m.name for m in result.short_queries}
        assert names == {"hash table", "trie", "compressed (EF)"}

    def test_all_did_work(self, result):
        for m in result.short_queries + result.long_queries:
            assert m.stats.random_accesses > 0

    def test_trie_fewer_random_accesses_on_long_queries(self, result):
        trie = result.by_name("trie", long=True)
        hashed = result.by_name("hash table", long=True)
        assert trie.stats.random_accesses < hashed.stats.random_accesses

    def test_compressed_smallest_lookup(self, result):
        compressed = result.by_name("compressed (EF)")
        hashed = result.by_name("hash table")
        assert compressed.lookup_bytes < hashed.lookup_bytes

    def test_report(self, result):
        report = ext_structures.format_report(result)
        assert "trie" in report and "compressed" in report


class TestExtDrift:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_drift.run(TINY, seed=1)

    def test_sweep_covers_zero_to_full_drift(self, result):
        fractions = [p.drift_fraction for p in result.points]
        assert fractions[0] == 0.0 and fractions[-1] == 1.0

    def test_fresh_never_much_worse_than_stale(self, result):
        # Small tolerance: the greedy cover is heuristic, so a freshly
        # optimized mapping can trail the stale one by noise at low drift.
        for point in result.points:
            assert point.fresh_gain >= point.stale_gain - 0.03

    def test_full_drift_reopt_beats_stale(self, result):
        last = result.points[-1]
        assert last.fresh_gain > last.stale_gain

    def test_zero_drift_stale_equals_fresh(self, result):
        first = result.points[0]
        assert first.stale_gain == pytest.approx(first.fresh_gain, abs=1e-9)

    def test_gains_nonnegative(self, result):
        for point in result.points:
            assert point.fresh_gain >= -1e-9

    def test_report(self, result):
        assert "drift" in ext_drift.format_report(result)


class TestExtSharding:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_sharding.run(TINY, seed=1)

    def test_shard_sweep(self, result):
        assert [p.num_shards for p in result.points] == [1, 2, 4, 8]

    def test_per_shard_cpu_decreases(self, result):
        utils = [p.cpu_utilization for p in result.points]
        assert utils[-1] < utils[0]

    def test_balanced_partitions(self, result):
        for point in result.points:
            assert point.balance_factor < 2.5

    def test_latency_helped_by_first_split(self, result):
        one, two = result.points[0], result.points[1]
        assert two.mean_latency_ms <= one.mean_latency_ms * 1.5

    def test_report(self, result):
        assert "shards" in ext_sharding.format_report(result)


class TestRunnerRegistration:
    def test_extensions_registered(self):
        from repro.experiments.runner import EXPERIMENTS

        for name in ("ext-structures", "ext-drift", "ext-sharding"):
            assert name in EXPERIMENTS
