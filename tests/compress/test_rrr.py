"""Tests for the RRR-style compressed bit vector."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.bitvector import BitVector
from repro.compress.rrr import (
    BLOCK_BITS,
    RRRBitVector,
    _block_from_offset,
    _block_offset,
)
from repro.compress.sizing import h0_bits


class TestEnumerativeCoding:
    def test_roundtrip_all_classes(self):
        rng = random.Random(0)
        for _ in range(300):
            block = rng.randrange(1 << BLOCK_BITS)
            cls = block.bit_count()
            assert _block_from_offset(_block_offset(block, cls), cls) == block

    def test_all_zero_and_all_one(self):
        assert _block_offset(0, 0) == 0
        full = (1 << BLOCK_BITS) - 1
        assert _block_from_offset(_block_offset(full, BLOCK_BITS), BLOCK_BITS) == full

    def test_offsets_dense_within_class(self):
        # All 2-bit blocks must map to distinct offsets in [0, C(15,2)).
        from math import comb

        blocks = [
            (1 << i) | (1 << j)
            for i in range(BLOCK_BITS)
            for j in range(i + 1, BLOCK_BITS)
        ]
        offsets = {_block_offset(b, 2) for b in blocks}
        assert len(offsets) == len(blocks) == comb(BLOCK_BITS, 2)
        assert max(offsets) == comb(BLOCK_BITS, 2) - 1


class TestAgainstPlainBitVector:
    @pytest.mark.parametrize("density", [0.02, 0.2, 0.5, 0.9])
    def test_rank_and_access_match(self, density):
        rng = random.Random(int(density * 100))
        bits = [rng.random() < density for _ in range(1200)]
        plain = BitVector(bits)
        rrr = RRRBitVector(bits)
        assert len(rrr) == len(plain)
        assert rrr.ones == plain.ones
        for i in range(0, 1201, 37):
            assert rrr.rank1(i) == plain.rank1(i)
        for i in range(0, 1200, 53):
            assert rrr[i] == plain[i]

    def test_select_matches(self):
        rng = random.Random(5)
        bits = [rng.random() < 0.1 for _ in range(2000)]
        plain = BitVector(bits)
        rrr = RRRBitVector(bits)
        for j in range(1, rrr.ones + 1, 7):
            assert rrr.select1(j) == plain.select1(j)

    def test_from_positions_equivalent(self):
        positions = [3, 77, 500, 501, 1999]
        a = RRRBitVector.from_positions(2000, positions)
        b = RRRBitVector(1 if i in set(positions) else 0 for i in range(2000))
        assert a.ones == b.ones
        for j in range(1, 6):
            assert a.select1(j) == b.select1(j)
        for i in (0, 100, 502, 2000):
            assert a.rank1(i) == b.rank1(i)

    @given(st.lists(st.booleans(), max_size=400), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_rank(self, bits, data):
        rrr = RRRBitVector(bits)
        if bits:
            i = data.draw(st.integers(0, len(bits)))
            assert rrr.rank1(i) == sum(bits[:i])


class TestCompression:
    def test_sparse_vector_close_to_entropy(self):
        """The paper's premise: compressed bit sequences approach nH0."""
        n, k = 1 << 16, 200
        rng = random.Random(9)
        positions = rng.sample(range(n), k)
        rrr = RRRBitVector.from_positions(n, positions)
        plain = BitVector.from_positions(n, positions)
        entropy = h0_bits(n, k)
        # The offset stream is the nH0 part; class stream + directories are
        # the o(n) overhead (4 + 2 bits per 15-bit block), which dominates
        # for extremely sparse vectors — still well under the plain layout.
        assert rrr.size_bits() < plain.size_bits() / 2
        overhead_per_block = 4 + 2
        blocks = (n + 14) // 15
        assert rrr.size_bits() <= entropy + overhead_per_block * blocks + 4096

    def test_dense_vector_no_catastrophic_blowup(self):
        rng = random.Random(4)
        bits = [rng.random() < 0.5 for _ in range(1 << 12)]
        rrr = RRRBitVector(bits)
        assert rrr.size_bits() < 2 * len(bits) + 4096

    def test_errors(self):
        rrr = RRRBitVector([1, 0])
        with pytest.raises(IndexError):
            rrr[2]
        with pytest.raises(IndexError):
            rrr.rank1(3)
        with pytest.raises(ValueError):
            rrr.select1(2)
        with pytest.raises(ValueError):
            RRRBitVector.from_positions(4, [4])
