"""The compressed hash under its succinct backends (RRR / Elias-Fano)."""

import pytest

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture(scope="module")
def setup():
    ads = [ad(f"shared w{i % 11} t{i}", i) for i in range(60)]
    corpus = AdCorpus(ads)
    index = WordSetIndex.from_corpus(corpus)
    queries = [
        Query.from_text("shared w3 t25"),
        Query.from_text("shared w0 t0 extra words"),
        Query.from_text("no hits at all"),
        Query.from_text("shared"),
    ]
    return corpus, index, queries


ENCODINGS = [
    ("plain", "plain"),
    ("rrr", "plain"),
    ("plain", "eliasfano"),
    ("rrr", "eliasfano"),
    ("eliasfano", "eliasfano"),
]


class TestEncodedBackends:
    @pytest.mark.parametrize("sig,off", ENCODINGS)
    def test_queries_exact_under_all_encodings(self, setup, sig, off):
        corpus, index, queries = setup
        compressed = CompressedWordSetIndex.from_index(
            index, suffix_bits=12, sig_encoding=sig, offsets_encoding=off
        )
        for query in queries:
            got = sorted(a.info.listing_id for a in compressed.query(query))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, query)
            )
            assert got == want

    @pytest.mark.parametrize("sig,off", ENCODINGS)
    def test_lookup_under_all_encodings(self, setup, sig, off):
        _, index, _ = setup
        compressed = CompressedWordSetIndex.from_index(
            index, suffix_bits=14, sig_encoding=sig, offsets_encoding=off
        )
        some_locator = next(iter(index.nodes.values())).locator
        assert compressed.lookup(some_locator) is not None
        assert compressed.lookup(frozenset({"definitely", "absent"})) is None

    def test_succinct_encodings_smaller(self, setup):
        _, index, _ = setup
        plain = CompressedWordSetIndex.from_index(index, suffix_bits=18)
        succinct = CompressedWordSetIndex.from_index(
            index,
            suffix_bits=18,
            sig_encoding="rrr",
            offsets_encoding="eliasfano",
        )
        assert succinct.structure_bits() < plain.structure_bits()

    def test_ef_sig_near_entropy_at_large_suffix(self, setup):
        """Elias-Fano's size depends on the ones, not the universe: at a
        large suffix size it stays near entropy where RRR blows up."""
        _, index, _ = setup
        ef = CompressedWordSetIndex.from_index(
            index, suffix_bits=24, sig_encoding="eliasfano",
            offsets_encoding="eliasfano",
        )
        rrr = CompressedWordSetIndex.from_index(
            index, suffix_bits=24, sig_encoding="rrr",
            offsets_encoding="eliasfano",
        )
        assert ef.structure_bits() < rrr.structure_bits()
        assert ef.structure_bits() < 4 * ef.entropy_bits() + 4096

    def test_entropy_accounting_encoding_independent(self, setup):
        _, index, _ = setup
        a = CompressedWordSetIndex.from_index(index, suffix_bits=12)
        b = CompressedWordSetIndex.from_index(
            index, suffix_bits=12, sig_encoding="rrr",
            offsets_encoding="eliasfano",
        )
        assert a.entropy_bits() == pytest.approx(b.entropy_bits())

    def test_rejects_unknown_encoding(self, setup):
        _, index, _ = setup
        with pytest.raises(ValueError):
            CompressedWordSetIndex.from_index(
                index, suffix_bits=12, sig_encoding="zip"
            )
        with pytest.raises(ValueError):
            CompressedWordSetIndex.from_index(
                index, suffix_bits=12, offsets_encoding="gzip"
            )
