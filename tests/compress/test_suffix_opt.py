"""Tests for suffix-size selection (Section VI trade-off)."""

import pytest

from repro.compress.suffix_opt import choose_suffix_bits, evaluate_suffix_sizes
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.queries import Query, Workload
from repro.core.wordset_index import WordSetIndex
from repro.cost.model import CostModel

MODEL = CostModel()


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


@pytest.fixture()
def setup():
    ads = [ad(f"base w{i % 9} x{i}", i) for i in range(40)]
    corpus = AdCorpus(ads)
    index = WordSetIndex.from_corpus(corpus)
    workload = Workload(
        [
            (Query.from_text("base w1 x10"), 20),
            (Query.from_text("base w2 x20 extra"), 5),
            (Query.from_text("unrelated terms"), 3),
        ]
    )
    return index, workload


class TestEvaluate:
    def test_points_cover_range(self, setup):
        index, workload = setup
        points = evaluate_suffix_sizes(index, workload, MODEL, [4, 8, 16])
        assert [p.suffix_bits for p in points] == [4, 8, 16]

    def test_entropy_grows_with_suffix(self, setup):
        index, workload = setup
        points = evaluate_suffix_sizes(index, workload, MODEL, [4, 16])
        assert points[0].entropy_bits < points[1].entropy_bits

    def test_access_cost_shrinks_or_holds_with_suffix(self, setup):
        index, workload = setup
        points = evaluate_suffix_sizes(index, workload, MODEL, [2, 20])
        # More suffix bits -> fewer collisions -> no more scanning.
        assert points[1].access_ns <= points[0].access_ns + 1e-9

    def test_avg_entries_decreasing(self, setup):
        index, workload = setup
        points = evaluate_suffix_sizes(index, workload, MODEL, [2, 20])
        assert points[1].avg_entries_per_node <= points[0].avg_entries_per_node


class TestChoose:
    def test_pure_speed_prefers_large_suffix(self, setup):
        index, workload = setup
        best = choose_suffix_bits(
            index, workload, MODEL, [2, 8, 20], space_weight_ns_per_bit=0.0
        )
        assert best.suffix_bits == 20 or best.access_ns == pytest.approx(
            min(
                p.access_ns
                for p in evaluate_suffix_sizes(index, workload, MODEL, [2, 8, 20])
            )
        )

    def test_heavy_space_weight_prefers_small_suffix(self, setup):
        index, workload = setup
        best = choose_suffix_bits(
            index, workload, MODEL, [2, 8, 20], space_weight_ns_per_bit=1e6
        )
        assert best.suffix_bits == 2

    def test_empty_range_raises(self, setup):
        index, workload = setup
        with pytest.raises(ValueError):
            choose_suffix_bits(index, workload, MODEL, [])
