"""Tests for the Elias-Fano monotone-sequence encoding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.eliasfano import EliasFano


class TestAccess:
    def test_roundtrip_small(self):
        values = [0, 3, 3, 17, 100]
        ef = EliasFano(values)
        assert ef.values() == values
        assert len(ef) == 5

    def test_access_bounds(self):
        ef = EliasFano([1, 2])
        with pytest.raises(IndexError):
            ef.access(2)
        with pytest.raises(IndexError):
            ef.access(-1)

    def test_select1_one_based(self):
        ef = EliasFano([5, 9])
        assert ef.select1(1) == 5
        assert ef.select1(2) == 9

    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.values() == []
        assert ef.rank(100) == 0

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            EliasFano([5, 3])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EliasFano([-1, 3])

    def test_rejects_small_universe(self):
        with pytest.raises(ValueError):
            EliasFano([10], universe=10)


class TestRankAndMembership:
    def test_rank(self):
        ef = EliasFano([2, 5, 5, 9])
        assert ef.rank(0) == 0
        assert ef.rank(2) == 0
        assert ef.rank(3) == 1
        assert ef.rank(5) == 1
        assert ef.rank(6) == 3
        assert ef.rank(100) == 4

    def test_contains(self):
        ef = EliasFano([2, 5, 9])
        assert 5 in ef
        assert 4 not in ef

    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
        st.integers(0, 10_001),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_matches_bisect(self, values, probe):
        from bisect import bisect_left

        values = sorted(values)
        ef = EliasFano(values)
        assert ef.rank(probe) == bisect_left(values, probe)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        values = sorted(values)
        assert EliasFano(values).values() == values


class TestSize:
    def test_sparse_sequence_compresses(self):
        rng = random.Random(3)
        universe = 1 << 22
        values = sorted(rng.sample(range(universe), 500))
        ef = EliasFano(values, universe=universe)
        plain_bits = 64 * len(values)
        assert ef.size_bits() < plain_bits

    def test_near_theoretical_bound(self):
        rng = random.Random(8)
        universe = 1 << 20
        values = sorted(rng.sample(range(universe), 1_000))
        ef = EliasFano(values, universe=universe)
        bound = EliasFano.theoretical_bits(len(values), universe)
        # Directory overhead on the high bits is the only slack.
        assert ef.size_bits() < 3 * bound + 4096

    def test_from_bit_positions(self):
        ef = EliasFano.from_bit_positions(1000, [10, 500, 900])
        assert ef.values() == [10, 500, 900]
        assert ef.universe == 1000
