"""Tests for the Fig 6 compressed lookup structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.compressed_hash import (
    CompressedWordSetIndex,
    merged_node_count,
)
from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex


def ad(text, listing_id=0):
    return Advertisement.from_text(text, AdInfo(listing_id=listing_id))


def make_corpus(n=30):
    ads = []
    for i in range(n):
        ads.append(ad(f"common w{i % 7} x{i}", i))
    ads.append(ad("common", 900))
    return AdCorpus(ads)


class TestLookup:
    def test_lookup_existing_locator(self):
        corpus = AdCorpus([ad("used books", 1)])
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=16)
        node = compressed.lookup(frozenset({"used", "books"}))
        assert node is not None
        assert any(e.ad.info.listing_id == 1 for e in node.entries)

    def test_lookup_absent_locator(self):
        corpus = AdCorpus([ad("used books", 1)])
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=16)
        assert compressed.lookup(frozenset({"absent", "words"})) is None

    def test_rejects_bad_suffix_bits(self):
        with pytest.raises(ValueError):
            CompressedWordSetIndex([], suffix_bits=0)


class TestQueryEquivalence:
    @pytest.mark.parametrize("suffix_bits", [4, 8, 12, 20])
    def test_matches_plain_index(self, suffix_bits):
        corpus = make_corpus()
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(
            index, suffix_bits=suffix_bits
        )
        for qtext in (
            "common w1 x8",
            "common",
            "common w0 x0 extra",
            "no match here",
        ):
            q = Query.from_text(qtext)
            got = sorted(a.info.listing_id for a in compressed.query(q))
            want = sorted(a.info.listing_id for a in index.query(q))
            assert got == want

    def test_tiny_suffix_forces_merges_but_stays_correct(self):
        corpus = make_corpus(50)
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=3)
        # At 3 bits there are at most 8 merged nodes for ~50 word-sets.
        assert compressed.num_nodes() <= 8
        q = Query.from_text("common w3 x17")
        got = sorted(a.info.listing_id for a in compressed.query(q))
        want = sorted(a.info.listing_id for a in naive_broad_match(corpus, q))
        assert got == want


class TestSizes:
    def test_smaller_suffix_smaller_bsig(self):
        corpus = make_corpus()
        index = WordSetIndex.from_corpus(corpus)
        small = CompressedWordSetIndex.from_index(index, suffix_bits=6)
        large = CompressedWordSetIndex.from_index(index, suffix_bits=16)
        assert len(small.bsig) < len(large.bsig)
        assert small.entropy_bits() < large.entropy_bits()

    def test_smaller_suffix_bigger_nodes(self):
        corpus = make_corpus(60)
        index = WordSetIndex.from_corpus(corpus)
        small = CompressedWordSetIndex.from_index(index, suffix_bits=4)
        large = CompressedWordSetIndex.from_index(index, suffix_bits=20)
        assert (
            small.average_entries_per_suffix()
            > large.average_entries_per_suffix()
        )

    def test_node_bytes_preserved_by_merging(self):
        corpus = make_corpus()
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=4)
        # Entries are merged, never dropped: per-entry bytes survive (the
        # per-node headers differ by the number of nodes).
        assert compressed.num_nodes() <= index.stats().num_nodes
        assert len(corpus) == sum(
            len(node.entries) for node in compressed._nodes
        )

    def test_entropy_below_structure_bits(self):
        corpus = make_corpus()
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=16)
        assert compressed.entropy_bits() < compressed.structure_bits()

    def test_merged_node_count_helper(self):
        locators = [frozenset({f"w{i}"}) for i in range(100)]
        assert merged_node_count(locators, 2) <= 4
        assert merged_node_count(locators, 30) <= 100


words_alphabet = [f"w{i}" for i in range(9)]


@st.composite
def corpus_queries(draw):
    phrases = draw(
        st.lists(
            st.lists(
                st.sampled_from(words_alphabet), min_size=1, max_size=4
            ).map(" ".join),
            min_size=1,
            max_size=20,
        )
    )
    ads = [ad(p, i) for i, p in enumerate(phrases)]
    queries = draw(
        st.lists(
            st.lists(
                st.sampled_from(words_alphabet), min_size=1, max_size=5
            ).map(" ".join),
            min_size=1,
            max_size=5,
        )
    )
    bits = draw(st.integers(2, 24))
    return ads, [Query.from_text(q) for q in queries], bits


class TestPropertyEquivalence:
    @given(corpus_queries())
    @settings(max_examples=60, deadline=None)
    def test_compressed_equals_oracle(self, data):
        ads, queries, bits = data
        corpus = AdCorpus(ads)
        index = WordSetIndex.from_corpus(corpus)
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=bits)
        for q in queries:
            got = sorted(a.info.listing_id for a in compressed.query(q))
            want = sorted(
                a.info.listing_id for a in naive_broad_match(corpus, q)
            )
            assert got == want
