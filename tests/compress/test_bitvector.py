"""Tests for the rank/select bit vector."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.bitvector import BitVector


def naive_rank1(bits, i):
    return sum(bits[:i])


def naive_select1(bits, j):
    seen = 0
    for pos, bit in enumerate(bits):
        if bit:
            seen += 1
            if seen == j:
                return pos
    raise ValueError


class TestConstruction:
    def test_from_iterable(self):
        vec = BitVector([1, 0, 1, 1])
        assert len(vec) == 4
        assert [vec[i] for i in range(4)] == [1, 0, 1, 1]

    def test_from_positions(self):
        vec = BitVector.from_positions(10, [2, 5, 9])
        assert [vec[i] for i in range(10)] == [0, 0, 1, 0, 0, 1, 0, 0, 0, 1]

    def test_from_positions_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BitVector.from_positions(5, [5])

    def test_empty(self):
        vec = BitVector([])
        assert len(vec) == 0
        assert vec.ones == 0

    def test_getitem_bounds(self):
        vec = BitVector([1])
        with pytest.raises(IndexError):
            vec[1]
        with pytest.raises(IndexError):
            vec[-1]


class TestRank:
    def test_small(self):
        vec = BitVector([1, 0, 1, 1, 0])
        assert [vec.rank1(i) for i in range(6)] == [0, 1, 1, 2, 3, 3]

    def test_rank0_complements(self):
        vec = BitVector([1, 0, 1])
        for i in range(4):
            assert vec.rank0(i) + vec.rank1(i) == i

    def test_rank_full_length_is_ones(self):
        bits = [1, 1, 0, 1] * 100
        vec = BitVector(bits)
        assert vec.rank1(len(bits)) == vec.ones == sum(bits)

    def test_rank_bounds(self):
        vec = BitVector([1])
        with pytest.raises(IndexError):
            vec.rank1(2)

    def test_crosses_word_and_superblock_boundaries(self):
        bits = [i % 3 == 0 for i in range(2000)]
        vec = BitVector(bits)
        for i in (0, 63, 64, 65, 511, 512, 513, 1024, 1999, 2000):
            assert vec.rank1(i) == naive_rank1(bits, i)


class TestSelect:
    def test_small(self):
        vec = BitVector([0, 1, 0, 1, 1])
        assert vec.select1(1) == 1
        assert vec.select1(2) == 3
        assert vec.select1(3) == 4

    def test_select0(self):
        vec = BitVector([0, 1, 0, 1, 1])
        assert vec.select0(1) == 0
        assert vec.select0(2) == 2

    def test_select_out_of_range(self):
        vec = BitVector([1, 0])
        with pytest.raises(ValueError):
            vec.select1(2)
        with pytest.raises(ValueError):
            vec.select1(0)
        with pytest.raises(ValueError):
            vec.select0(2)

    def test_rank_select_inverse(self):
        rng = random.Random(7)
        bits = [rng.random() < 0.3 for _ in range(3000)]
        vec = BitVector(bits)
        for j in range(1, vec.ones + 1, 17):
            pos = vec.select1(j)
            assert bits[pos]
            assert vec.rank1(pos + 1) == j

    def test_large_sparse(self):
        positions = [i * 997 for i in range(200)]
        vec = BitVector.from_positions(997 * 200 + 1, positions)
        for j, pos in enumerate(positions, start=1):
            assert vec.select1(j) == pos


class TestPropertyBased:
    @given(st.lists(st.booleans(), max_size=700), st.data())
    @settings(max_examples=60, deadline=None)
    def test_rank_matches_naive(self, bits, data):
        vec = BitVector(bits)
        if bits:
            i = data.draw(st.integers(0, len(bits)))
            assert vec.rank1(i) == naive_rank1(bits, i)

    @given(st.lists(st.booleans(), min_size=1, max_size=700), st.data())
    @settings(max_examples=60, deadline=None)
    def test_select_matches_naive(self, bits, data):
        vec = BitVector(bits)
        if vec.ones:
            j = data.draw(st.integers(1, vec.ones))
            assert vec.select1(j) == naive_select1(bits, j)

    @given(st.lists(st.booleans(), max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_size_bits_at_least_raw(self, bits):
        vec = BitVector(bits)
        assert vec.size_bits() >= len(bits)
