"""Tests for front-coding, delta/varint coding, and entropy sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.deltas import (
    delta_decode_prices,
    delta_encode_prices,
    encoded_size,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.compress.frontcoding import (
    compression_ratio,
    encoded_size_bytes,
    front_decode,
    front_encode,
    node_phrase_order,
    plain_size_bytes,
)
from repro.compress.sizing import (
    h0_bits,
    h0_upper_bound_bits,
    hash_table_bits,
    worked_example,
)


class TestZigzag:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)]
    )
    def test_known_values(self, value, expected):
        assert zigzag_encode(value) == expected

    @given(st.integers(-(10**12), 10**12))
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value


class TestVarint:
    def test_single_byte(self):
        assert varint_encode(0) == b"\x00"
        assert varint_encode(127) == b"\x7f"

    def test_multi_byte(self):
        assert varint_encode(128) == b"\x80\x01"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            varint_encode(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            varint_decode(b"\x80")

    @given(st.integers(0, 10**15))
    def test_roundtrip(self, value):
        data = varint_encode(value)
        decoded, offset = varint_decode(data)
        assert decoded == value
        assert offset == len(data)


class TestDeltaPrices:
    def test_empty(self):
        assert delta_encode_prices([]) == b""
        assert delta_decode_prices(b"") == []

    def test_roundtrip_simple(self):
        prices = [100, 105, 103, 200]
        assert delta_decode_prices(delta_encode_prices(prices)) == prices

    def test_similar_prices_compress_well(self):
        similar = [1_000_000 + i for i in range(50)]
        plain = 8 * len(similar)
        assert encoded_size(similar) < plain / 4

    @given(st.lists(st.integers(0, 10**9), max_size=60))
    @settings(max_examples=60)
    def test_roundtrip_property(self, prices):
        assert delta_decode_prices(delta_encode_prices(prices)) == prices


class TestFrontCoding:
    def test_roundtrip(self):
        phrases = [("cheap", "books"), ("cheap", "used", "books"), ("dogs",)]
        assert front_decode(front_encode(phrases)) == phrases

    def test_shared_prefix_detected(self):
        coded = front_encode([("a", "b", "c"), ("a", "b", "d")])
        assert coded[1].shared_tokens == 2
        assert coded[1].suffix == ("d",)

    def test_corrupt_decoding_raises(self):
        from repro.compress.frontcoding import FrontCodedPhrase

        with pytest.raises(ValueError):
            front_decode([FrontCodedPhrase(shared_tokens=3, suffix=("x",))])

    def test_sharing_reduces_size(self):
        phrases = [("cheap", "used", "books")] * 5
        assert encoded_size_bytes(phrases) < plain_size_bytes(phrases)

    def test_node_phrase_order_keeps_wordcount_ordering(self):
        phrases = [("b", "a"), ("a",), ("a", "c"), ("z",)]
        ordered = node_phrase_order(phrases)
        counts = [len(set(p)) for p in ordered]
        assert counts == sorted(counts)

    def test_compression_ratio_at_least_one_for_shared(self):
        phrases = [("cheap", "books"), ("cheap", "cars"), ("cheap", "cds")]
        assert compression_ratio(phrases) >= 1.0

    @given(
        st.lists(
            st.lists(
                st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4
            ).map(tuple),
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, phrases):
        assert front_decode(front_encode(phrases)) == phrases


class TestSizing:
    def test_h0_constant_strings_zero(self):
        assert h0_bits(100, 0) == 0.0
        assert h0_bits(100, 100) == 0.0

    def test_h0_max_at_half(self):
        assert h0_bits(100, 50) == pytest.approx(100.0)
        assert h0_bits(100, 10) < 100.0

    def test_h0_bound_dominates(self):
        for n, k in [(1000, 10), (1 << 20, 500), (1 << 28, 2 * 10**7)]:
            assert h0_upper_bound_bits(n, k) >= h0_bits(n, k)

    def test_h0_rejects_bad_args(self):
        with pytest.raises(ValueError):
            h0_bits(10, 11)

    def test_hash_table_bits_matches_paper_formula(self):
        # (10^8/5) entries * 8 bytes * 4/3 ≈ 2.1e8 bytes.
        bits = hash_table_bits(20_000_000)
        assert bits / 8 == pytest.approx(2.13e8, rel=0.02)

    def test_worked_example_reproduces_paper(self):
        ex = worked_example()
        # Paper: bit_size(H) ≈ 1.7e9 bits.
        assert ex.hash_bits == pytest.approx(1.7e9, rel=0.05)
        # Paper reports n*H0(B^sig) ≈ 8e7 (exact bound: 1.04e8 — the paper
        # rounds the log terms aggressively).
        assert ex.bsig_bits_bound == pytest.approx(1.04e8, rel=0.05)
        # Paper reports n*H0(B^off) ≈ 1e8 (exact bound: 1.53e8).
        assert ex.boff_bits_bound == pytest.approx(1.53e8, rel=0.05)
        # Paper: ratio "about 9:1" from its rounded terms; the exact-bound
        # ratio is ~6.6:1 — same order, same conclusion.
        assert 6.0 <= ex.ratio <= 10.0
