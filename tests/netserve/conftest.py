"""Shared fixtures: one packed segment and one booted cluster per
module — cluster boots cost ~a second, so tests share them."""

import socket

import pytest

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.segment.builder import SegmentBuilder

requires_af_unix = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"),
    reason="worker sockets need AF_UNIX",
)


@pytest.fixture(scope="session")
def generated_corpus():
    return generate_corpus(CorpusConfig(num_ads=800, seed=11))


@pytest.fixture(scope="session")
def reference_index(generated_corpus):
    """The in-process twin every remote answer is compared against."""
    return WordSetIndex.from_corpus(generated_corpus.corpus)


@pytest.fixture(scope="session")
def segment_path(tmp_path_factory, reference_index):
    path = tmp_path_factory.mktemp("netserve") / "corpus.seg"
    SegmentBuilder(reference_index).write(path)
    return path
