"""Typed transport errors: ``ServeConnectionError`` vs timeouts vs
``RemoteServeError`` — the three failure modes the loadgen (and the
chaos gates built on it) must count separately."""

import socket
import threading

import pytest

from repro.netserve.client import (
    RemoteServeError,
    ServeClient,
    ServeConnectionError,
)
from repro.netserve.loadgen import LoadGenConfig, build_report
from repro.obs.registry import MetricsRegistry


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestServeConnectionError:
    def test_refused_connect_is_typed(self):
        with pytest.raises(ServeConnectionError) as excinfo:
            ServeClient("127.0.0.1", _free_port(), timeout_s=2.0)
        # The raw OS error is preserved for diagnosis.
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_connection_torn_before_reply_is_typed(self):
        """A server that accepts then vanishes mid-request must surface
        as a connection error, not a bare TornFrame or OSError."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def accept_and_slam():
            conn, _ = listener.accept()
            conn.recv(4)  # let the request start, then slam the door
            conn.close()

        server = threading.Thread(target=accept_and_slam, daemon=True)
        server.start()
        try:
            client = ServeClient(host, port, timeout_s=5.0)
            with pytest.raises(ServeConnectionError):
                client.request({"type": "ping"})
            client.close()
        finally:
            server.join(timeout=5.0)
            listener.close()

    def test_is_a_connection_error_subclass(self):
        # Callers catching ConnectionError keep working.
        assert issubclass(ServeConnectionError, ConnectionError)
        assert not issubclass(RemoteServeError, ConnectionError)


class TestReportClassification:
    def _report(self, counts):
        base = {
            "sent": 0,
            "issued": 0,
            "ok": 0,
            "shed": 0,
            "degraded": 0,
            "errors": 0,
            "timeouts": 0,
            "connection_errors": 0,
            "error_frames": 0,
            "within_deadline": 0,
        }
        base.update(counts)
        registry = MetricsRegistry()
        latency = registry.histogram("loadgen.latency_ms", bounds=(1.0, 10.0))
        return build_report(
            LoadGenConfig(host="h", port=1),
            num_queries=1,
            counts=base,
            elapsed_s=1.0,
            latency=latency,
            stats_before={},
            stats_after={},
        )

    def test_error_buckets_are_surfaced(self):
        report = self._report(
            {
                "sent": 10,
                "ok": 10,
                "errors": 6,
                "timeouts": 1,
                "connection_errors": 2,
                "error_frames": 3,
            }
        )
        assert report["timeouts"] == 1
        assert report["connection_errors"] == 2
        assert report["error_frames"] == 3
        assert report["errors"] == 6

    def test_missing_buckets_default_to_zero(self):
        # Old callers passing only the legacy counts still get a report.
        counts = {
            "sent": 1,
            "issued": 1,
            "ok": 1,
            "shed": 0,
            "degraded": 0,
            "errors": 0,
            "within_deadline": 1,
        }
        registry = MetricsRegistry()
        latency = registry.histogram("loadgen.latency_ms", bounds=(1.0,))
        report = build_report(
            LoadGenConfig(host="h", port=1),
            num_queries=1,
            counts=counts,
            elapsed_s=1.0,
            latency=latency,
            stats_before={},
            stats_after={},
        )
        assert report["timeouts"] == 0
        assert report["connection_errors"] == 0
        assert report["error_frames"] == 0
