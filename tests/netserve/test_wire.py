"""Framing codec unit tests: round-trips, budgets, and the fault
taxonomy, over socketpairs and in-memory asyncio streams."""

import asyncio
import socket

import pytest

from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    FrameFormatError,
    FrameTooLarge,
    TornFrame,
    decode_payload,
    encode_frame,
    read_raw_frame,
    recv_frame,
    recv_raw_frame,
    send_frame,
)


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestEncode:
    def test_header_is_big_endian_length(self):
        frame = encode_frame({"type": "ping"})
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size:]) == {"type": "ping"}

    def test_compact_json_no_spaces(self):
        frame = encode_frame({"a": 1, "b": [1, 2]})
        assert b" " not in frame[HEADER.size:]

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"blob": "x" * 64}, max_frame_bytes=16)

    def test_non_object_payload_refused_at_decode(self):
        with pytest.raises(FrameFormatError):
            decode_payload(b"[1,2,3]")
        with pytest.raises(FrameFormatError):
            decode_payload(b"{not json")


class TestSyncCodec:
    def test_round_trip(self, pair):
        left, right = pair
        send_frame(left, {"type": "serve", "request": {"query": ["a"]}})
        assert recv_frame(right) == {
            "type": "serve",
            "request": {"query": ["a"]},
        }

    def test_multiple_frames_in_sequence(self, pair):
        left, right = pair
        for i in range(3):
            send_frame(left, {"seq": i})
        assert [recv_frame(right)["seq"] for _ in range(3)] == [0, 1, 2]

    def test_clean_eof_between_frames_is_none(self, pair):
        left, right = pair
        send_frame(left, {"seq": 0})
        left.close()
        assert recv_frame(right) == {"seq": 0}
        assert recv_frame(right) is None

    def test_eof_mid_header_is_torn(self, pair):
        left, right = pair
        left.sendall(b"\x00\x00")  # half a header
        left.close()
        with pytest.raises(TornFrame):
            recv_frame(right)

    def test_eof_mid_payload_is_torn(self, pair):
        left, right = pair
        frame = encode_frame({"type": "serve", "request": {"query": ["a"]}})
        left.sendall(frame[:-3])
        left.close()
        with pytest.raises(TornFrame):
            recv_frame(right)

    def test_oversized_prefix_refused_before_reading_payload(self, pair):
        left, right = pair
        left.sendall(HEADER.pack(DEFAULT_MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameTooLarge):
            recv_frame(right)

    def test_raw_variant_returns_body_bytes(self, pair):
        left, right = pair
        send_frame(left, {"k": 1})
        assert recv_raw_frame(right) == b'{"k":1}'


class TestGenerationStampedResultFrames:
    """PR 9: worker result frames carry a ``generation`` int the
    frontend's cache invalidation keys on — it must survive every
    codec byte-exactly."""

    RESULT = {
        "type": "result",
        "request_id": "r-9",
        "generation": 7,
        "result": {
            "query": ["cheap", "books"],
            "degraded_reason": "none",
            "outcome": {"reserve_micros": 1, "candidates": 1, "awards": []},
        },
    }

    def test_sync_round_trip_preserves_generation(self, pair):
        left, right = pair
        send_frame(left, self.RESULT)
        reply = recv_frame(right)
        assert reply == self.RESULT
        assert reply["generation"] == 7

    def test_raw_relay_body_is_lossless(self, pair):
        # The frontend relays raw frame bytes without re-encoding; the
        # body it decodes for the cache must match what was framed.
        left, right = pair
        frame = encode_frame(self.RESULT)
        left.sendall(frame)
        body = recv_raw_frame(right)
        assert body == frame[HEADER.size:]
        assert decode_payload(body) == self.RESULT

    def test_async_read_returns_relay_ready_frame(self):
        frame = encode_frame(self.RESULT)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await read_raw_frame(reader)

        raw = asyncio.run(run())
        assert raw == frame
        assert decode_payload(raw[HEADER.size:])["generation"] == 7

    def test_frame_without_generation_still_decodes(self, pair):
        # Back-compat: a pre-PR-9 result frame simply lacks the key;
        # the frontend treats that as generation 0, the codec does not
        # invent one.
        left, right = pair
        stripped = {
            k: v for k, v in self.RESULT.items() if k != "generation"
        }
        send_frame(left, stripped)
        reply = recv_frame(right)
        assert reply == stripped
        assert "generation" not in reply


class TestAsyncCodec:
    @staticmethod
    def _read(data: bytes, eof: bool = True):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            if eof:
                reader.feed_eof()
            return await read_raw_frame(reader)

        return asyncio.run(run())

    def test_round_trip_includes_header(self):
        frame = encode_frame({"type": "pong"})
        raw = self._read(frame)
        assert raw == frame
        assert decode_payload(raw[HEADER.size:]) == {"type": "pong"}

    def test_clean_eof_is_none(self):
        assert self._read(b"") is None

    def test_partial_header_is_torn(self):
        with pytest.raises(TornFrame):
            self._read(b"\x00")

    def test_partial_payload_is_torn(self):
        frame = encode_frame({"type": "serve"})
        with pytest.raises(TornFrame):
            self._read(frame[:-2])

    def test_oversized_prefix_is_refused(self):
        data = HEADER.pack(DEFAULT_MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(FrameTooLarge):
            self._read(data, eof=False)
