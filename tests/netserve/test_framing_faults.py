"""Wire-protocol fault injection: torn frames, oversized prefixes, and
mid-frame disconnects, built with the :mod:`repro.faults` mutators and
thrown at a live frontend.

The invariant under test is *shed clean, never hang*: a client that
violates framing loses its connection (optionally after a typed
``error`` frame), the fault lands in the ``frontend.wire_errors`` /
``frontend.client_timeouts`` counters, and the tier keeps serving
well-formed clients.
"""

import asyncio
import socket

import pytest

from repro.faults.mutators import tear_tail, truncate_at
from repro.netserve import ClusterConfig, ServeClient, ServingCluster
from repro.netserve.wire import (
    HEADER,
    TornFrame,
    encode_frame,
    read_raw_frame,
    recv_frame,
)
from repro.serving import ServeRequest

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix

#: A request frame big enough that every mutation lands mid-payload.
REQUEST = {
    "type": "serve",
    "request": {
        "query": ["cheap", "used", "books", "and", "plenty", "of", "padding"],
        "request_id": "fault-probe",
    },
}


@pytest.fixture(scope="module")
def cluster(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=1,
        # A stalling client must be disconnected, not waited on forever:
        # this is what turns a partial frame into a bounded fault.
        client_idle_timeout_s=0.75,
        max_frame_bytes=1 << 16,
    )
    with ServingCluster(config) as running:
        yield running


@pytest.fixture()
def raw_socket(cluster):
    host, port = cluster.address
    sock = socket.create_connection((host, port), timeout=10.0)
    yield sock
    sock.close()


def _mutated_frame(tmp_path, name, mutate):
    """Encode a valid frame to a file, corrupt it on disk, read it back
    — the same torn-bytes discipline the durability tests use."""
    path = tmp_path / name
    path.write_bytes(encode_frame(REQUEST))
    mutate(path)
    return path.read_bytes()


def _counters(cluster):
    host, port = cluster.address
    with ServeClient(host, port) as client:
        return client.stats()["frontend"]["counters"]


def _assert_still_serving(cluster):
    host, port = cluster.address
    with ServeClient(host, port) as client:
        result = client.serve(ServeRequest.from_text("books"))
    assert result.query.tokens == ("books",)


class TestTornFrames:
    def test_tear_tail_then_disconnect_is_counted_not_fatal(
        self, cluster, raw_socket, tmp_path
    ):
        before = _counters(cluster)["frontend.wire_errors"]
        torn = _mutated_frame(
            tmp_path, "torn.frame", lambda p: tear_tail(p, keep_fraction=0.5)
        )
        assert len(torn) > HEADER.size, "mutation must keep a full header"
        raw_socket.sendall(torn)
        raw_socket.shutdown(socket.SHUT_WR)
        # The frontend closes its side; the read unblocks with EOF
        # rather than hanging until the test times out.
        assert raw_socket.recv(4096) == b""
        assert _counters(cluster)["frontend.wire_errors"] == before + 1
        _assert_still_serving(cluster)

    def test_partial_header_disconnect_is_torn(
        self, cluster, raw_socket, tmp_path
    ):
        before = _counters(cluster)["frontend.wire_errors"]
        stub = _mutated_frame(
            tmp_path, "header.frame", lambda p: truncate_at(p, 2)
        )
        assert len(stub) == 2
        raw_socket.sendall(stub)
        raw_socket.shutdown(socket.SHUT_WR)
        assert raw_socket.recv(4096) == b""
        assert _counters(cluster)["frontend.wire_errors"] == before + 1
        _assert_still_serving(cluster)

    def test_stalled_mid_frame_client_is_disconnected_by_timeout(
        self, cluster, raw_socket, tmp_path
    ):
        """A client that sends half a frame and then *stays connected*
        is the hang case — the idle timeout must shed it."""
        before = _counters(cluster)["frontend.client_timeouts"]
        half = _mutated_frame(
            tmp_path,
            "stall.frame",
            lambda p: truncate_at(p, HEADER.size + 10),
        )
        raw_socket.sendall(half)  # ...and never the rest
        raw_socket.settimeout(10.0)
        assert raw_socket.recv(4096) == b""
        assert _counters(cluster)["frontend.client_timeouts"] == before + 1
        _assert_still_serving(cluster)


#: A generation-stamped worker result frame (the PR 9 schema) — the
#: frontend's cache invalidation keys on the ``generation`` int, so a
#: torn result frame must fault loudly, never decode to a stale stamp.
RESULT_FRAME = {
    "type": "result",
    "request_id": "fault-probe",
    "generation": 7,
    "result": {
        "query": ["cheap", "used", "books", "and", "plenty", "of", "padding"],
        "degraded_reason": "none",
        "outcome": {"reserve_micros": 1, "candidates": 1, "awards": []},
    },
}


class TestTornResultFrames:
    """The worker→frontend direction, through both codecs."""

    def _mutated(self, tmp_path, name, mutate):
        path = tmp_path / name
        path.write_bytes(encode_frame(RESULT_FRAME))
        mutate(path)
        return path.read_bytes()

    def test_torn_result_frame_is_torn_on_sync_codec(self, tmp_path):
        torn = self._mutated(
            tmp_path, "result.frame", lambda p: tear_tail(p, keep_fraction=0.5)
        )
        assert len(torn) > HEADER.size, "mutation must keep a full header"
        left, right = socket.socketpair()
        try:
            left.sendall(torn)
            left.close()
            with pytest.raises(TornFrame):
                recv_frame(right)
        finally:
            right.close()

    def test_torn_result_frame_is_torn_on_async_codec(self, tmp_path):
        torn = self._mutated(
            tmp_path,
            "result-async.frame",
            lambda p: tear_tail(p, keep_fraction=0.5),
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(torn)
            reader.feed_eof()
            return await read_raw_frame(reader)

        with pytest.raises(TornFrame):
            asyncio.run(run())

    def test_result_header_stub_is_torn(self, tmp_path):
        stub = self._mutated(
            tmp_path, "result-header.frame", lambda p: truncate_at(p, 3)
        )
        assert len(stub) == 3
        left, right = socket.socketpair()
        try:
            left.sendall(stub)
            left.close()
            with pytest.raises(TornFrame):
                recv_frame(right)
        finally:
            right.close()


class TestOversizedFrames:
    def test_oversized_prefix_gets_typed_error_then_close(
        self, cluster, raw_socket
    ):
        before = _counters(cluster)["frontend.wire_errors"]
        raw_socket.sendall(HEADER.pack((1 << 16) + 1))
        reply = recv_frame(raw_socket)
        assert reply is not None and reply["type"] == "error"
        assert "exceeds" in reply["error"]
        assert raw_socket.recv(4096) == b""
        assert _counters(cluster)["frontend.wire_errors"] == before + 1
        _assert_still_serving(cluster)

    def test_garbage_payload_gets_typed_error(self, cluster, raw_socket):
        body = b"this is not json at all {{{"
        raw_socket.sendall(HEADER.pack(len(body)) + body)
        reply = recv_frame(raw_socket)
        assert reply is not None and reply["type"] == "error"
        _assert_still_serving(cluster)

    def test_unknown_frame_type_gets_typed_error(self, cluster, raw_socket):
        raw_socket.sendall(encode_frame({"type": "teleport"}))
        reply = recv_frame(raw_socket)
        assert reply is not None and reply["type"] == "error"
        assert "teleport" in reply["error"]
        _assert_still_serving(cluster)
