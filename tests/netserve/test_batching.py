"""The worker micro-batching dispatcher (PR 9).

Covers: batched serving stays bit-identical to the in-process scalar
path, batches actually form under concurrent load, result frames carry
the generation stamp, control frames (``stats``/``ping``) never queue
behind an in-flight serve batch, the manifest reload probe is throttled
off the per-request hot path (and a committed generation is still
picked up within the interval), and one poisoned request in a batch
degrades only itself.
"""

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.netserve import ClusterConfig, ServeClient, ServingCluster
from repro.netserve.wire import recv_frame, send_frame
from repro.netserve.worker import WorkerConfig, _PendingServe, _Worker
from repro.segment import TieredConfig, TieredSegmentedIndex
from repro.serving import AdServer, ServeRequest

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix


def _ad(text, listing_id):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, bid_price_micros=100 + listing_id)
    )


def _sample_queries(generated_corpus):
    ads = generated_corpus.corpus.ads
    return [
        Query(ads[i].phrase + ("extra", "words"))
        for i in range(0, len(ads), 97)
    ]


@pytest.fixture(scope="module")
def batched_cluster(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=1,
        conns_per_worker=8,
        default_deadline_ms=2_000.0,
        max_batch=8,
        batch_wait_us=20_000.0,  # generous: let batches actually fill
    )
    with ServingCluster(config) as running:
        yield running


class TestBatchedServing:
    def test_batched_results_equal_in_process_results(
        self, batched_cluster, reference_index, generated_corpus
    ):
        host, port = batched_cluster.address
        local = AdServer(reference_index)
        with ServeClient(host, port) as client:
            for query in _sample_queries(generated_corpus):
                remote = client.serve(ServeRequest(query=query))
                expected = local.serve(query)
                assert remote.to_dict() == expected.to_dict()

    def test_batches_form_under_concurrent_load(
        self, batched_cluster, generated_corpus
    ):
        host, port = batched_cluster.address
        queries = _sample_queries(generated_corpus)

        def hammer(client_id):
            with ServeClient(host, port) as client:
                for i in range(6):
                    query = queries[(client_id + i) % len(queries)]
                    client.serve(ServeRequest(query=query))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        with ServeClient(host, port) as client:
            stats = client.stats()
        batching = stats["workers"][0]["batching"]
        assert batching["max_batch"] == 8
        assert batching["batches"] >= 1
        # 8 closed-loop clients against a 20 ms batch window: at least
        # one multi-request batch must have formed.
        assert batching["batch_size"]["max"] >= 2

    def test_result_frames_carry_generation_stamp(self, batched_cluster):
        host, port = batched_cluster.address
        with ServeClient(host, port) as client:
            reply = client.request(
                {
                    "type": "serve",
                    "request": {"query": ["books"], "request_id": "g-1"},
                }
            )
        assert reply["type"] == "result"
        assert reply["request_id"] == "g-1"
        # A frozen packed segment serves generation 0 forever.
        assert reply["generation"] == 0

    def test_schema_error_answered_without_queuing(self, batched_cluster):
        host, port = batched_cluster.address
        with ServeClient(host, port) as client:
            reply = client.request(
                {"type": "serve", "request": {"query": "not-a-list"}}
            )
            assert reply["type"] == "error"
            assert client.ping()


class TestControlPlaneNotBatched:
    def test_stats_and_ping_answer_while_slow_batch_in_flight(
        self, segment_path, tmp_path
    ):
        """Regression: control frames must bypass the dispatch queue."""
        sock_path = str(tmp_path / "slow.sock")
        worker = _Worker(
            WorkerConfig(
                segment_path=str(segment_path), socket_path=sock_path
            )
        )
        original_serve = worker.server.serve

        def slow_serve(request, **kwargs):
            time.sleep(1.0)
            return original_serve(request, **kwargs)

        worker.server.serve = slow_serve
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while not os.path.exists(sock_path):
                assert time.monotonic() < deadline, "worker never bound"
                time.sleep(0.01)

            serve_conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            serve_conn.connect(sock_path)
            send_frame(
                serve_conn, {"type": "serve", "request": {"query": ["x"]}}
            )
            time.sleep(0.2)  # the slow batch is now mid-flight

            control_conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            control_conn.connect(sock_path)
            control_conn.settimeout(0.6)  # << the 1 s the batch needs
            started = time.perf_counter()
            send_frame(control_conn, {"type": "stats"})
            stats = recv_frame(control_conn)
            send_frame(control_conn, {"type": "ping"})
            pong = recv_frame(control_conn)
            control_ms = (time.perf_counter() - started) * 1e3
            assert stats["type"] == "stats"
            assert pong["type"] == "pong"
            assert control_ms < 600.0
            control_conn.close()

            serve_conn.settimeout(5.0)
            reply = recv_frame(serve_conn)
            assert reply["type"] == "result"
            serve_conn.close()
        finally:
            stop = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                stop.settimeout(2.0)
                stop.connect(sock_path)
                send_frame(stop, {"type": "shutdown"})
                recv_frame(stop)
            except OSError:
                pass
            finally:
                stop.close()
            thread.join(timeout=10.0)


class TestReloadThrottle:
    def _tiered_worker(self, tmp_path, interval):
        directory = tmp_path / "tiered"
        writer = TieredSegmentedIndex(
            directory, config=TieredConfig(seal_threshold=100)
        )
        writer.insert(_ad("reload w0 common", listing_id=1))
        writer.seal()
        worker = _Worker(
            WorkerConfig(
                segment_path=str(directory),
                socket_path=str(tmp_path / "sock"),
                reload_check_interval_s=interval,
            )
        )
        return writer, worker

    def _candidates(self, worker):
        reply = worker.handle(
            {"type": "serve", "request": {"query": ["reload", "w0", "common"]}}
        )
        assert reply["type"] == "result"
        return reply["result"]["outcome"]["candidates"]

    def test_manifest_probe_throttled_off_hot_path(
        self, tmp_path, monkeypatch
    ):
        """Serving N requests inside the interval stats the manifest at
        most once — the per-request filesystem probe is gone."""
        import repro.netserve.worker as worker_mod

        calls = {"n": 0}
        real = worker_mod.manifest_fingerprint

        def counting(path):
            calls["n"] += 1
            return real(path)

        monkeypatch.setattr(worker_mod, "manifest_fingerprint", counting)
        writer, worker = self._tiered_worker(tmp_path, interval=10.0)
        try:
            after_init = calls["n"]  # __init__ fingerprints once
            writer.insert(_ad("reload w0 common", listing_id=2))
            writer.seal()
            for _ in range(20):
                assert self._candidates(worker) == 1  # swap not seen yet
            assert calls["n"] == after_init
            assert worker.manifest_reloads == 0
        finally:
            worker.close()
            writer.close()

    def test_committed_generation_picked_up_within_interval(self, tmp_path):
        interval = 0.05
        writer, worker = self._tiered_worker(tmp_path, interval=interval)
        try:
            assert self._candidates(worker) == 1
            writer.insert(_ad("reload w0 common", listing_id=2))
            writer.seal()
            started = time.monotonic()
            deadline = started + 2.0
            while self._candidates(worker) != 2:
                assert time.monotonic() < deadline, (
                    "committed generation never picked up"
                )
                time.sleep(0.005)
            waited = time.monotonic() - started
            assert waited < 10 * interval, waited
            assert worker.manifest_reloads == 1
            assert worker.stats_payload()["generation"] == writer.generation
        finally:
            worker.close()
            writer.close()


class TestPoisonedBatch:
    def test_one_poisoned_request_degrades_only_itself(self, segment_path):
        worker = _Worker(
            WorkerConfig(
                segment_path=str(segment_path),
                socket_path="/tmp/unused-poison.sock",
                max_batch=4,
            )
        )
        try:
            original_serve = worker.server.serve

            def failing_batch(requests):
                raise RuntimeError("batch kernel exploded")

            def picky_serve(request, **kwargs):
                if "poison" in request.query.tokens:
                    raise RuntimeError("bad request state")
                return original_serve(request, **kwargs)

            worker.server.serve_batch = failing_batch
            worker.server.serve = picky_serve
            good = _PendingServe(
                ServeRequest(query=Query(("books",)), request_id="ok-1")
            )
            bad = _PendingServe(
                ServeRequest(query=Query(("poison",)), request_id="bad-1")
            )
            worker._serve_batch([good, bad])
            assert good.response["type"] == "result"
            assert good.response["request_id"] == "ok-1"
            assert bad.response["type"] == "error"
            assert bad.response["retryable"] is True
            assert bad.response["request_id"] == "bad-1"
            assert worker.errors == 1
            assert worker.served == 1
        finally:
            worker.close()
