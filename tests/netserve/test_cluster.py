"""End-to-end cluster tests: remote answers equal in-process answers,
stats carry the memory evidence, and overload sheds by priority."""

import socket
import time
from pathlib import Path

import pytest

from repro.core.queries import Query
from repro.netserve import ClusterConfig, ServeClient, ServingCluster
from repro.resilience.admission import AdmissionConfig, Priority
from repro.resilience.deadline import DegradedReason
from repro.serving import AdServer, ServeRequest

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix


@pytest.fixture(scope="module")
def cluster(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=2,
        default_deadline_ms=2_000.0,
    )
    with ServingCluster(config) as running:
        yield running


@pytest.fixture()
def client(cluster):
    host, port = cluster.address
    with ServeClient(host, port) as connected:
        yield connected


def _sample_queries(generated_corpus):
    ads = generated_corpus.corpus.ads
    return [
        Query(ads[i].phrase + ("extra", "words"))
        for i in range(0, len(ads), 97)
    ]


class TestServing:
    def test_ping(self, client):
        assert client.ping()

    def test_remote_results_equal_in_process_results(
        self, client, reference_index, generated_corpus
    ):
        local = AdServer(reference_index)
        for query in _sample_queries(generated_corpus):
            remote = client.serve(ServeRequest(query=query))
            expected = local.serve(query)
            assert remote.to_dict() == expected.to_dict()

    def test_request_id_echoes_through(self, cluster):
        host, port = cluster.address
        with ServeClient(host, port) as client:
            reply = client.request(
                {
                    "type": "serve",
                    "request": {"query": ["books"], "request_id": "r-42"},
                }
            )
        assert reply["type"] == "result"
        assert reply["request_id"] == "r-42"

    def test_error_frame_for_bad_request_then_connection_survives(
        self, client
    ):
        reply = client.request(
            {"type": "serve", "request": {"query": "not-a-list"}}
        )
        assert reply["type"] == "error"
        assert client.ping()

    def test_stats_report_both_workers_and_memory_fields(self, client):
        client.serve(ServeRequest.from_text("warm up query"))
        stats = client.stats()
        workers = stats["workers"]
        assert sorted(w["worker_id"] for w in workers) == [0, 1]
        total_served = sum(w["served"] for w in workers)
        assert total_served >= 1
        for worker in workers:
            assert worker["errors"] == 0
            assert "serve_ms" in worker
            # Memory fields are present; values are None off-/proc.
            assert "rss_bytes" in worker
            assert "segment_mapping" in worker
        frontend = stats["frontend"]
        assert frontend["num_workers"] == 2
        assert frontend["counters"]["frontend.requests"] >= 1

    def test_segment_mapping_is_shared_not_copied(self, client, segment_path):
        """The zero-copy claim, asserted directly: with two workers
        mapping one file, resident mapping pages are shared pages."""
        stats = client.stats()
        mappings = [w["segment_mapping"] for w in stats["workers"]]
        if any(m is None for m in mappings):
            pytest.skip("smaps unavailable on this platform")
        segment_bytes = segment_path.stat().st_size
        for mapping in mappings:
            assert mapping["private"] <= 0.25 * segment_bytes


class TestOverload:
    def test_token_bucket_sheds_low_before_high(self, segment_path):
        config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=1,
            # burst=1: a full bucket covers HIGH (needs 1.0 token) but
            # not LOW (needs 1.3 — its 30% reserve), so LOW sheds even
            # before any traffic and HIGH sheds once the bucket drains.
            admission=AdmissionConfig(rate_per_s=0.001, burst=1.0),
        )
        with ServingCluster(config) as cluster:
            host, port = cluster.address
            with ServeClient(host, port) as client:
                low = client.serve(
                    ServeRequest.from_text("books", priority=Priority.LOW)
                )
                high = client.serve(
                    ServeRequest.from_text("books", priority=Priority.HIGH)
                )
                # Bucket now empty: even HIGH sheds, flagged not dropped.
                drained = client.serve(
                    ServeRequest.from_text("books", priority=Priority.HIGH)
                )
        assert low.degraded_reason is DegradedReason.SHED_CAPACITY
        assert high.degraded_reason is DegradedReason.NONE
        assert drained.degraded_reason is DegradedReason.SHED_CAPACITY
        assert low.ads == []


class TestLifecycle:
    def test_stop_is_idempotent(self, segment_path):
        config = ClusterConfig(
            segment_path=str(segment_path), num_workers=1
        )
        cluster = ServingCluster(config)
        cluster.start()
        assert cluster.port is not None
        cluster.stop()
        cluster.stop()
        assert cluster.processes == []

    def test_workers_exit_on_stop(self, segment_path):
        config = ClusterConfig(
            segment_path=str(segment_path), num_workers=2
        )
        cluster = ServingCluster(config)
        cluster.start()
        procs = list(cluster.processes)
        cluster.stop()
        assert all(not p.is_alive() for p in procs)

    def test_stop_before_start_is_a_noop(self, segment_path):
        cluster = ServingCluster(
            ClusterConfig(segment_path=str(segment_path), num_workers=1)
        )
        cluster.stop()
        assert cluster.processes == []

    def test_failed_boot_raises_fast_and_leaks_nothing(self, tmp_path):
        """A worker that dies during boot (bad segment) must fail the
        ping gate immediately — not hang out the whole boot deadline —
        and the partial boot must clean up after itself."""
        config = ClusterConfig(
            segment_path=str(tmp_path / "no-such.seg"),
            num_workers=2,
            boot_timeout_s=30.0,
        )
        cluster = ServingCluster(config)
        started = time.monotonic()
        with pytest.raises(RuntimeError, match="died during boot"):
            cluster.start()
        # Failing fast is the point: nowhere near the 30s deadline.
        assert time.monotonic() - started < 15.0
        assert cluster.processes == []
        assert cluster.supervisor is None
        # __exit__ after the failed start stays safe (double cleanup).
        cluster.__exit__(None, None, None)

    def test_context_manager_propagates_boot_failure(self, tmp_path):
        config = ClusterConfig(
            segment_path=str(tmp_path / "missing.seg"), num_workers=1
        )
        with pytest.raises(RuntimeError):
            with ServingCluster(config):
                pytest.fail("boot must not succeed without a segment")

    def test_stale_socket_file_does_not_block_boot(self, segment_path):
        """A crashed predecessor's socket files must not poison the next
        boot: the cluster unlinks before forking."""
        import tempfile

        with tempfile.TemporaryDirectory(prefix="netserve-stale-") as tmp:
            stale = Path(tmp) / "w0.sock"
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(str(stale))
            sock.close()  # the file outlives the socket — the stale case
            assert stale.exists()
            config = ClusterConfig(
                segment_path=str(segment_path),
                num_workers=1,
                runtime_dir=tmp,
                supervise=False,
            )
            with ServingCluster(config) as cluster:
                host, port = cluster.address
                with ServeClient(host, port) as client:
                    assert client.ping()
