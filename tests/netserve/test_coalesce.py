"""Singleflight coalescing and the generation-aware result cache (PR 9).

Pure-logic property tests for :mod:`repro.netserve.coalesce`, a
hypothesis interleaving test for the frontend's singleflight addressing
(every coalesced client gets its own ``request_id``-stamped,
bit-identical reply), and live-cluster tests for coalescing, cache
hits, and cache invalidation on a tiered generation bump.
"""

import asyncio
import copy
import json
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ads import AdInfo, Advertisement
from repro.netserve import ClusterConfig, ServeClient, ServingCluster
from repro.netserve.coalesce import (
    GenerationalLRUCache,
    canonical_serve_key,
    restamp_result,
)
from repro.netserve.frontend import Frontend, FrontendConfig
from repro.netserve.wire import HEADER, decode_payload, encode_frame
from repro.segment import TieredConfig, TieredSegmentedIndex

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix


def _ad(text, listing_id):
    return Advertisement.from_text(
        text, AdInfo(listing_id=listing_id, bid_price_micros=100 + listing_id)
    )


def _counter(obs, name):
    return next(
        (m.value for m in obs.collect() if m.name == name), 0
    )


def _without_request_id(reply):
    return json.dumps(
        {k: v for k, v in reply.items() if k != "request_id"},
        sort_keys=True,
    )


class TestCanonicalServeKey:
    def test_order_and_duplicates_fold_to_one_key(self):
        a = canonical_serve_key({"query": ["b", "a", "a", "c"]})
        b = canonical_serve_key({"query": ["c", "b", "a"]})
        assert a is not None
        assert a == b

    def test_request_id_is_excluded(self):
        a = canonical_serve_key({"query": ["x"], "request_id": "r-1"})
        b = canonical_serve_key({"query": ["x"], "request_id": "r-2"})
        assert a == b

    def test_answer_changing_fields_split_keys(self):
        base = {"query": ["x"]}
        keys = {
            canonical_serve_key(base),
            canonical_serve_key({**base, "user_id": "u1"}),
            canonical_serve_key({**base, "user_id": "u2"}),
            canonical_serve_key({**base, "priority": "high"}),
            canonical_serve_key({**base, "deadline_ms": 50}),
        }
        assert None not in keys
        assert len(keys) == 5

    def test_int_and_float_deadlines_fold(self):
        a = canonical_serve_key({"query": ["x"], "deadline_ms": 50})
        b = canonical_serve_key({"query": ["x"], "deadline_ms": 50.0})
        assert a == b

    def test_malformed_requests_are_not_shareable(self):
        assert canonical_serve_key({}) is None
        assert canonical_serve_key({"query": "not-a-list"}) is None
        assert canonical_serve_key({"query": ["ok", 7]}) is None
        assert canonical_serve_key({"query": ["x"], "user_id": 1.5}) is None
        assert canonical_serve_key({"query": ["x"], "priority": 3}) is None
        assert (
            canonical_serve_key({"query": ["x"], "deadline_ms": "fast"})
            is None
        )


class TestRestampResult:
    SHARED = {
        "type": "result",
        "request_id": "leader",
        "generation": 4,
        "result": {
            "query": ["a", "b"],
            "degraded_reason": "none",
            "outcome": {"reserve_micros": 1, "candidates": 2, "awards": []},
        },
    }

    def test_readdresses_and_restores_token_order(self):
        reply = restamp_result(
            self.SHARED, {"query": ["b", "a"], "request_id": "me"}
        )
        assert reply["request_id"] == "me"
        assert reply["result"]["query"] == ["b", "a"]
        assert reply["result"]["outcome"] == self.SHARED["result"]["outcome"]
        assert reply["generation"] == 4

    def test_removes_request_id_when_client_sent_none(self):
        reply = restamp_result(self.SHARED, {"query": ["a", "b"]})
        assert "request_id" not in reply

    def test_shared_payload_is_never_mutated(self):
        before = copy.deepcopy(self.SHARED)
        restamp_result(self.SHARED, {"query": ["b", "a"], "request_id": "x"})
        assert self.SHARED == before

    def test_matching_token_order_shares_the_result_dict(self):
        reply = restamp_result(
            self.SHARED, {"query": ["a", "b"], "request_id": "x"}
        )
        assert reply["result"] is self.SHARED["result"]


class TestGenerationalLRUCache:
    def test_put_get_and_lru_eviction(self):
        cache = GenerationalLRUCache(2)
        assert cache.put("a", 0, {"v": 1})
        assert cache.put("b", 0, {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes "a"
        assert cache.put("c", 0, {"v": 3})  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert len(cache) == 2

    def test_generation_bump_flushes_and_blocks_stragglers(self):
        cache = GenerationalLRUCache(4)
        cache.put("a", 0, {"v": 1})
        assert cache.observe_generation(1) is True
        assert cache.get("a") is None
        # A straggler worker still on generation 0 cannot repopulate.
        assert cache.put("a", 0, {"v": "stale"}) is False
        assert cache.get("a") is None
        # Backwards/equal observations are no-ops.
        assert cache.observe_generation(0) is False
        assert cache.observe_generation(1) is False
        assert cache.generation == 1
        assert cache.put("a", 1, {"v": "fresh"}) is True
        assert cache.get("a") == {"v": "fresh"}

    def test_bump_with_empty_cache_is_not_an_invalidation(self):
        cache = GenerationalLRUCache(4)
        assert cache.observe_generation(3) is False
        assert cache.generation == 3
        assert cache.stats()["invalidations"] == 0

    @settings(deadline=None, max_examples=60)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("put"),
                    st.integers(0, 3),
                    st.integers(0, 4),
                ),
                st.tuples(st.just("get"), st.integers(0, 3), st.just(0)),
                st.tuples(st.just("bump"), st.integers(0, 4), st.just(0)),
            ),
            max_size=60,
        )
    )
    def test_matches_reference_model(self, ops):
        """Any op sequence: bounded, monotonic, never serves across a
        generation bump, never accepts an off-generation put."""
        cache = GenerationalLRUCache(2)
        model: dict = {}
        model_gen = 0
        for op, a, b in ops:
            if op == "put":
                accepted = cache.put(f"k{a}", b, {"gen": b, "key": a})
                assert accepted is (b == model_gen)
                if accepted:
                    model[f"k{a}"] = {"gen": b, "key": a}
                    while len(model) > 2:
                        # model mirrors LRU eviction: drop the entry the
                        # cache itself no longer holds
                        for key in list(model):
                            if cache.get(key) is None:
                                cache.misses -= 1  # undo probe accounting
                                del model[key]
                                break
                        else:
                            raise AssertionError("cache over capacity")
            elif op == "get":
                got = cache.get(f"k{a}")
                assert got == model.get(f"k{a}")
            else:
                bumped = cache.observe_generation(a)
                if a > model_gen:
                    model_gen = a
                    assert bumped is bool(model)
                    model.clear()
                else:
                    assert bumped is False
            assert cache.generation == model_gen
            assert len(cache) == len(model) <= 2


class TestSingleflightAddressing:
    """White-box: the frontend's singleflight gate, no sockets.

    ``_dispatch_decoded`` is replaced by a fake that blocks every
    leader on one event until *all* client tasks have been started, so
    any interleaving hypothesis generates ends up fully coalesced — the
    strongest setting for the addressing property.
    """

    @settings(deadline=None, max_examples=40)
    @given(
        clients=st.lists(
            st.tuples(
                st.lists(
                    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
                    min_size=1,
                    max_size=4,
                ),
                st.sampled_from(["normal", "high"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_every_client_gets_its_own_bit_identical_reply(self, clients):
        asyncio.run(self._drive(clients))

    async def _drive(self, clients):
        frontend = Frontend(
            ["/nonexistent"], FrontendConfig(coalesce=True)
        )
        release = asyncio.Event()
        dispatched: list = []

        async def fake_dispatch_decoded(key, frame):
            dispatched.append(key)
            await release.wait()
            request = decode_payload(frame[HEADER.size:])["request"]
            words = sorted(set(request["query"]))
            return {
                "type": "result",
                "request_id": request.get("request_id"),
                "generation": 0,
                "result": {
                    "query": list(request["query"]),
                    "degraded_reason": "none",
                    "outcome": {
                        "reserve_micros": 1,
                        "candidates": len(words),
                        "awards": [
                            {"listing_id": i, "word": w}
                            for i, w in enumerate(words)
                        ],
                    },
                },
            }

        frontend._dispatch_decoded = fake_dispatch_decoded

        requests = []
        for i, (tokens, priority) in enumerate(clients):
            requests.append(
                {
                    "query": list(tokens),
                    "priority": priority,
                    "request_id": f"c{i}",
                }
            )

        async def one(request):
            frame = encode_frame({"type": "serve", "request": request})
            key = canonical_serve_key(request)
            shared = await frontend._serve_shared(key, frame)
            return restamp_result(shared, request)

        tasks = [asyncio.ensure_future(one(r)) for r in requests]
        await asyncio.sleep(0)  # every task reaches the gate
        release.set()
        replies = await asyncio.gather(*tasks)

        distinct = {canonical_serve_key(r) for r in requests}
        # Exactly one worker round trip per canonical key.
        assert len(dispatched) == len(distinct)
        assert set(dispatched) == distinct
        shared_by_key: dict = {}
        for request, reply in zip(requests, replies):
            # Addressed to this client, echoing this client's order.
            assert reply["request_id"] == request["request_id"]
            assert reply["result"]["query"] == request["query"]
            body = dict(reply)
            del body["request_id"]
            body["result"] = {
                k: v for k, v in reply["result"].items() if k != "query"
            }
            key = canonical_serve_key(request)
            # Everything else is bit-identical across coalesced clients.
            if key in shared_by_key:
                assert shared_by_key[key] == body
            else:
                shared_by_key[key] = body
        assert _counter(frontend.obs, "frontend.coalesced") == len(
            requests
        ) - len(distinct)


class TestLivePipeline:
    def test_identical_inflight_requests_coalesce(self, segment_path):
        config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=1,
            conns_per_worker=1,  # serialize worker trips: queues overlap
            coalesce=True,
        )
        with ServingCluster(config) as cluster:
            host, port = cluster.address
            replies = []
            lock = threading.Lock()

            def hammer(tid):
                with ServeClient(host, port) as client:
                    for i in range(25):
                        reply = client.request(
                            {
                                "type": "serve",
                                "request": {
                                    "query": ["books", "extra"],
                                    "request_id": f"t{tid}-{i}",
                                },
                            }
                        )
                        with lock:
                            replies.append((f"t{tid}-{i}", reply))

            threads = [
                threading.Thread(target=hammer, args=(tid,))
                for tid in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with ServeClient(host, port) as client:
                stats = client.stats()
        counters = stats["frontend"]["counters"]
        assert counters["frontend.coalesced"] > 0
        assert len(replies) == 8 * 25
        for request_id, reply in replies:
            assert reply["type"] == "result"
            assert reply["request_id"] == request_id
        assert len({_without_request_id(r) for _, r in replies}) == 1

    def test_cache_hit_answers_without_a_worker_trip(self, segment_path):
        config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=1,
            cache_entries=64,
        )
        with ServingCluster(config) as cluster:
            host, port = cluster.address
            with ServeClient(host, port) as client:
                request = {"query": ["books", "extra"]}
                first = client.request(
                    {"type": "serve", "request": {**request, "request_id": "a"}}
                )
                served_after_first = client.stats()["workers"][0]["served"]
                second = client.request(
                    {"type": "serve", "request": {**request, "request_id": "b"}}
                )
                stats = client.stats()
        assert first["request_id"] == "a"
        assert second["request_id"] == "b"
        assert _without_request_id(first) == _without_request_id(second)
        counters = stats["frontend"]["counters"]
        assert counters["frontend.cache_hits"] == 1
        assert counters["frontend.cache_misses"] == 1
        # The hit never reached the worker.
        assert stats["workers"][0]["served"] == served_after_first
        assert stats["frontend"]["cache"]["entries"] == 1

    def test_cache_invalidated_on_tiered_generation_bump(self, tmp_path):
        directory = tmp_path / "tiered"
        writer = TieredSegmentedIndex(
            directory, config=TieredConfig(seal_threshold=100)
        )
        writer.insert(_ad("cache inval probe", listing_id=1))
        writer.seal()
        config = ClusterConfig(
            segment_path=str(directory),
            num_workers=1,
            cache_entries=64,
            reload_check_interval_s=0.0,  # reload eagerly: test the cache
        )
        try:
            with ServingCluster(config) as cluster:
                host, port = cluster.address
                with ServeClient(host, port) as client:
                    probe = {"query": ["cache", "inval", "probe"]}
                    first = client.request(
                        {"type": "serve", "request": dict(probe)}
                    )
                    assert first["result"]["outcome"]["candidates"] == 1
                    assert first["generation"] == writer.generation
                    cached = client.request(
                        {"type": "serve", "request": dict(probe)}
                    )
                    assert cached["generation"] == first["generation"]

                    writer.insert(_ad("cache inval probe", listing_id=2))
                    writer.seal()
                    # Fresh-keyed misses must reach the worker; one of
                    # them observes the committed generation and flushes
                    # the cache.
                    deadline = time.monotonic() + 10.0
                    n = 0
                    while True:
                        miss = client.request(
                            {
                                "type": "serve",
                                "request": {"query": [f"miss-{n}"]},
                            }
                        )
                        if miss["generation"] == writer.generation:
                            break
                        assert time.monotonic() < deadline, (
                            "worker never picked up the new generation"
                        )
                        n += 1
                        time.sleep(0.01)
                    fresh = client.request(
                        {"type": "serve", "request": dict(probe)}
                    )
                    assert fresh["generation"] == writer.generation
                    assert fresh["result"]["outcome"]["candidates"] == 2
                    stats = client.stats()
            counters = stats["frontend"]["counters"]
            assert counters["frontend.cache_hits"] >= 1
            assert counters["frontend.cache_invalidations"] >= 1
            assert (
                stats["frontend"]["cache"]["generation"] == writer.generation
            )
        finally:
            writer.close()
