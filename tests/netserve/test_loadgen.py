"""The closed-loop generator and its SLO report, against a live tier."""

import pytest

from repro.core.queries import Query
from repro.netserve import (
    ClusterConfig,
    LoadGenConfig,
    ServingCluster,
    run_loadgen,
)
from repro.netserve.loadgen import _LATENCY_BUCKETS_MS, build_report
from repro.obs.registry import MetricsRegistry

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix


@pytest.fixture(scope="module")
def cluster(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=2,
        default_deadline_ms=2_000.0,
    )
    with ServingCluster(config) as running:
        yield running


def _queries(generated_corpus):
    ads = generated_corpus.corpus.ads
    return [
        Query(ads[i].phrase + ("padding", "words"))
        for i in range(0, len(ads), 53)
    ]


class TestLoadGen:
    def test_report_is_complete_and_clean(self, cluster, generated_corpus):
        host, port = cluster.address
        report = run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=1.0,
                concurrency=4,
                deadline_ms=1_000.0,
                user_ids=2,
            ),
            _queries(generated_corpus),
        )
        assert report["errors"] == 0
        assert report["sent"] > 0
        assert report["ok"] + report["shed"] + report["degraded"] == (
            report["sent"]
        )
        assert report["qps"] > 0
        assert report["latency_ms"]["count"] == report["sent"]
        assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["within_deadline"] is not None
        # A healthy run must not be flagged degenerate.
        assert report["degenerate"] is False
        assert report["degenerate_reasons"] == []
        # Per-worker rows carry the served-delta QPS split.
        workers = report["workers"]
        assert sorted(w["worker_id"] for w in workers) == [0, 1]
        assert sum(w["served"] for w in workers) == report["sent"]

    def test_empty_query_list_is_an_error(self, cluster):
        host, port = cluster.address
        with pytest.raises(ValueError):
            run_loadgen(
                LoadGenConfig(host=host, port=port, duration_s=0.1), []
            )

    def test_zipf_mode_reports_duplicate_heavy_traffic(
        self, cluster, generated_corpus
    ):
        host, port = cluster.address
        report = run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=1.0,
                concurrency=4,
                deadline_ms=1_000.0,
                zipf_s=1.1,
                zipf_seed=7,
            ),
            _queries(generated_corpus),
        )
        assert report["errors"] == 0
        assert report["config"]["zipf_s"] == 1.1
        traffic = report["traffic"]
        assert traffic["mode"] == "zipf"
        assert traffic["zipf_s"] == 1.1
        assert traffic["issued"] >= report["sent"] > 0
        assert 1 <= traffic["unique_queries"] <= traffic["issued"]
        # The whole point of the mode: the realized stream repeats
        # queries, so downstream coalescing/caching has something to do.
        assert 0.0 < traffic["unique_query_fraction"] < 1.0
        # This cluster runs with coalescing and cache off: the report
        # still carries the section, with honest zero deltas.
        assert report["coalescing"] == {
            "coalesced": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_invalidations": 0,
        }


def _report(
    counts,
    elapsed_s,
    workers_after=(),
    stats_before=None,
    stats_after=None,
    traffic=None,
):
    """Drive the pure report builder with canned run artifacts."""
    latency = MetricsRegistry().histogram(
        "loadgen.latency_ms", bounds=_LATENCY_BUCKETS_MS
    )
    for _ in range(counts["sent"]):
        latency.observe(1.0)
    config = LoadGenConfig(host="localhost", port=0, deadline_ms=100.0)
    return build_report(
        config,
        num_queries=4,
        counts=counts,
        elapsed_s=elapsed_s,
        latency=latency,
        stats_before=(
            stats_before if stats_before is not None else {"workers": []}
        ),
        stats_after=(
            stats_after
            if stats_after is not None
            else {"workers": list(workers_after)}
        ),
        traffic=traffic,
    )


class TestBuildReport:
    """The degenerate-run arithmetic, no live cluster needed."""

    def test_healthy_counts_are_not_degenerate(self):
        counts = {
            "sent": 10, "ok": 8, "shed": 1, "degraded": 1,
            "errors": 0, "within_deadline": 8,
        }
        report = _report(counts, elapsed_s=2.0)
        assert report["degenerate"] is False
        assert report["qps"] == pytest.approx(5.0)
        assert report["within_deadline"] == pytest.approx(1.0)

    def test_zero_elapsed_never_divides_by_zero(self):
        counts = {
            "sent": 3, "ok": 3, "shed": 0, "degraded": 0,
            "errors": 0, "within_deadline": 3,
        }
        worker = {"worker_id": 0, "served": 3}
        report = _report(counts, elapsed_s=0.0, workers_after=[worker])
        assert report["degenerate"] is True
        assert "elapsed_clamped" in report["degenerate_reasons"]
        # Clamped to the floor, not infinity and not zero.
        assert 0.0 < report["qps"] < float("inf")
        assert 0.0 < report["workers"][0]["qps"] < float("inf")

    def test_microsecond_elapsed_does_not_report_absurd_qps(self):
        counts = {
            "sent": 2, "ok": 2, "shed": 0, "degraded": 0,
            "errors": 0, "within_deadline": 2,
        }
        report = _report(counts, elapsed_s=1e-7)
        assert "elapsed_clamped" in report["degenerate_reasons"]
        assert report["qps"] <= 2.0 / 1e-3

    def test_all_errors_run_is_called_out(self):
        counts = {
            "sent": 0, "ok": 0, "shed": 0, "degraded": 0,
            "errors": 17, "within_deadline": 0,
        }
        report = _report(counts, elapsed_s=1.0)
        assert report["degenerate"] is True
        assert "no_completed_responses" in report["degenerate_reasons"]
        assert "all_errors" in report["degenerate_reasons"]
        assert report["qps"] == 0.0
        assert report["within_deadline"] is None
        assert report["shed_rate"] == 0.0

    def test_traffic_section_passes_through_verbatim(self):
        counts = {
            "sent": 4, "ok": 4, "shed": 0, "degraded": 0,
            "errors": 0, "within_deadline": 4,
        }
        traffic = {
            "mode": "zipf",
            "zipf_s": 1.2,
            "issued": 40,
            "unique_queries": 9,
            "unique_query_fraction": 0.225,
        }
        report = _report(counts, elapsed_s=1.0, traffic=traffic)
        assert report["traffic"] == traffic

    def test_coalescing_deltas_come_from_stats_probes(self):
        counts = {
            "sent": 4, "ok": 4, "shed": 0, "degraded": 0,
            "errors": 0, "within_deadline": 4,
        }

        def stats(coalesced, hits, misses, invalidations):
            return {
                "workers": [],
                "frontend": {
                    "counters": {
                        "frontend.coalesced": coalesced,
                        "frontend.cache_hits": hits,
                        "frontend.cache_misses": misses,
                        "frontend.cache_invalidations": invalidations,
                    }
                },
            }

        report = _report(
            counts,
            elapsed_s=1.0,
            stats_before=stats(10, 100, 50, 1),
            stats_after=stats(17, 180, 62, 3),
        )
        assert report["coalescing"] == {
            "coalesced": 7,
            "cache_hits": 80,
            "cache_misses": 12,
            "cache_invalidations": 2,
        }

    def test_coalescing_deltas_survive_malformed_stats(self):
        counts = {
            "sent": 1, "ok": 1, "shed": 0, "degraded": 0,
            "errors": 0, "within_deadline": 1,
        }
        report = _report(
            counts,
            elapsed_s=1.0,
            stats_before={"workers": [], "frontend": "broken"},
            stats_after={"workers": []},
        )
        assert report["coalescing"]["coalesced"] == 0
        assert report["coalescing"]["cache_hits"] == 0

    def test_all_shed_run_keeps_deadline_fraction_none(self):
        counts = {
            "sent": 5, "ok": 0, "shed": 5, "degraded": 0,
            "errors": 0, "within_deadline": 0,
        }
        report = _report(counts, elapsed_s=1.0)
        assert report["degenerate"] is True
        assert report["degenerate_reasons"] == ["no_ok_responses"]
        assert report["within_deadline"] is None
        assert report["shed_rate"] == pytest.approx(1.0)
