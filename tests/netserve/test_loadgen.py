"""The closed-loop generator and its SLO report, against a live tier."""

import pytest

from repro.core.queries import Query
from repro.netserve import (
    ClusterConfig,
    LoadGenConfig,
    ServingCluster,
    run_loadgen,
)

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix


@pytest.fixture(scope="module")
def cluster(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=2,
        default_deadline_ms=2_000.0,
    )
    with ServingCluster(config) as running:
        yield running


def _queries(generated_corpus):
    ads = generated_corpus.corpus.ads
    return [
        Query(ads[i].phrase + ("padding", "words"))
        for i in range(0, len(ads), 53)
    ]


class TestLoadGen:
    def test_report_is_complete_and_clean(self, cluster, generated_corpus):
        host, port = cluster.address
        report = run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=1.0,
                concurrency=4,
                deadline_ms=1_000.0,
                user_ids=2,
            ),
            _queries(generated_corpus),
        )
        assert report["errors"] == 0
        assert report["sent"] > 0
        assert report["ok"] + report["shed"] + report["degraded"] == (
            report["sent"]
        )
        assert report["qps"] > 0
        assert report["latency_ms"]["count"] == report["sent"]
        assert 0 < report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
        assert report["within_deadline"] is not None
        # Per-worker rows carry the served-delta QPS split.
        workers = report["workers"]
        assert sorted(w["worker_id"] for w in workers) == [0, 1]
        assert sum(w["served"] for w in workers) == report["sent"]

    def test_empty_query_list_is_an_error(self, cluster):
        host, port = cluster.address
        with pytest.raises(ValueError):
            run_loadgen(
                LoadGenConfig(host=host, port=port, duration_s=0.1), []
            )
