"""Supervision tests: crash-loop arithmetic pure, everything else live.

The integration tests boot small supervised clusters and injure them
the way the chaos drill does — SIGKILL, SIGSTOP, a poisoned segment —
then assert the supervisor's counters, the respawned pids, and the
frontend's breaker bookkeeping all tell the same story.
"""

import os
import shutil
import signal
import time

import pytest

from repro.netserve import ClusterConfig, ServeClient, ServingCluster
from repro.netserve.supervisor import (
    RestartBudget,
    SupervisorConfig,
    WorkerStatus,
)
from repro.netserve.worker import _SHUTDOWN, WorkerConfig, _PendingServe, _Worker
from repro.serving import ServeRequest

from tests.netserve.conftest import requires_af_unix

pytestmark = requires_af_unix

#: Supervisor tuned for test speed: sub-second detection and respawn.
FAST = SupervisorConfig(
    poll_interval_s=0.1,
    ping_timeout_s=0.5,
    hang_misses=2,
    backoff_initial_s=0.05,
    backoff_max_s=0.5,
)


def wait_for(predicate, timeout_s=15.0, interval_s=0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestRestartBudget:
    def test_backoff_doubles_then_caps(self):
        budget = RestartBudget(
            budget=10, window_s=100.0, initial_s=0.1, max_s=0.5
        )
        delays = [budget.note_failure(float(i)) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_budget_exhaustion_returns_none(self):
        budget = RestartBudget(budget=3, window_s=100.0, initial_s=0.1, max_s=1.0)
        assert budget.note_failure(0.0) is not None
        assert budget.note_failure(1.0) is not None
        assert budget.note_failure(2.0) is None

    def test_old_failures_age_out_of_the_window(self):
        budget = RestartBudget(budget=2, window_s=10.0, initial_s=0.1, max_s=1.0)
        assert budget.note_failure(0.0) == 0.1
        # 11s later the first failure left the window: back to initial
        # backoff instead of exhaustion.
        assert budget.note_failure(11.0) == 0.1
        assert budget.failures_in_window(11.0) == 1

    def test_flap_inside_window_exhausts(self):
        budget = RestartBudget(budget=2, window_s=10.0, initial_s=0.1, max_s=1.0)
        assert budget.note_failure(0.0) == 0.1
        assert budget.note_failure(5.0) is None

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RestartBudget(budget=0, window_s=1.0, initial_s=0.1, max_s=1.0)


class TestSupervisorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"poll_interval_s": 0.0},
            {"ping_timeout_s": -1.0},
            {"hang_misses": 0},
            {"backoff_initial_s": 0.0},
            {"backoff_initial_s": 2.0, "backoff_max_s": 1.0},
            {"crash_loop_budget": 0},
            {"ready_timeout_s": 0.0},
            {"mapping_private_fraction": 0.0},
            {"mapping_private_fraction": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


@pytest.fixture()
def supervised(segment_path):
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=2,
        supervisor=FAST,
    )
    with ServingCluster(config) as cluster:
        yield cluster


class TestCrashRecovery:
    def test_sigkill_is_detected_and_respawned(self, supervised):
        supervisor = supervised.supervisor
        pids = dict(supervisor.running_workers())
        os.kill(pids[0], signal.SIGKILL)
        assert wait_for(
            lambda: supervisor.stats()["counters"]["supervisor.respawns"] >= 1
            and supervisor.all_running()
        )
        fresh = dict(supervisor.running_workers())
        assert fresh[0] != pids[0]
        assert fresh[1] == pids[1]
        counters = supervisor.stats()["counters"]
        assert counters["supervisor.deaths_detected"] >= 1
        # The cluster's own process table follows the respawn.
        assert supervised.processes[0].pid == fresh[0]
        # And the tier still serves.
        host, port = supervised.address
        with ServeClient(host, port) as client:
            assert client.serve(ServeRequest.from_text("books")).to_dict()

    def test_sigstopped_worker_is_declared_hung_and_replaced(
        self, supervised
    ):
        supervisor = supervised.supervisor
        pids = dict(supervisor.running_workers())
        os.kill(pids[1], signal.SIGSTOP)
        try:
            assert wait_for(
                lambda: supervisor.stats()["counters"][
                    "supervisor.hangs_detected"
                ]
                >= 1
                and supervisor.all_running()
            )
        finally:
            # The supervisor SIGKILLs the frozen pid itself; CONT is
            # cleanup in case the assertion failed before it could.
            try:
                os.kill(pids[1], signal.SIGCONT)
            except ProcessLookupError:
                pass
        fresh = dict(supervisor.running_workers())
        assert fresh[1] != pids[1]

    def test_breaker_resets_to_half_open_after_respawn(self, supervised):
        supervisor = supervised.supervisor
        pids = dict(supervisor.running_workers())
        os.kill(pids[0], signal.SIGKILL)
        assert wait_for(
            lambda: supervisor.stats()["counters"]["supervisor.respawns"] >= 1
        )
        frontend = supervised.frontend
        assert frontend is not None  # thread-mode cluster
        assert wait_for(
            lambda: any(
                m.name == "frontend.breaker_resets" and m.value >= 1
                for m in frontend.obs.collect()
            )
        )
        # The per-worker gauge reports a live state again (0=closed,
        # 1=half-open), not the failed sentinel (3).
        gauges = {
            m.name: m.value
            for m in frontend.obs.collect()
            if m.name.startswith("frontend.breaker_state.")
        }
        assert gauges["frontend.breaker_state.w0"] in (0.0, 1.0)

    def test_rolling_restart_replaces_every_pid_without_capacity_gap(
        self, supervised
    ):
        supervisor = supervised.supervisor
        before = dict(supervisor.running_workers())
        new_pids = supervised.rolling_restart()
        assert len(new_pids) == 2
        assert set(new_pids).isdisjoint(before.values())
        assert supervisor.all_running()
        counters = supervisor.stats()["counters"]
        assert counters["supervisor.rolling_restarts"] == 2
        # Planned restarts never touch the crash accounting.
        assert counters["supervisor.deaths_detected"] == 0
        assert counters["supervisor.crash_loops"] == 0
        host, port = supervised.address
        with ServeClient(host, port) as client:
            assert client.serve(ServeRequest.from_text("books")).to_dict()


class TestCrashLoop:
    def test_flapping_worker_is_retired_and_traffic_rebalanced(
        self, segment_path, tmp_path
    ):
        doomed = tmp_path / "doomed.seg"
        shutil.copy(segment_path, doomed)
        config = ClusterConfig(
            segment_path=str(doomed),
            num_workers=2,
            supervisor=SupervisorConfig(
                poll_interval_s=0.1,
                ping_timeout_s=0.5,
                backoff_initial_s=0.05,
                backoff_max_s=0.2,
                crash_loop_budget=2,
                crash_loop_window_s=30.0,
                ready_timeout_s=3.0,
            ),
        )
        with ServingCluster(config) as cluster:
            supervisor = cluster.supervisor
            # Poison every future boot: live workers keep their mapping
            # of the unlinked file, but a respawn cannot open it.
            doomed.unlink()
            pids = dict(supervisor.running_workers())
            os.kill(pids[0], signal.SIGKILL)
            assert wait_for(
                lambda: supervisor.stats()["workers"][0]["status"]
                == WorkerStatus.FAILED.value
            )
            counters = supervisor.stats()["counters"]
            assert counters["supervisor.crash_loops"] == 1
            assert counters["supervisor.respawn_failures"] >= 1
            # The frontend was told: worker 0 is out of rotation but
            # the survivor still serves.
            host, port = cluster.address
            with ServeClient(host, port) as client:
                assert wait_for(
                    lambda: client.stats()["frontend"]["failed_workers"]
                    == [0],
                    timeout_s=5.0,
                )
                assert client.serve(
                    ServeRequest.from_text("books")
                ).to_dict()
                stats = client.stats()
            assert stats["frontend"]["breakers"]["0"] == "failed"


class TestGracefulDrain:
    def _quiesced_worker(self, segment_path, tmp_path, drain_timeout_s):
        """A ``_Worker`` with its dispatcher already retired, so the
        drain path can be driven synchronously."""
        worker = _Worker(
            WorkerConfig(
                segment_path=str(segment_path),
                socket_path=str(tmp_path / "drain.sock"),
                drain_timeout_s=drain_timeout_s,
            )
        )
        worker._stop.set()
        worker._queue.put(_SHUTDOWN)
        worker._dispatcher.join(timeout=5.0)
        assert not worker._dispatcher.is_alive()
        worker._stop.clear()  # re-arm so test enqueues are observable
        return worker

    def test_queued_requests_are_served_not_errored(
        self, segment_path, tmp_path
    ):
        worker = self._quiesced_worker(segment_path, tmp_path, 5.0)
        try:
            items = [
                _PendingServe(ServeRequest.from_text(f"books {i}"))
                for i in range(3)
            ]
            for item in items:
                worker._queue.put(item)
            worker._drain_shutdown()
            for item in items:
                assert item.done.is_set()
                assert item.response["type"] == "result"
            assert worker.drained == 3
            assert worker.drain_errors == 0
        finally:
            worker.index.close()

    def test_zero_budget_falls_back_to_retryable_errors(
        self, segment_path, tmp_path
    ):
        worker = self._quiesced_worker(segment_path, tmp_path, 0.0)
        try:
            item = _PendingServe(ServeRequest.from_text("books"))
            worker._queue.put(item)
            worker._drain_shutdown()
            assert item.response["type"] == "error"
            assert item.response["retryable"] is True
            assert worker.drain_errors == 1
            assert worker.drained == 0
        finally:
            worker.index.close()
