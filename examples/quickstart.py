"""Quickstart: index ads, run broad / phrase / exact match, re-map nodes.

Run with::

    python examples/quickstart.py
"""

from repro import AdCorpus, AdInfo, Advertisement, MatchType, Query, WordSetIndex


def main() -> None:
    # 1. An ad corpus: each ad has a bid phrase and metadata.
    ads = [
        Advertisement.from_text("used books", AdInfo(listing_id=1, bid_price_micros=120_000)),
        Advertisement.from_text("cheap used books", AdInfo(listing_id=2, bid_price_micros=95_000)),
        Advertisement.from_text("comic books", AdInfo(listing_id=3, bid_price_micros=210_000)),
        Advertisement.from_text("books", AdInfo(listing_id=4, bid_price_micros=80_000)),
        Advertisement.from_text("talk talk", AdInfo(listing_id=5, bid_price_micros=60_000)),
    ]
    corpus = AdCorpus(ads)
    index = WordSetIndex.from_corpus(corpus)

    # 2. Broad match: all bid words must appear in the query (the paper's
    # example — "used books" matches "cheap used books" but not "books").
    query = Query.from_text("cheap used books")
    matches = index.query(query)
    print(f"broad  {query.tokens}: listings "
          f"{sorted(a.info.listing_id for a in matches)}")

    # 3. Phrase match observes word order and contiguity; exact match is
    # token-for-token.
    for mt in (MatchType.PHRASE, MatchType.EXACT):
        result = index.query(Query.from_text("used books"), mt)
        print(f"{mt.value:6} ('used books'): listings "
              f"{sorted(a.info.listing_id for a in result)}")

    # 4. Duplicate words carry meaning: the band "talk talk" is not the
    # word "talk".
    print("broad  ('talk',):", [a.info.listing_id
                                for a in index.query(Query.from_text("talk"))])
    print("broad  ('talk', 'talk'):",
          [a.info.listing_id
           for a in index.query(Query.from_text("talk talk"))])

    # 5. Re-mapping (Figs 4-5): "cheap used books" can live at the node of
    # its subset "used books" without changing any result — one fewer hash
    # entry, one fewer random access for queries that visit both.
    mapping = {
        frozenset({"cheap", "used", "books"}): frozenset({"used", "books"}),
    }
    remapped = WordSetIndex.from_corpus(corpus, mapping=mapping)
    result = remapped.query(Query.from_text("cheap used books online"))
    print(f"after re-mapping: listings "
          f"{sorted(a.info.listing_id for a in result)} "
          f"(nodes: {len(index.nodes)} -> {len(remapped.nodes)})")


if __name__ == "__main__":
    main()
