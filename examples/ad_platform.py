"""A miniature sponsored-search serving stack on top of the library.

Builds a synthetic ad corpus (calibrated to the paper's distributions),
optimizes the index for an observed workload, then serves queries
end-to-end: broad-match retrieval -> exclusion filtering -> auction-style
ranking by bid price.  Prints serving statistics and the modeled
memory-cost comparison against the identity (non-re-mapped) index.

Run with::

    python examples/ad_platform.py
"""

from repro.core.matching import passes_exclusions
from repro.cost.accounting import AccessTracker
from repro.cost.model import CostModel
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.obs import MetricsRegistry
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index

TOP_SLOTS = 4  # ads displayed per query


def serve(index, query, top=TOP_SLOTS):
    """Retrieve, filter, rank: the paper's Section I pipeline sketch."""
    candidates = index.query(query)
    eligible = [ad for ad in candidates if passes_exclusions(ad, query)]
    ranked = sorted(eligible, key=lambda ad: -ad.info.bid_price_micros)
    return ranked[:top]


def main() -> None:
    print("generating corpus and workload ...")
    generated = generate_corpus(CorpusConfig(num_ads=5_000, seed=7))
    workload = generate_workload(
        generated, QueryConfig(num_distinct=800, total_frequency=20_000, seed=3)
    )
    corpus = generated.corpus
    model = CostModel()

    print("optimizing the mapping for the observed workload ...")
    mapping = optimize_mapping(
        corpus, workload, model, OptimizerConfig(max_words=10)
    )
    tracker = AccessTracker()
    index = build_index(corpus, mapping, tracker=tracker)
    registry = MetricsRegistry()
    index.bind_obs(registry)  # live metrics alongside the cost model
    identity_tracker = AccessTracker()
    identity = build_index(corpus, None, tracker=identity_tracker)
    print(f"  {len(corpus):,} ads, "
          f"{identity.stats().num_nodes:,} nodes -> "
          f"{index.stats().num_nodes:,} after re-mapping")

    print("serving a 2,000-query trace ...")
    trace = workload.sample_stream(2_000, seed=11)
    served = impressions = 0
    for query in trace:
        shown = serve(index, query)
        identity_result = serve(identity, query)
        assert [a.info.listing_id for a in shown] == [
            a.info.listing_id for a in identity_result
        ], "re-mapping must never change served ads"
        served += 1
        impressions += len(shown)

    stats = tracker.reset()
    identity_stats = identity_tracker.reset()
    print(f"  queries served:        {served:,}")
    print(f"  ad impressions:        {impressions:,} "
          f"({impressions / served:.2f}/query)")
    print(f"  modeled memory time:   {stats.modeled_ns(model) / 1e6:.1f} ms "
          f"(identity: {identity_stats.modeled_ns(model) / 1e6:.1f} ms)")
    print(f"  random accesses/query: {stats.random_accesses / served:.1f} "
          f"(identity: {identity_stats.random_accesses / served:.1f})")

    snap = registry.snapshot()
    probes = snap["counters"]["index.probes"]
    scans = snap["counters"]["index.node_scans"]
    probe_span = snap["histograms"]["span.probe"]
    print(f"  hash probes/query:     {probes / served:.1f} "
          f"({scans / served:.2f} node scans)")
    print(f"  probe latency p50/p95: {probe_span['p50'] * 1e3:.1f} us / "
          f"{probe_span['p95'] * 1e3:.1f} us")


if __name__ == "__main__":
    main()
