"""Serving from the compressed lookup structure of Section VI.

Builds the ``B^sig``/``B^off`` rank-select replacement for the hash table,
sweeps the suffix size ``s`` to expose the size/speed trade-off, verifies
results match the uncompressed index, and reports the data-node
compression (front-coded phrases, delta-coded prices).

Run with::

    python examples/compressed_serving.py
"""

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.compress.deltas import delta_encode_prices
from repro.compress.frontcoding import (
    encoded_size_bytes,
    node_phrase_order,
    plain_size_bytes,
)
from repro.compress.suffix_opt import choose_suffix_bits, evaluate_suffix_sizes
from repro.cost.model import CostModel
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.optimize.remap import build_index


def main() -> None:
    model = CostModel()
    generated = generate_corpus(CorpusConfig(num_ads=4_000, seed=13))
    workload = generate_workload(
        generated, QueryConfig(num_distinct=500, total_frequency=10_000, seed=2)
    )
    corpus = generated.corpus
    index = build_index(corpus, None)
    print(f"{len(corpus):,} ads, {index.stats().num_nodes:,} data nodes, "
          f"hash table {index.hash_table_bytes():,} bytes")

    # 1. The size/speed trade-off over suffix sizes.
    print("\nsuffix-size sweep (Section VI trade-off):")
    print(f"{'s':>4} {'nodes':>7} {'entropy KiB':>12} {'access ms':>10}")
    for point in evaluate_suffix_sizes(index, workload, model, [8, 12, 16, 20]):
        print(f"{point.suffix_bits:>4} {point.num_nodes:>7} "
              f"{point.entropy_bits / 8192:>12.1f} "
              f"{point.access_ns / 1e6:>10.2f}")

    best = choose_suffix_bits(
        index, workload, model, [8, 12, 16, 20],
        space_weight_ns_per_bit=0.001,
    )
    print(f"chosen s = {best.suffix_bits} under a mild space penalty")

    # 2. Serve through the compressed structure; results must be identical.
    compressed = CompressedWordSetIndex.from_index(
        index, suffix_bits=best.suffix_bits
    )
    checked = 0
    for query, _ in list(workload)[:300]:
        a = sorted(x.info.listing_id for x in compressed.query(query))
        b = sorted(x.info.listing_id for x in index.query(query))
        assert a == b, "compressed lookup must be exact"
        checked += 1
    print(f"\nverified {checked} queries identical on compressed vs plain")

    # 3. Data-node compression.
    plain = coded = price_plain = price_coded = 0
    for node in index.nodes.values():
        phrases = node_phrase_order([e.ad.phrase for e in node.entries])
        plain += plain_size_bytes(phrases)
        coded += encoded_size_bytes(phrases)
        prices = [e.ad.info.bid_price_micros for e in node.entries]
        price_plain += 8 * len(prices)
        price_coded += len(delta_encode_prices(prices))
    print(f"front-coded phrases: {plain:,} -> {coded:,} bytes "
          f"({plain / coded:.2f}x)")
    print(f"delta-coded prices:  {price_plain:,} -> {price_coded:,} bytes "
          f"({price_plain / price_coded:.2f}x)")


if __name__ == "__main__":
    main()
