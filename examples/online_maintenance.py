"""Online maintenance under churn (Section VI of the paper).

Runs a campaign lifecycle against a :class:`MaintainedIndex`: advertisers
continuously launch (insert) and retire (delete) ads while queries keep
being served; placements use the fast local heuristic, and the full
set-cover optimization re-runs periodically.  A naive scan oracle checks
every answer.

Run with::

    python examples/online_maintenance.py
"""

import random

from repro.core.ads import AdInfo, Advertisement
from repro.core.matching import naive_broad_match
from repro.cost.model import CostModel
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.optimize.mapping import OptimizerConfig
from repro.optimize.online import MaintainedIndex


def main() -> None:
    rng = random.Random(0)
    generated = generate_corpus(CorpusConfig(num_ads=1_500, seed=21))
    workload = generate_workload(
        generated, QueryConfig(num_distinct=300, total_frequency=5_000, seed=4)
    )
    maintained = MaintainedIndex(
        generated.corpus,
        workload,
        CostModel(),
        config=OptimizerConfig(max_words=8),
        reopt_threshold=400,
    )
    live = list(generated.corpus)
    vocabulary = generated.vocabulary
    queries = workload.sample_stream(600, seed=8)

    print(f"start: {len(live):,} ads, "
          f"{maintained.index.stats().num_nodes:,} nodes")
    next_listing = 10_000_000
    for step in range(1_000):
        roll = rng.random()
        if roll < 0.45:  # campaign launch
            words = " ".join(
                rng.choice(vocabulary) for _ in range(rng.randint(1, 9))
            )
            ad = Advertisement.from_text(
                words, AdInfo(listing_id=next_listing,
                              bid_price_micros=rng.randint(10_000, 900_000))
            )
            next_listing += 1
            maintained.insert(ad)
            live.append(ad)
        elif roll < 0.65 and live:  # campaign retirement
            victim = live.pop(rng.randrange(len(live)))
            assert maintained.delete(victim)
        else:  # serve a query, oracle-checked
            query = rng.choice(queries)
            got = sorted(a.info.listing_id
                         for a in maintained.query(query))
            want = sorted(a.info.listing_id
                          for a in naive_broad_match(live, query))
            assert got == want, f"divergence at step {step}"

    maintained.index.check_invariants()
    print(f"end:   {len(live):,} ads, "
          f"{maintained.index.stats().num_nodes:,} nodes, "
          f"{maintained.reopt_count} periodic re-optimizations, "
          "all answers oracle-verified")


if __name__ == "__main__":
    main()
