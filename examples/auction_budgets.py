"""A full serving day: GSP auctions, budgets, and frequency caps.

Simulates a day of traffic against the AdServer: advertisers have daily
budgets, clicks arrive with position-dependent probability, campaigns fall
out of rotation as budgets exhaust, and the report shows revenue, fill
rate, and which campaigns hit their caps — the "bidding is the challenge"
world the paper's introduction describes.

Run with::

    python examples/auction_budgets.py
"""

import random

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.serving.server import AdServer

#: Click-through rate by slot position (top slot clicked most).
SLOT_CTR = [0.08, 0.05, 0.03, 0.02]


def main() -> None:
    rng = random.Random(17)
    generated = generate_corpus(CorpusConfig(num_ads=3_000, seed=2))
    workload = generate_workload(
        generated, QueryConfig(num_distinct=600, total_frequency=30_000, seed=6)
    )
    corpus = generated.corpus

    # Every campaign gets a daily budget proportional to its total bids.
    budgets: dict[int, int] = {}
    for ad in corpus:
        budgets[ad.info.campaign_id] = (
            budgets.get(ad.info.campaign_id, 0) + ad.info.bid_price_micros * 3
        )

    server = AdServer(
        WordSetIndex.from_corpus(corpus),
        slots=len(SLOT_CTR),
        reserve_micros=1_000,
        campaign_budgets_micros=budgets,
        frequency_cap=3,
    )

    trace = workload.sample_stream(10_000, seed=4)
    users = [f"user{i}" for i in range(500)]
    for query in trace:
        result = server.serve(query, user_id=rng.choice(users))
        for slot, _award in enumerate(result.outcome.awards):
            if rng.random() < SLOT_CTR[slot]:
                server.record_click(result, slot)

    stats = server.stats
    print(f"queries:              {stats.queries:,}")
    print(f"candidates retrieved: {stats.candidates:,}")
    print(f"impressions:          {stats.impressions:,} "
          f"(fill rate {stats.fill_rate():.2f}/query)")
    print(f"clicks:               {stats.clicks:,}")
    print(f"revenue:              {stats.revenue_micros / 1e6:,.2f} units")
    print(f"filtered (exclusion): {stats.filtered_exclusion:,}")
    print(f"filtered (budget):    {stats.filtered_budget:,}")
    print(f"filtered (freq cap):  {stats.filtered_frequency_cap:,}")
    print(f"exhausted campaigns:  {len(server.exhausted_campaigns()):,} "
          f"of {len(budgets):,}")


if __name__ == "__main__":
    main()
