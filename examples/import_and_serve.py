"""The adopter path end-to-end: import, optimize, persist, serve, survive.

1. Import an advertiser CSV and a query trace (the files are written by
   this script to keep the example self-contained).
2. Optimize the mapping for the observed workload.
3. Persist a snapshot; restart from it; verify identical results.
4. Serve with durability: mutations go to an op-log, a simulated crash
   loses nothing, compaction folds a re-optimization into a new snapshot.

Run with::

    python examples/import_and_serve.py
"""

import tempfile
from pathlib import Path

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.cost.model import CostModel
from repro.datagen.importers import load_corpus_csv, load_workload_tsv
from repro.oplog import DurableIndex
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.persist import load_index, save_index

ADS_CSV = """bid_phrase,listing_id,campaign_id,bid_price_micros,exclusions
used books,1,100,300000,
cheap used books,2,100,550000,free
books,3,101,200000,
rare first edition books,4,102,900000,
comic books,5,103,250000,
cheap flights,6,104,400000,
flights,7,104,150000,
talk talk,8,105,120000,
"""

TRACE_TSV = """cheap used books\t120
used books\t80
comic books online\t25
cheap flights paris\t40
talk talk greatest hits\t10
first edition books\t5
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-demo-"))
    (workdir / "ads.csv").write_text(ADS_CSV)
    (workdir / "trace.tsv").write_text(TRACE_TSV)

    # 1. Import.
    corpus = load_corpus_csv(workdir / "ads.csv")
    workload = load_workload_tsv(workdir / "trace.tsv")
    print(f"imported {len(corpus)} ads, {len(workload)} distinct queries")

    # 2. Optimize.
    mapping = optimize_mapping(
        corpus, workload, CostModel(), OptimizerConfig(max_words=10)
    )
    print(f"optimizer re-mapped {mapping.remapped_count()} word-set group(s)")

    # 3. Persist and restart.
    snapshot = workdir / "index.jsonl"
    save_index(snapshot, corpus, mapping)
    restarted = load_index(snapshot)
    q = Query.from_text("cheap used books online")
    before = sorted(a.info.listing_id for a in restarted.index.query(q))
    print(f"after restart, {q.tokens} -> listings {before}")

    # 4. Durable serving with an op-log.
    log = workdir / "ops.log"
    durable = DurableIndex(snapshot, log, corpus=corpus, mapping=mapping)
    durable.insert(
        Advertisement.from_text(
            "used books bulk", AdInfo(listing_id=9, bid_price_micros=80_000)
        )
    )
    durable.delete(Advertisement.from_text("flights", AdInfo(
        listing_id=7, campaign_id=104, bid_price_micros=150_000)))
    print(f"op-log holds {durable.log_ops} mutation(s)")
    durable.close()  # simulated crash: process gone, files remain

    recovered = DurableIndex(snapshot, log)
    print(
        f"recovery replayed {recovered.recovery.replayed_ops} op(s); "
        f"corpus now {len(recovered)} ads"
    )
    bulk = recovered.query(Query.from_text("used books bulk order"))
    assert 9 in {a.info.listing_id for a in bulk}
    assert recovered.query(Query.from_text("flights")) == []

    # Compaction folds a fresh optimization into the snapshot.
    new_mapping = optimize_mapping(
        recovered.corpus, workload, CostModel(), OptimizerConfig(max_words=10)
    )
    recovered.compact(mapping=new_mapping)
    print(f"compacted; log now holds {recovered.log_ops} op(s)")
    recovered.close()
    print("done — all stages verified")


if __name__ == "__main__":
    main()
