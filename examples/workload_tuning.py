"""Workload-adaptive index tuning (Section V of the paper).

Shows the full optimization loop: observe a query stream for an interval,
estimate the workload from the sample (the power-law head makes small
samples reliable), compute the set-cover mapping, and quantify the
improvement with the paper's analytic cost model — including what happens
when the workload later *shifts*.

Run with::

    python examples/workload_tuning.py
"""

from repro.cost.model import CostModel
from repro.cost.workload_cost import total_cost
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index, long_phrase_mapping


def cost_ms(index, workload, model):
    return total_cost(index, workload, model) / 1e6


def main() -> None:
    model = CostModel()
    generated = generate_corpus(
        CorpusConfig(num_ads=4_000, vocabulary_size=500, seed=5)
    )
    corpus = generated.corpus
    full_workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=1_500,
            total_frequency=100_000,
            long_tail_fraction=0.01,  # rare very long queries (real traces)
            seed=9,
        ),
    )

    # 1. Observe only 5% of the stream; the Zipf head survives sampling.
    sample = full_workload.subsample(0.05, seed=1)
    print(f"observed sample: {len(sample):,} distinct / "
          f"{sample.total_frequency:,} total "
          f"(full workload: {len(full_workload):,} / "
          f"{full_workload.total_frequency:,})")

    # 2. Compare the three structures of Fig 10 under the FULL workload,
    # with the mapping computed from the small sample only.
    identity = build_index(corpus, None)
    long_only = build_index(corpus, long_phrase_mapping(corpus, 10))
    optimized = build_index(
        corpus,
        optimize_mapping(corpus, sample, model, OptimizerConfig(max_words=10)),
    )
    base = cost_ms(identity, full_workload, model)
    for name, index in [
        ("identity (no re-mapping)", identity),
        ("long phrases re-mapped", long_only),
        ("sample-optimized mapping", optimized),
    ]:
        cost = cost_ms(index, full_workload, model)
        print(f"  {name:28} {cost:10.2f} ms  ({cost / base:.3f} relative)")

    # 3. Workload shift: re-optimize against the new observation.
    shifted = generate_workload(
        generated,
        QueryConfig(
            num_distinct=1_500,
            total_frequency=100_000,
            long_tail_fraction=0.01,
            seed=77,
        ),
    )
    stale_cost = cost_ms(optimized, shifted, model)
    refreshed = build_index(
        corpus,
        optimize_mapping(
            corpus, shifted.subsample(0.05, seed=2), model,
            OptimizerConfig(max_words=10),
        ),
    )
    fresh_cost = cost_ms(refreshed, shifted, model)
    print(f"after workload shift: stale mapping {stale_cost:.2f} ms, "
          f"re-optimized {fresh_cost:.2f} ms "
          f"({1 - fresh_cost / stale_cost:+.1%})")


if __name__ == "__main__":
    main()
